//! Quickstart: generate a small synthetic web, run the measurement
//! campaign, and print the paper's evaluation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs at 5,000 sites in a few seconds. For the full 50,000-site
//! reproduction use `full_campaign`.

use topics_core::{comparison_rows, evaluate, render_comparison, Lab, LabConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let sites = 5_000;
    eprintln!("generating a {sites}-site web (seed {seed}) …");
    let lab = Lab::new(LabConfig::quick(seed, sites));
    eprintln!("crawling (Before-Accept + After-Accept, corrupted allow-list) …");
    let outcome = lab.run();
    let eval = evaluate(&outcome);
    println!("{}", eval.render_report());
    println!("== Paper vs measured (rates only at this scale) ==");
    println!("{}", render_comparison(&comparison_rows(&eval, false)));
}
