//! Longitudinal monitoring — the future work the paper's §6 calls for.
//!
//! "Given the novelty of the technology … our measurements should be
//! conducted continuously to monitor how the technology evolves." The
//! synthetic web has real temporal dynamics: platforms enrol over time
//! and switch their Topics integration on some weeks later, and a
//! *future cohort* of enrolled platforms activates only after the
//! paper's crawl date. This example re-runs the measurement campaign at
//! four dates and charts adoption growing.
//!
//! ```sh
//! cargo run --release --example longitudinal
//! ```

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::analysis::timeline::timeline;
use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
use topics_core::net::clock::Timestamp;
use topics_core::{Lab, LabConfig};

fn main() {
    let seed = 2024;
    let sites = 8_000;
    eprintln!("building an {sites}-site web (seed {seed}) …");
    let lab = Lab::new(LabConfig::quick(seed, sites));

    println!(
        "{:<14} {:>10} {:>10} {:>18} {:>16} {:>16}",
        "crawl date", "D_BA", "D_AA", "A&A callers", "attested", "coverage"
    );
    for &day in &[303u64, 360, 430, 500] {
        let config = CampaignConfig {
            start: Timestamp::from_days(day),
            ..CampaignConfig::default()
        };
        let outcome = run_campaign(&lab.world, &config);
        let ds = Datasets::new(&outcome);
        let callers = ds
            .calling_parties(DatasetId::AfterAccept)
            .into_iter()
            .filter(|cp| outcome.is_allowed(cp) && outcome.is_attested(cp))
            .count();
        let t = timeline(&outcome);
        let (y, m, d) = Timestamp::from_days(day).to_date();
        println!(
            "{y:04}-{m:02}-{d:02}     {:>10} {:>10} {:>18} {:>16} {:>15.1}%",
            outcome.visited_count(),
            outcome.accepted_count(),
            callers,
            t.total,
            ds.legitimate_coverage(DatasetId::AfterAccept) * 100.0,
        );
    }

    println!(
        "\nThe Allowed & Attested caller count grows across crawl dates as\n\
         the enrolled-but-dormant cohort switches its integration on —\n\
         exactly the continuous-monitoring picture the paper's §6 asks\n\
         future work to capture."
    );
}
