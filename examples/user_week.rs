//! A single user's Topics state, week by week — the §2.1 mechanism made
//! visible (the left half of the paper's Figure 1).
//!
//! Simulates one user browsing for five one-week epochs, printing after
//! each epoch: the sites visited, the epoch's top-5 topics (with the
//! random padding marked), and what two different callers — one that
//! observed the user everywhere, one that never did — receive from
//! `browsingTopics()`.
//!
//! ```sh
//! cargo run --example user_week
//! ```

use std::sync::Arc;
use topics_core::browser::origin::Site;
use topics_core::browser::topics::TopicsEngine;
use topics_core::net::clock::Timestamp;
use topics_core::net::url::Url;
use topics_core::taxonomy::{Classifier, Taxonomy};

fn site(name: &str) -> Site {
    Site::of(&Url::parse(&format!("https://{name}/")).unwrap())
}

fn main() {
    let taxonomy = Taxonomy::global();
    let classifier = Arc::new(Classifier::new(2024).with_unclassifiable_rate(0.0));
    let mut engine = TopicsEngine::new(classifier, 7, true);
    let observer = topics_core::net::Domain::parse("everywhere-ads.com").unwrap();
    let stranger = topics_core::net::Domain::parse("new-entrant.com").unwrap();

    // A user with stable habits plus some one-off visits.
    let habits = ["morning-news.com", "football-scores.net", "recipe-box.org"];
    let one_offs = [
        vec!["flight-deals.com", "hotel-browse.com"],
        vec!["game-reviews.net"],
        vec!["tax-help.org", "bank-rates.com", "loan-compare.net"],
        vec!["garden-tools.com"],
        vec!["movie-times.net", "series-guide.com"],
    ];

    for epoch in 0..5u64 {
        let now = Timestamp::from_weeks(epoch);
        let mut visited: Vec<&str> = habits.to_vec();
        visited.extend(one_offs[epoch as usize].iter());
        for name in &visited {
            let s = site(name);
            engine.record_visit(&s, now);
            // The pervasive ad network is embedded on every page.
            engine.record_observation(&observer, &s, now);
        }
        println!("— epoch {epoch} ({}) —", now);
        println!("  visited: {}", visited.join(", "));
        print!("  top-5:   ");
        for t in engine.top5(epoch) {
            let name = &taxonomy.get(t.topic).expect("valid id").name;
            print!("[{}{}] ", name, if t.real { "" } else { " •random" });
        }
        println!();

        if epoch >= 1 {
            let ask = site("publisher-page.com");
            let seen = engine
                .browsing_topics(&observer, &ask, now)
                .expect("enabled");
            let blind = engine
                .browsing_topics(&stranger, &ask, now)
                .expect("enabled");
            let render = |answer: &topics_core::browser::topics::TopicsAnswer| {
                if answer.topics.is_empty() {
                    "(nothing)".to_owned()
                } else {
                    answer
                        .topics
                        .iter()
                        .map(|t| {
                            format!(
                                "{}{}",
                                taxonomy.get(t.topic).expect("valid").name,
                                if t.noised { " •random" } else { "" }
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            };
            println!("  everywhere-ads.com receives: {}", render(&seen));
            println!("  new-entrant.com   receives: {}", render(&blind));
        }
        println!();
    }

    println!(
        "The pervasive observer gradually learns the user's interests; the\n\
         newcomer — having observed nothing — receives only the occasional\n\
         random topic (the 5% plausible-deniability noise and the padding\n\
         of thin epochs). That per-caller filtering is what the enrolment\n\
         and attestation rules of §2.3 protect."
    );
}
