//! The full paper-scale reproduction: 50,000 ranked sites, the
//! Before-Accept / After-Accept protocol, the corrupted allow-list, and
//! every table and figure of the evaluation, followed by the
//! paper-vs-measured comparison (the source of EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release --example full_campaign [seed]
//! ```

use std::time::Instant;
use topics_core::{comparison_rows, evaluate, render_comparison, Lab, LabConfig};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let t0 = Instant::now();
    eprintln!("generating the 50,000-site web (seed {seed}) …");
    let lab = Lab::new(LabConfig::paper(seed));
    eprintln!("  done in {:.1?}; crawling …", t0.elapsed());
    let t1 = Instant::now();
    let outcome = lab.run();
    eprintln!("  crawl done in {:.1?}; analysing …", t1.elapsed());
    let eval = evaluate(&outcome);
    println!("{}", eval.render_report());
    println!("== Paper vs measured (full scale) ==");
    let rows = comparison_rows(&eval, true);
    println!("{}", render_comparison(&rows));
    let deviations = rows.iter().filter(|r| r.ok == Some(false)).count();
    let checked = rows.iter().filter(|r| r.ok.is_some()).count();
    println!("shape checks: {}/{checked} OK", checked - deviations);
}
