//! Vantage-point comparison — the paper's §6 limitation, measured.
//!
//! "Our experiments were conducted from a single location in Europe, and
//! we cannot rule out the possibility that websites may exhibit
//! different behavior based on a user's location." Here the same
//! synthetic web is crawled twice: once from Europe (the paper's
//! vantage) and once from the United States, where geo-targeted sites
//! withhold their GDPR banner and run in an implied-consent regime.
//!
//! ```sh
//! cargo run --release --example vantage_comparison
//! ```

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
use topics_core::net::http::Vantage;
use topics_core::{Lab, LabConfig};

struct View {
    visited: usize,
    banners_seen: usize,
    accepted: usize,
    pre_consent_callers: usize,
    pre_consent_sites: usize,
}

fn crawl(lab: &Lab, vantage: Vantage) -> View {
    let config = CampaignConfig {
        vantage,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(&lab.world, &config);
    let ds = Datasets::new(&outcome);
    let banners_seen = ds
        .visits(DatasetId::BeforeAccept)
        .filter(|v| v.banner_found)
        .count();
    let pre_consent_sites = ds
        .visits(DatasetId::BeforeAccept)
        .filter(|v| v.topics_calls.iter().any(|c| c.permitted()))
        .count();
    View {
        visited: outcome.visited_count(),
        banners_seen,
        accepted: outcome.accepted_count(),
        pre_consent_callers: ds.calling_parties(DatasetId::BeforeAccept).len(),
        pre_consent_sites,
    }
}

fn main() {
    let seed = 2024;
    let sites = 10_000;
    eprintln!("building a {sites}-site web and crawling from two vantages …");
    let lab = Lab::new(LabConfig::quick(seed, sites));
    let eu = crawl(&lab, Vantage::Europe);
    let us = crawl(&lab, Vantage::UnitedStates);

    println!("{:<46} {:>12} {:>12}", "metric", "EU vantage", "US vantage");
    println!("{}", "-".repeat(72));
    for (label, a, b) in [
        ("sites visited (D_BA)", eu.visited, us.visited),
        ("banners encountered", eu.banners_seen, us.banners_seen),
        ("banners accepted (D_AA)", eu.accepted, us.accepted),
        (
            "first-visit Topics callers",
            eu.pre_consent_callers,
            us.pre_consent_callers,
        ),
        (
            "first-visit sites with a call",
            eu.pre_consent_sites,
            us.pre_consent_sites,
        ),
    ] {
        println!("{label:<46} {a:>12} {b:>12}");
    }

    println!(
        "\nFrom the US, geo-targeted sites withhold their GDPR banner and\n\
         serve the implied-consent page: fewer banners and a smaller D_AA,\n\
         but MORE first-visit Topics activity — the ungated tags run\n\
         immediately. A Europe-only crawl therefore *under*-estimates how\n\
         much topics traffic a non-European user leaks, exactly the bias\n\
         the paper flags in §6."
    );
}
