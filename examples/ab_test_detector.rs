//! §3 reproduction — detecting the calling parties' A/B experiments.
//!
//! Two analyses on a mid-size synthetic web:
//!
//! 1. **Fraction clustering** (Figure 3): per-CP enabled fractions are
//!    fitted against the canonical experiment arms
//!    (100/75/66/50/33/25%) — the paper's "percentages that look
//!    predetermined".
//! 2. **Temporal alternation**: the same 40 sites are re-visited every
//!    six hours for four simulated days; time-windowed CPs (the
//!    taboola/casalemedia-style experiments) show consistent ON runs
//!    followed by OFF runs per (CP, website).
//!
//! ```sh
//! cargo run --release --example ab_test_detector
//! ```

use topics_core::analysis::abtest::{alternation_series, clustering_share, fit_fraction};
use topics_core::analysis::dataset::Datasets;
use topics_core::analysis::figures::fig3;
use topics_core::analysis::report::pct;
use topics_core::crawler::campaign::{run_repeated, CampaignConfig};
use topics_core::net::clock::Timestamp;
use topics_core::{evaluate, Lab, LabConfig};

fn main() {
    let seed = 2024;
    eprintln!("building a 12,000-site web and crawling …");
    let lab = Lab::new(LabConfig::quick(seed, 12_000));
    let outcome = lab.run();
    let eval = evaluate(&outcome);

    // ---- 1. fraction clustering ------------------------------------
    println!("== Figure 3: enabled fractions vs canonical experiment arms ==");
    let ds = Datasets::new(&outcome);
    let rows = fig3(&ds, 15);
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9}",
        "CP", "present", "enabled", "nearest", "delta"
    );
    for r in &rows {
        let fit = fit_fraction(r.enabled_fraction());
        println!(
            "{:<22} {:>8} {:>9} {:>8.0}% {:>9.3}",
            r.cp.as_str(),
            r.present,
            pct(r.enabled_fraction()),
            fit.nearest * 100.0,
            fit.distance
        );
    }
    println!(
        "\n{} of CPs sit within 8pp of a canonical arm\n",
        pct(clustering_share(&rows, 0.08))
    );
    let _ = eval;

    // ---- 2. temporal alternation ------------------------------------
    println!("== §3 repeated tests: ON/OFF alternation over 4 days ==");
    let urls: Vec<_> = lab.world.tranco_list().into_iter().take(40).collect();
    let times: Vec<Timestamp> = (0..16)
        .map(|i| Timestamp::CRAWL_START.plus_millis(i * 6 * 3_600_000))
        .collect();
    let rounds = run_repeated(&lab.world, &urls, &times, &CampaignConfig::default());
    let series = alternation_series(&rounds);
    let mut alternating = 0;
    let mut constant = 0;
    for s in &series {
        if s.alternates() && s.longest_run() >= 2 {
            alternating += 1;
        } else if !s.alternates() {
            constant += 1;
        }
    }
    println!(
        "observed {} (CP, website) series: {alternating} alternate in runs, {constant} constant",
        series.len()
    );
    for s in series
        .iter()
        .filter(|s| s.alternates() && s.longest_run() >= 3)
        .take(8)
    {
        let strip: String = s.on.iter().map(|&x| if x { '#' } else { '.' }).collect();
        println!(
            "  {:<20} on {:<22} {}",
            s.cp.as_str(),
            s.website.as_str(),
            strip
        );
    }
    println!(
        "\nConsistent runs of ON followed by OFF per (CP, website) — the\n\
         signature of time-sliced A/B tests the paper reports in §3."
    );
}
