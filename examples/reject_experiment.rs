//! The opt-out experiment — what happens when the user explicitly
//! clicks "Reject all"?
//!
//! The paper measures Before-Accept (no interaction) and After-Accept;
//! this extension runs the third arm: the crawler clicks the *reject*
//! button, clears the cache, and re-visits. Any Topics call in the
//! After-Reject visit defies an explicit refusal — a stronger GDPR
//! signal than the Before-Accept calls of §5.
//!
//! ```sh
//! cargo run --release --example reject_experiment
//! ```

use std::collections::BTreeMap;
use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
use topics_core::crawler::ConsentAction;
use topics_core::net::domain::Domain;
use topics_core::{Lab, LabConfig};

fn main() {
    let seed = 2024;
    let sites = 10_000;
    eprintln!("building a {sites}-site web (seed {seed}) …");
    let lab = Lab::new(LabConfig::quick(seed, sites));

    eprintln!("running the REJECT campaign …");
    let config = CampaignConfig {
        consent_action: ConsentAction::Reject,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(&lab.world, &config);
    let ds = Datasets::new(&outcome);

    let rejected = outcome.sites.iter().filter(|s| s.rejected()).count();
    println!(
        "visited {} sites; clicked 'Reject all' on {} of them\n",
        outcome.visited_count(),
        rejected
    );

    // 1. Gated tags must stay hidden after rejection.
    let mut gated_leaks = 0usize;
    for s in &outcome.sites {
        if let (Some(before), Some(after)) = (&s.before, &s.after) {
            let new: Vec<_> = after
                .party_domains
                .iter()
                .filter(|d| !before.party_domains.contains(d))
                .collect();
            gated_leaks += usize::from(!new.is_empty());
        }
    }
    println!(
        "sites where NEW third parties appeared after rejection: {gated_leaks} \
         (consent-gated tags stay hidden)\n"
    );

    // 2. Who still calls the Topics API after an explicit refusal?
    let mut by_cp: BTreeMap<Domain, usize> = BTreeMap::new();
    for (_, c) in ds.calls(DatasetId::AfterReject) {
        *by_cp.entry(c.caller_site.clone()).or_insert(0) += 1;
    }
    let mut rows: Vec<_> = by_cp.into_iter().collect();
    rows.sort_by_key(|(_, calls)| std::cmp::Reverse(*calls));
    println!("Topics calls AFTER explicit rejection, by calling party:");
    println!(
        "{:<26} {:>7} {:>10} {:>10}",
        "CP", "calls", "allowed", "attested"
    );
    for (cp, calls) in rows.iter().take(15) {
        println!(
            "{:<26} {:>7} {:>10} {:>10}",
            cp.as_str(),
            calls,
            outcome.is_allowed(cp),
            outcome.is_attested(cp)
        );
    }
    let total: usize = rows.iter().map(|(_, c)| c).sum();
    println!(
        "\n{} calls by {} CPs defy an explicit refusal — the same violators\n\
         as Figure 5 (plus the ungated GTM containers), now measured against\n\
         a recorded opt-out instead of mere silence.",
        total,
        rows.len()
    );
}
