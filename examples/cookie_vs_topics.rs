//! Cookies vs Topics — the profiling-power comparison motivating the
//! paper's introduction.
//!
//! Simulates a population of users with interest-driven browsing, then
//! compares:
//!
//! * the classical **third-party-cookie tracker**: exact cross-site
//!   profiles, near-total fingerprint uniqueness, trivially perfect
//!   cross-context linkage;
//! * the **Topics adversary** (refs [17, 23]): per-context topic
//!   histograms collected through the real in-browser Topics engine
//!   (epochs, top-5, caller filtering, 5% noise), linked by
//!   nearest-neighbour matching.
//!
//! ```sh
//! cargo run --release --example cookie_vs_topics
//! ```

use std::sync::Arc;
use topics_core::baseline::{
    collect_profiles, cookie_match, generate_population, match_profiles, CookieTracker,
    SiteUniverse,
};
use topics_core::net::domain::Domain;
use topics_core::taxonomy::Classifier;

fn main() {
    let seed = 2024;
    let classifier = Arc::new(Classifier::new(seed).with_unclassifiable_rate(0.0));
    let universe = SiteUniverse::generate(seed, 1_500, &classifier);
    println!("site universe: {} sites\n", universe.len());

    println!(
        "{:>6} {:>18} {:>18} {:>14} {:>12}",
        "users", "cookie-linkage", "cookie-unique", "topics-top1", "random-floor"
    );
    for &n in &[20usize, 50, 100, 200] {
        let mut users = generate_population(seed, n, &universe, classifier.clone(), 8, 30);

        // Cookie baseline: exact site-set profiles.
        let tracker = CookieTracker::new(seed, &universe, 0.4);
        let cookie_profiles = tracker.observe(&users, &universe, 8, 30);
        let uniqueness = CookieTracker::uniqueness(&cookie_profiles);
        let cookie = cookie_match(n);

        // Topics attack: two disjoint observation contexts.
        let ctx_a: Vec<usize> = (0..universe.len()).step_by(5).collect();
        let ctx_b: Vec<usize> = (2..universe.len()).step_by(7).collect();
        let adv_a = Domain::parse("adversary-a.com").unwrap();
        let adv_b = Domain::parse("adversary-b.com").unwrap();
        let profiles_a = collect_profiles(&mut users, &universe, &ctx_a, &adv_a, 4..8);
        let profiles_b = collect_profiles(&mut users, &universe, &ctx_b, &adv_b, 4..8);
        let topics = match_profiles(&profiles_a, &profiles_b);

        println!(
            "{n:>6} {:>17.1}% {:>17.1}% {:>13.1}% {:>11.2}%",
            cookie.accuracy() * 100.0,
            uniqueness * 100.0,
            topics.accuracy() * 100.0,
            topics.random_floor() * 100.0,
        );
    }

    println!(
        "\nThird-party cookies identify everyone exactly; the Topics API\n\
         leaks enough interest signal to beat random guessing by a wide\n\
         margin (the re-identification risk of refs [17, 23]) while\n\
         falling far short of a deterministic identifier — the privacy\n\
         trade the paper's measured ecosystem is experimenting with."
    );
}
