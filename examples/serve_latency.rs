//! Serve-latency probe: cold build cost vs warm per-endpoint latency.
//!
//! ```sh
//! cargo run --release --example serve_latency [SITES]
//! ```
//!
//! Runs a traced campaign at SITES sites (default 2,000), persists the
//! columnar store plus its trace, then measures the two costs a
//! `topics-lab serve` operator cares about:
//!
//! * **cold** — one `Server::bind`: load the store, scan the column
//!   index, pre-render every endpoint body (the `serve_build_wall_ms`
//!   gauge);
//! * **warm** — steady-state request latency per endpoint, mean over
//!   64 sequential loopback fetches after an 8-fetch warm-up.
//!
//! The numbers in EXPERIMENTS.md §"Live serving" come from this probe
//! at 2,000 and 6,000 sites.

use std::sync::Arc;
use std::time::Instant;
use topics_core::crawler::columnar::ColumnarCampaign;
use topics_core::obs::Obs;
use topics_core::{http_fetch, Lab, LabConfig, ServeConfig, Server, API_ENDPOINTS};

const WARMUP: usize = 8;
const SAMPLES: u32 = 64;

fn main() {
    let sites = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let seed = 7;
    eprintln!("crawling {sites} sites (seed {seed}, traced) …");
    let obs = Obs::new().with_trace();
    let lab = Lab::new(LabConfig::quick(seed, sites));
    let run = lab.run_observed(&obs);

    let dir = std::env::temp_dir().join(format!("topics-serve-latency-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let store = ColumnarCampaign::from_outcome(&run.outcome);
    std::fs::write(dir.join("campaign.col"), store.bytes()).expect("store persists");
    std::fs::write(dir.join("trace.jsonl"), obs.trace.finish().to_jsonl()).expect("trace persists");

    // Cold: everything `bind` does once so requests never touch rows.
    let config = ServeConfig::new(dir.join("campaign.col"));
    let started = Instant::now();
    let server = Server::bind(&config, Arc::new(Obs::new())).expect("server binds");
    let cold_ms = started.elapsed().as_millis();
    let addr = server.local_addr().to_string();
    println!(
        "sites={sites} store_bytes={} cold_build_ms={cold_ms} (service-reported {} ms)",
        store.bytes().len(),
        server.service().build_wall_ms(),
    );

    // Warm: mean loopback round-trip per endpoint, body fully read.
    let mut paths: Vec<&str> = API_ENDPOINTS.iter().map(|(p, _)| *p).collect();
    paths.extend(["/api/doctor", "/api/profile", "/metrics", "/healthz"]);
    std::thread::scope(|scope| {
        scope.spawn(|| server.run());
        println!(
            "{:<18} {:>12} {:>14}",
            "endpoint", "body bytes", "warm us/req"
        );
        for path in paths {
            let mut bytes = 0;
            for _ in 0..WARMUP {
                bytes = fetch_ok(&addr, path).len();
            }
            let started = Instant::now();
            for _ in 0..SAMPLES {
                std::hint::black_box(fetch_ok(&addr, path));
            }
            let mean_us = started.elapsed().as_micros() as u32 / SAMPLES;
            println!("{path:<18} {bytes:>12} {mean_us:>14}");
        }
        server.handle().stop();
    });
    std::fs::remove_dir_all(&dir).expect("temp dir cleanup");
}

/// One GET that must succeed; returns the body.
fn fetch_ok(addr: &str, path: &str) -> Vec<u8> {
    let resp = http_fetch(addr, "GET", path).expect("fetch succeeds");
    assert_eq!(resp.status, 200, "{path}");
    resp.body
}
