//! What-if: the cookie phase-out completes and the Topics API becomes
//! "the de facto standard for behavioural advertising" (the paper's
//! conclusion).
//!
//! Crawls the same 10,000-site web under two registries:
//!
//! * **Paper 2024** — 47 of 193 enrolled platforms testing the API on
//!   controlled A/B fractions (what the paper measured);
//! * **Full adoption** — every enrolled-and-attested platform calls on
//!   every site where it is embedded, experiments over.
//!
//! and compares what a user's browser would experience.
//!
//! ```sh
//! cargo run --release --example phaseout_whatif
//! ```

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
use topics_core::webgen::{RegistryScenario, World, WorldConfig};

struct Observed {
    coverage: f64,
    callers: usize,
    calls_per_covered_site: f64,
    questionable_cps: usize,
}

fn observe(scenario: RegistryScenario, seed: u64, sites: usize) -> Observed {
    let mut wc = WorldConfig::scaled(seed, sites);
    wc.scenario = scenario;
    let world = World::generate(wc);
    let outcome = run_campaign(&world, &CampaignConfig::default());
    let ds = Datasets::new(&outcome);
    let legit_calls = ds
        .calls(DatasetId::AfterAccept)
        .filter(|(_, c)| {
            let class = ds.classify(&c.caller_site);
            class.allowed && class.attested
        })
        .count();
    let covered = (ds.legitimate_coverage(DatasetId::AfterAccept)
        * ds.len(DatasetId::AfterAccept) as f64)
        .max(1.0);
    Observed {
        coverage: ds.legitimate_coverage(DatasetId::AfterAccept),
        callers: ds
            .calling_parties(DatasetId::AfterAccept)
            .iter()
            .filter(|cp| outcome.is_allowed(cp) && outcome.is_attested(cp))
            .count(),
        calls_per_covered_site: legit_calls as f64 / covered,
        questionable_cps: ds
            .calling_parties(DatasetId::BeforeAccept)
            .iter()
            .filter(|cp| outcome.is_allowed(cp))
            .count(),
    }
}

fn main() {
    let seed = 2024;
    let sites = 10_000;
    eprintln!("crawling the same {sites}-site web under both scenarios …");
    let paper = observe(RegistryScenario::Paper2024, seed, sites);
    let full = observe(RegistryScenario::FullAdoption, seed, sites);

    println!(
        "{:<44} {:>14} {:>16}",
        "metric", "paper 2024", "full adoption"
    );
    println!("{}", "-".repeat(78));
    println!(
        "{:<44} {:>13.1}% {:>15.1}%",
        "D_AA sites with ≥1 legitimate Topics call",
        paper.coverage * 100.0,
        full.coverage * 100.0
    );
    println!(
        "{:<44} {:>14} {:>16}",
        "distinct legitimate callers observed", paper.callers, full.callers
    );
    println!(
        "{:<44} {:>14.1} {:>16.1}",
        "legitimate calls per covered site",
        paper.calls_per_covered_site,
        full.calls_per_covered_site
    );
    println!(
        "{:<44} {:>14} {:>16}",
        "questionable (Before-Accept) enrolled CPs", paper.questionable_cps, full.questionable_cps
    );

    println!(
        "\nWith experiments over, nearly every ad-carrying page queries the\n\
         user's topics — often several times per view — and every consent\n\
         violator fires at full rate. The paper's early-2024 snapshot is a\n\
         fraction of the steady state its conclusion anticipates; the gap\n\
         between the two columns is how much deployment headroom was left."
    );
}
