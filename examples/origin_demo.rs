//! Figure 4 demonstration — the "wrong context" mechanism behind the
//! paper's §4 anomalous calls.
//!
//! Builds a three-page micro-web by hand and shows how the browser
//! attributes `browsingTopics()` calls:
//!
//! 1. a GTM-style script included via `<script src=…>` executes in the
//!    page's root context → the call is attributed to the WEBSITE;
//! 2. the same logic inside an `<iframe>` is attributed to the frame's
//!    own origin;
//! 3. with a healthy allow-list the website-attributed call is blocked,
//!    but with the corrupted list (the Chromium fail-open bug, §2.3) it
//!    executes.
//!
//! ```sh
//! cargo run --example origin_demo
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use topics_core::browser::attestation::AttestationStore;
use topics_core::browser::browser::{Browser, BrowserConfig};
use topics_core::net::clock::Timestamp;
use topics_core::net::dns::DnsError;
use topics_core::net::domain::Domain;
use topics_core::net::http::{HttpRequest, HttpResponse};
use topics_core::net::service::NetworkService;
use topics_core::net::url::Url;
use topics_core::net::NetError;
use topics_core::taxonomy::Classifier;

/// A miniature hand-built web.
struct MicroWeb {
    pages: HashMap<String, (&'static str, String)>,
}

impl MicroWeb {
    fn new() -> MicroWeb {
        let mut pages = HashMap::new();
        pages.insert(
            "https://news.example/".to_owned(),
            (
                "text/html",
                r#"<html>
                  <script src="https://tagmanager.example/gtm.js"></script>
                  <iframe src="https://adplatform.example/frame"></iframe>
                </html>"#
                    .to_owned(),
            ),
        );
        pages.insert(
            "https://tagmanager.example/gtm.js".to_owned(),
            (
                "text/javascript",
                "# gtm-like container\ntopics js\n".to_owned(),
            ),
        );
        pages.insert(
            "https://adplatform.example/frame".to_owned(),
            (
                "text/html",
                "<html><script>topics js</script></html>".to_owned(),
            ),
        );
        MicroWeb { pages }
    }
}

impl NetworkService for MicroWeb {
    fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
        Ok(())
    }
    fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
        Ok(())
    }
    fn fetch(&self, req: &HttpRequest, _now: Timestamp) -> Result<HttpResponse, NetError> {
        let key = format!(
            "{}://{}{}",
            req.url.scheme().as_str(),
            req.url.host(),
            req.url.path()
        );
        Ok(match self.pages.get(&key) {
            Some((ct, body)) => HttpResponse::ok(ct, body.clone()),
            None => HttpResponse::not_found(),
        })
    }
}

fn run(store: AttestationStore, label: &str) {
    println!("--- {label} ---");
    let classifier = Arc::new(Classifier::new(1));
    let mut browser = Browser::new(classifier, store, BrowserConfig::default(), 7);
    let visit = browser
        .visit(
            &MicroWeb::new(),
            &Url::parse("https://news.example/").unwrap(),
            Timestamp::CRAWL_START,
        )
        .expect("micro-web always loads");
    for call in &visit.topics_calls {
        println!(
            "  caller = {:<22} context = {:<6} via = {:<22} type = {:<10} decision = {:?}",
            call.caller.as_str(),
            if call.root_context { "ROOT" } else { "iframe" },
            call.script_source
                .as_ref()
                .map(|d| d.as_str())
                .unwrap_or("(inline)"),
            format!("{:?}", call.call_type),
            call.decision,
        );
    }
    println!();
}

fn main() {
    println!("Figure 4 — the origin mechanism with scripts and iframes\n");
    println!(
        "The page news.example includes a tag-manager script directly\n\
         (root context) and an ad platform via an iframe (own context).\n"
    );

    // The paper's crawler: corrupted allow-list, everything executes.
    run(
        AttestationStore::corrupted(),
        "corrupted allow-list (fail-open bug, the paper's setup)",
    );

    // A stock browser: only the enrolled ad platform may call.
    run(
        AttestationStore::healthy([Domain::parse("adplatform.example").unwrap()]),
        "healthy allow-list (only adplatform.example enrolled)",
    );

    println!(
        "Note how the script-included tag is attributed to news.example —\n\
         the website itself — exactly the §4 anomalous-call signature,\n\
         while the iframe call belongs to adplatform.example."
    );
}
