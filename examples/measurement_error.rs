//! Measurement error — what the paper's pipeline cannot see about
//! itself.
//!
//! A crawl of the real web has unknowable blind spots: how many banners
//! did Priv-Accept miss, how much of a platform's footprint escaped
//! presence detection, how far is a measured A/B fraction from the
//! platform's real arm? On the synthetic web the ground truth is known,
//! so the whole pipeline's error bars can be printed.
//!
//! ```sh
//! cargo run --release --example measurement_error
//! ```

use topics_core::{fidelity, Lab, LabConfig};

fn main() {
    let seed = 2024;
    let sites = 15_000;
    eprintln!("building a {sites}-site web (seed {seed}) and crawling …");
    let lab = Lab::new(LabConfig::quick(seed, sites));
    let outcome = lab.run();
    let report = fidelity(&lab.world, &outcome);
    println!("{}", report.render());
    println!(
        "Reading: banner *detection* is near-perfect (the container is in\n\
         the markup), but *acceptance* is capped by language coverage and\n\
         phrasing — which is exactly why the paper's After-Accept dataset\n\
         covers ~30% of sites, not 52%. Presence recall over After-Accept\n\
         visits is complete, and the A/B arm estimates converge on the\n\
         platforms' true fractions as presence grows — the basis for\n\
         trusting Figure 3's clusters."
    );
}
