#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tests.
#
# Run from the repo root. Every step must pass; the script stops at the
# first failure. This is the same sequence the project expects a PR to
# be green on.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== no undocumented #[ignore] =="
# A bare `#[ignore]` silently removes coverage; every ignored test must
# carry a reason: `#[ignore = "why"]`. Vendored code is exempt.
if grep -rn --include='*.rs' -E '#\[ignore\]' crates tests examples 2>/dev/null; then
    echo "error: bare #[ignore] found — use #[ignore = \"reason\"]" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== chaos suite (fault injection) =="
cargo test -q -p topics-core --test integration_faults

echo "== doctor on a chaos campaign (5% fault band) =="
# A traced crawl under faults must produce a trace the doctor can fully
# reconcile against the metric tally: orphan spans, duplicate IDs,
# negative durations, or span/metric count mismatches all exit non-zero.
DOCTOR_DIR=$(mktemp -d)
trap 'rm -rf "$DOCTOR_DIR"' EXIT
cargo run --release -q -p topics-core --bin topics-lab -- crawl \
    --sites 500 --seed 7 --quiet --fault-profile 0.05 \
    --out "$DOCTOR_DIR" --trace-out trace.jsonl --metrics-out metrics.prom \
    > /dev/null
cargo run --release -q -p topics-core --bin topics-lab -- doctor \
    --campaign "$DOCTOR_DIR" > /dev/null

echo "== prometheus render has no duplicate headers =="
# Each metric family must emit exactly one # HELP and one # TYPE line;
# duplicates mean the renderer double-registered a family.
DUPES=$(grep -E '^# (HELP|TYPE) ' "$DOCTOR_DIR/metrics.prom" | sort | uniq -d || true)
if [ -n "$DUPES" ]; then
    echo "error: duplicate Prometheus header lines:" >&2
    echo "$DUPES" >&2
    exit 1
fi

echo "== property suites =="
cargo test -q -p topics-net --test properties
cargo test -q -p topics-browser --test properties

echo "== perf smoke (attestation-probe phase vs committed baseline) =="
# Fails when the probe phase takes >1.5× the BENCH_summary.json
# baseline at the same scale; skips itself when the baseline is missing
# or was recorded at a different TOPICS_BENCH_SITES.
TOPICS_BENCH_SITES=2000 timeout 300 \
    cargo run --release -q -p topics-bench --bin perf_smoke

echo "CI OK"
