#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tests.
#
# Run from the repo root. Every step must pass; the script stops at the
# first failure. This is the same sequence the project expects a PR to
# be green on.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== no undocumented #[ignore] =="
# A bare `#[ignore]` silently removes coverage; every ignored test must
# carry a reason: `#[ignore = "why"]`. Vendored code is exempt.
if grep -rn --include='*.rs' -E '#\[ignore\]' crates tests examples 2>/dev/null; then
    echo "error: bare #[ignore] found — use #[ignore = \"reason\"]" >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "== chaos suite (fault injection) =="
cargo test -q -p topics-core --test integration_faults

echo "== doctor on a chaos campaign (5% fault band, alloc-counted) =="
# A traced crawl under faults must produce a trace the doctor can fully
# reconcile against the metric tally: orphan spans, duplicate IDs,
# negative durations, span/metric count mismatches, or phase allocation
# windows that undercut their attributed children all exit non-zero.
DOCTOR_DIR=$(mktemp -d)
SHARD_DIR=$(mktemp -d)
SIM_DIR=""
SERVE_PID=""
trap 'rm -rf "$DOCTOR_DIR" "$SHARD_DIR" "$SIM_DIR"; [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT
cargo run --release -q -p topics-core --bin topics-lab -- crawl \
    --sites 500 --seed 7 --quiet --fault-profile 0.05 --alloc-stats \
    --out "$DOCTOR_DIR" --trace-out trace.jsonl --metrics-out metrics.prom \
    > /dev/null
cargo run --release -q -p topics-core --bin topics-lab -- doctor \
    --campaign "$DOCTOR_DIR" > /dev/null

echo "== memprofile on the chaos trace =="
# The alloc-counted trace must yield a non-empty memory attribution
# report (per-phase allocation, top spans, retry clusters).
cargo run --release -q -p topics-core --bin topics-lab -- memprofile \
    --campaign "$DOCTOR_DIR" > /dev/null

echo "== prometheus render has no duplicate headers =="
# Each metric family must emit exactly one # HELP and one # TYPE line;
# duplicates mean the renderer double-registered a family.
DUPES=$(grep -E '^# (HELP|TYPE) ' "$DOCTOR_DIR/metrics.prom" | sort | uniq -d || true)
if [ -n "$DUPES" ]; then
    echo "error: duplicate Prometheus header lines:" >&2
    echo "$DUPES" >&2
    exit 1
fi

echo "== shard equivalence (1-shard and 4-shard merges == single run) =="
# The shard/merge contract: the same seeded campaign run single-process,
# as one shard, and as four shards must yield byte-identical artefacts.
# Any drift in visit simulation, probe dedup, metric tallies, or trace
# reassembly shows up here as a cmp/diff failure.
TL="cargo run --release -q -p topics-core --bin topics-lab --"
$TL crawl --sites 500 --seed 21 --quiet --out "$SHARD_DIR/single" > /dev/null
$TL shard --shard 1/1 --sites 500 --seed 21 --quiet --out "$SHARD_DIR/m1" > /dev/null
$TL merge --segments "$SHARD_DIR/m1" > /dev/null
for K in 1 2 3 4; do
    $TL shard --shard "$K/4" --sites 500 --seed 21 --quiet --out "$SHARD_DIR/m4" > /dev/null
done
$TL merge --segments "$SHARD_DIR/m4" > /dev/null
for ART in campaign.json report.txt; do
    cmp "$SHARD_DIR/single/$ART" "$SHARD_DIR/m1/$ART"
    cmp "$SHARD_DIR/single/$ART" "$SHARD_DIR/m4/$ART"
done
# Merged stripped traces must agree across shard counts.
diff -q "$SHARD_DIR/m1/trace.jsonl" "$SHARD_DIR/m4/trace.jsonl"
# The doctor re-verifies segment checksums, shard coverage, and that the
# merge reproduces campaign.json, from the files on disk.
$TL doctor --campaign "$SHARD_DIR/m4" > /dev/null

echo "== store equivalence (columnar vs JSON backends) =="
# The same crawl written through both store backends must render
# byte-identical artefacts, `report` must print the same text from
# either bundle, a merge streamed into the columnar writer must
# reproduce the crawl-written campaign.col byte for byte, and the
# doctor must verify the store (section checksums, intern referential
# integrity, dataset agreement with the loaded campaign).
$TL crawl --sites 500 --seed 21 --quiet --store columnar \
    --out "$SHARD_DIR/col" > /dev/null
for ART in report.txt comparison.txt table1.csv fig2_presence.csv \
    fig3_fractions.csv fig5_questionable.csv fig6_geo.csv fig7_cmp.csv \
    sec3_timeline.csv sec4_anomalous.csv calls.csv sites.csv; do
    cmp "$SHARD_DIR/single/$ART" "$SHARD_DIR/col/$ART"
done
$TL report --campaign "$SHARD_DIR/single" > "$SHARD_DIR/report-json.txt"
$TL report --campaign "$SHARD_DIR/col" > "$SHARD_DIR/report-col.txt"
diff -q "$SHARD_DIR/report-json.txt" "$SHARD_DIR/report-col.txt"
$TL merge --segments "$SHARD_DIR/m4" --store columnar \
    --out "$SHARD_DIR/colmerge" > /dev/null
cmp "$SHARD_DIR/col/campaign.col" "$SHARD_DIR/colmerge/campaign.col"
$TL doctor --campaign "$SHARD_DIR/colmerge" > /dev/null

echo "== serve smoke (live query service over the chaos campaign) =="
# `topics-lab serve` holds the campaign resident and must answer every
# endpoint, serve /api/report byte-identical to the offline artefact,
# count its own requests exactly at /metrics, and drain cleanly on
# POST /shutdown. The chaos campaign has a trace next to it, so
# /api/doctor and /api/profile are exercised too.
$TL serve --campaign "$DOCTOR_DIR" --quiet \
    --addr-file "$DOCTOR_DIR/addr.txt" 2> /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
    [ -s "$DOCTOR_DIR/addr.txt" ] && break
    sleep 0.1
done
ADDR=$(cat "$DOCTOR_DIR/addr.txt")
for EP in /healthz /readyz /api/table1 /api/fig2 /api/fig3 /api/fig5 \
    /api/fig6 /api/fig7 /api/anomalous /api/doctor /api/profile; do
    $TL fetch --addr "$ADDR" --path "$EP" > /dev/null
done
$TL fetch --addr "$ADDR" --path /api/report --out "$DOCTOR_DIR/served-report.txt"
cmp "$DOCTOR_DIR/served-report.txt" "$DOCTOR_DIR/report.txt"
# 12 requests so far; the scrape counts itself before rendering, so the
# exposition must account for exactly 13.
$TL fetch --addr "$ADDR" --path /metrics --out "$DOCTOR_DIR/served-metrics.prom"
TOTAL=$(grep -E '^http_requests_total\{' "$DOCTOR_DIR/served-metrics.prom" \
    | awk '{s+=$2} END {print s}')
if [ "$TOTAL" != "13" ]; then
    echo "error: /metrics counted $TOTAL requests, expected 13" >&2
    exit 1
fi
$TL fetch --addr "$ADDR" --path /shutdown --post > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

echo "== shard suites (properties, byte-identity, corruption) =="
cargo test -q -p topics-crawler --test properties
cargo test -q -p topics-core --test integration_shard
cargo test -q -p topics-core --test integration_store

echo "== property suites =="
cargo test -q -p topics-net --test properties
cargo test -q -p topics-browser --test properties

echo "== simulate smoke (population engine vs committed goldens) =="
# The population engine's determinism contract at smoke scale: the
# curve CSVs must be byte-identical across thread counts AND match the
# committed goldens — any drift in the arena advancement, the epoch
# collection, or the attack kernel shows up here as a cmp failure.
# The run is traced + alloc-counted so the trace-only doctor gate runs
# on a real simulate trace.
SIM_DIR=$(mktemp -d)
$TL simulate --users 2000 --epochs 8 --sites 800 --sample 500 --seed 7 \
    --threads 4 --quiet --out "$SIM_DIR/t4" --alloc-stats \
    --trace-out trace.jsonl > /dev/null
$TL simulate --users 2000 --epochs 8 --sites 800 --sample 500 --seed 7 \
    --threads 1 --quiet --out "$SIM_DIR/t1" > /dev/null
for ART in sim_kanon.csv sim_reident.csv sim_report.txt; do
    cmp "$SIM_DIR/t4/$ART" "$SIM_DIR/t1/$ART"
done
cmp "$SIM_DIR/t4/sim_kanon.csv" tests/golden/sim_kanon_smoke.csv
cmp "$SIM_DIR/t4/sim_reident.csv" tests/golden/sim_reident_smoke.csv
# Trace-only doctor over the simulate trace (no campaign to load).
$TL doctor --trace "$SIM_DIR/t4/trace.jsonl" > /dev/null
rm -rf "$SIM_DIR"

echo "== perf ledger verifies and is append-only =="
# BENCH_summary.json is an append-only history chained with FNV-1a:
# editing or dropping a recorded entry breaks the chain. When the file
# is committed, the working tree must also be a pure extension of HEAD.
PREV_LEDGER=""
if git cat-file -e HEAD:BENCH_summary.json 2>/dev/null; then
    PREV_LEDGER=$(mktemp)
    git show HEAD:BENCH_summary.json > "$PREV_LEDGER"
fi
TOPICS_PERF_PREV="$PREV_LEDGER" \
    cargo run --release -q -p topics-bench --bin perf_smoke -- verify-history
[ -n "$PREV_LEDGER" ] && rm -f "$PREV_LEDGER"

echo "== perf smoke (time + memory vs last ledger entry) =="
# Fails when the probe phase or full-report render is >1.30× the last
# BENCH_summary.json entry, or allocated bytes / peak RSS exceed 1.25×;
# skips itself when the history is missing or recorded at a different
# TOPICS_BENCH_SITES.
TOPICS_BENCH_SITES=2000 timeout 300 \
    cargo run --release -q -p topics-bench --bin perf_smoke

echo "== perf smoke memory gate fires on an injected regression =="
# The mem-regression-fixture feature makes every campaign run allocate
# 2× its own heap; the memory gate MUST catch it, or the gate is dead.
if TOPICS_BENCH_SITES=2000 TOPICS_PERF_RUNS=1 timeout 300 \
    cargo run --release -q -p topics-bench --bin perf_smoke \
    --features topics-core/mem-regression-fixture > /dev/null 2>&1; then
    echo "error: perf smoke passed with the 2× allocation fixture — the memory gate is not firing" >&2
    exit 1
fi

echo "CI OK"
