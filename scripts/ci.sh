#!/usr/bin/env bash
# Repository CI gate: formatting, lints, tests.
#
# Run from the repo root. Every step must pass; the script stops at the
# first failure. This is the same sequence the project expects a PR to
# be green on.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q

echo "CI OK"
