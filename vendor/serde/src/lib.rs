//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim
//! routes everything through one owned tree, [`Content`]: serializing
//! means building a `Content`, deserializing means reading one. The
//! vendored `serde_derive` generates impls against these traits and the
//! vendored `serde_json` renders/parses `Content` as JSON. The surface
//! is exactly what this workspace uses — derived impls on non-generic
//! types plus the std impls below.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The owned serialization tree: the single data model every impl
/// targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object; insertion order is preserved so output is
    /// deterministic.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer value as u64 (accepts non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(v) => Some(v),
            Content::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// Integer value as i64.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric value as f64 (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(v) => Some(v),
            Content::U64(v) => Some(v as f64),
            Content::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Boolean value, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Look up a key in a map's entry slice (helper for derived impls).
pub fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying a message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Error {
        Error::msg(format!("missing field `{field}` for {ty}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A value that can be rendered into a [`Content`] tree.
pub trait Serialize {
    /// Build the content tree for this value.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild a value from the content tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_u64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let v = c
                    .as_i64()
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(v)
                    .map_err(|_| Error::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for Arc<str> {
    fn to_content(&self) -> Content {
        Content::Str(self.as_ref().to_owned())
    }
}

impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(Arc::from)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

// ---- composite impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::msg("wrong tuple length"));
                }
                Ok(($($t::from_content(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render as plain JSON strings.
fn key_string(c: &Content) -> Result<String, Error> {
    match c {
        Content::Str(s) => Ok(s.clone()),
        Content::U64(v) => Ok(v.to_string()),
        Content::I64(v) => Ok(v.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        _ => Err(Error::msg("unsupported map key type")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(&k.to_content()).expect("map key must be string-like"),
                        v.to_content(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map_slice()
            .ok_or_else(|| Error::msg("expected map"))?
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_content(&Content::Str(k.clone()))?,
                    V::from_content(v)?,
                ))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(&k.to_content()).expect("map key must be string-like"),
                    v.to_content(),
                )
            })
            .collect();
        // Hash iteration order is unstable; sort for deterministic output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(|c| format!("{c:?}"));
        Content::Seq(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_vecs_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let c = v.to_content();
        assert_eq!(Vec::<Option<u32>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn tuples_round_trip() {
        let t = ("a".to_string(), 7u64);
        let c = t.to_content();
        assert_eq!(<(String, u64)>::from_content(&c).unwrap(), t);
    }

    #[test]
    fn arc_str_round_trips() {
        let a: Arc<str> = Arc::from("shared");
        let c = a.to_content();
        let b: Arc<str> = Arc::from_content(&c).unwrap();
        assert_eq!(&*b, "shared");
    }
}
