//! Offline stand-in for `parking_lot`: thin newtypes over the std
//! primitives with `parking_lot`'s no-poisoning API. A poisoned std
//! lock simply hands back the inner guard — panicking while holding a
//! lock is already a bug the panic reports.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex that does not expose lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not expose lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutate() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
