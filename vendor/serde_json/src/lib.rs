//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde` crate's `Content` tree as JSON. Supports the workspace's
//! surface — `to_string`, `to_string_pretty`, `from_str`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serialize a value as a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::from_content(&content)?)
}

// ---- writer ----------------------------------------------------------

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            let s = v.to_string();
            out.push_str(&s);
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Content::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Content::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Content::Bool(false))
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Content::Seq(items)),
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Content::Map(entries)),
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected byte {other:?} at {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let first = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.parse_hex4()?;
                            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a UTF-8 multibyte sequence.
                    let start = self.pos - 1;
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::new("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v: Vec<(String, u64)> = vec![("a".into(), 1), ("b\"x".into(), 2)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, u64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u64> = vec![1, 2];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  1"), "{s}");
    }

    #[test]
    fn parses_nested_objects_and_escapes() {
        let c: Vec<Vec<String>> = from_str(r#"[["a\nb","A"],[]]"#).unwrap();
        assert_eq!(c, vec![vec!["a\nb".to_string(), "A".to_string()], vec![]]);
    }

    #[test]
    fn numbers_parse_by_kind() {
        let u: u64 = from_str("42").unwrap();
        assert_eq!(u, 42);
        let i: i64 = from_str("-42").unwrap();
        assert_eq!(i, -42);
        let f: f64 = from_str("0.5").unwrap();
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn floats_round_trip_through_text() {
        let xs = [0.132, 1.0 / 3.0, 123456.789];
        for x in xs {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "{s}");
        }
    }
}
