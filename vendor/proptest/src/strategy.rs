//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a follow-up strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies (see `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// ---- ranges ----------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                (lo + rng.below(span.saturating_add(1)) as i64) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Occasionally pin the endpoints so boundary behaviour is hit.
        match rng.below(16) {
            0 => *self.start(),
            1 => *self.end(),
            _ => *self.start() + rng.unit_f64() * (*self.end() - *self.start()),
        }
    }
}

// ---- tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// ---- regex-like string strategies ------------------------------------

/// String literals act as generators for a small regex subset: literal
/// characters, `.`, `[a-z0-9]` classes (ranges and singletons) and the
/// quantifiers `*`, `+`, `?`, `{m}`, `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `.` — any printable char (plus a few awkward ones).
    Dot,
    /// A `[...]` class, expanded to its members.
    Class(Vec<char>),
    /// A `(...)` group of sub-pieces.
    Group(Vec<Piece>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut members = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            members.push(c);
                        }
                        i += 3;
                    } else {
                        members.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                Atom::Class(members)
            }
            '(' => {
                let start = i + 1;
                let mut depth = 1;
                let mut j = start;
                while j < chars.len() && depth > 0 {
                    match chars[j] {
                        '(' => depth += 1,
                        ')' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                let inner: String = chars[start..j - 1].iter().collect();
                i = j;
                Atom::Group(parse_pattern(&inner))
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 12)
            }
            Some('+') => {
                i += 1;
                (1, 12)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != '}' {
                    i += 1;
                }
                let body: String = chars[start..i].iter().collect();
                i += 1; // '}'
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().unwrap_or(0),
                        hi.trim().parse().unwrap_or(0),
                    ),
                    None => {
                        let n = body.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// The alphabet backing `.`: printable ASCII plus characters that tend
/// to break naive parsers.
const DOT_ALPHABET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '\t', '\n', '<', '>', '/', '\\', '"', '\'', '&', ';',
    '=', '-', '_', '.', ',', ':', '(', ')', '[', ']', '{', '}', '#', '%', '?', '!', '*', '+', '|',
    '~', '`', '@', '^', 'é', '語', '☃',
];

fn generate_pieces(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let count = piece.min + (rng.below(u64::from(piece.max - piece.min) + 1) as u32);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Dot => {
                    out.push(DOT_ALPHABET[rng.below(DOT_ALPHABET.len() as u64) as usize]);
                }
                Atom::Class(members) => {
                    if !members.is_empty() {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
                Atom::Group(inner) => generate_pieces(inner, rng, out),
            }
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    generate_pieces(&pieces, rng, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_parser_handles_classes_and_quantifiers() {
        let mut rng = TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = "[a-c][0-9]{2,4}x?".generate(&mut rng);
            assert!(('a'..='c').contains(&s.chars().next().unwrap()), "{s}");
            let digits = s.chars().filter(char::is_ascii_digit).count();
            assert!((2..=4).contains(&digits), "{s}");
        }
    }

    #[test]
    fn dot_star_varies() {
        let mut rng = TestRng::for_test("dots");
        let a = ".*".generate(&mut rng);
        let mut saw_different = false;
        for _ in 0..20 {
            if ".*".generate(&mut rng) != a {
                saw_different = true;
            }
        }
        assert!(saw_different);
    }

    #[test]
    fn union_picks_all_options() {
        let mut rng = TestRng::for_test("union");
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(u.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
