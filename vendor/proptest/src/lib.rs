//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, the `Strategy` trait and the
//! strategies this workspace uses: regex-like string literals, integer
//! and float ranges, `Just`, `any::<T>()`, tuples, `prop_oneof!` and
//! `prop::collection::vec`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! across runs; there is no shrinking.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix edge values in so "any" exercises extremes.
                    match rng.next_u64() % 8 {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() % 2 == 0
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    /// Strategy wrapper produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max - self.size.min;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % (span as u64 + 1)) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>` (see [`of`]).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner
    /// strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// Alias so `prop::collection::vec(...)` resolves after a glob import.
    pub use crate as prop;
}

pub use prelude::*;

/// Assert a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose uniformly between several strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Define property tests. Each test runs `config.cases` deterministic
/// cases of its argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __run = move || { $body };
                __run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, y in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn string_patterns_match_shape(s in "[a-z][a-z0-9]{0,5}") {
            prop_assert!(!s.is_empty() && s.len() <= 6, "{s}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn vec_and_oneof_compose(
            v in prop::collection::vec(any::<bool>(), 2..=4),
            tld in prop_oneof![Just("com"), Just("net")]
        ) {
            prop_assert!((2..=4).contains(&v.len()));
            prop_assert!(tld == "com" || tld == "net");
        }

        #[test]
        fn flat_map_links_values((a, b) in (1usize..5).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(b < a);
        }
    }

    #[test]
    fn same_test_name_is_deterministic() {
        use crate::strategy::Strategy;
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        let s = "[a-f0-9]{8}";
        for _ in 0..10 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
