//! Deterministic case generation.

/// Per-`proptest!` configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A small deterministic RNG (splitmix64), seeded from the test name so
/// every test explores its own stable sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}
