//! Offline stand-in for `criterion`: `bench_function`/`iter` with plain
//! wall-clock timing. Each benchmark runs a short warm-up followed by
//! `sample_size` timed samples and prints min/mean/max per iteration —
//! enough to compare hot paths locally without the real statistics
//! machinery.

use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Honor a name filter passed on the command line (`cargo bench -- <filter>`).
    #[must_use]
    pub fn configure_from_args(mut self) -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self.filter = filter;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up sample, discarded.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(name, &b.samples);
        self
    }

    /// Print the closing summary (layout parity with the real crate).
    pub fn final_summary(&self) {}
}

/// Passed to the benchmark closure; times one sample per `iter` call.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f` as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        drop(out);
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut calls = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("stub/smoke", |b| b.iter(|| calls += 1));
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
