//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde` crate's `Serialize` /
//! `Deserialize` traits (which operate on an owned `serde::Content`
//! tree) for structs, tuple structs and enums. Supports the container
//! and field attributes used by this workspace: `transparent`,
//! `rename = "..."`, `default`, and `skip_serializing_if = "path"`.
//!
//! Written directly against `proc_macro` (no `syn`/`quote`): the item
//! is parsed with a small hand-rolled token walker and the impls are
//! emitted as strings.

use proc_macro::{TokenStream, TokenTree};

#[derive(Default)]
struct Attrs {
    rename: Option<String>,
    default: bool,
    skip_serializing_if: Option<String>,
    transparent: bool,
}

struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    attrs: Attrs,
    /// Whether the declared type's leading ident is `Option`.
    is_option: bool,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    ident: String,
    attrs: Attrs,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        attrs: Attrs,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Parse the serde-relevant parts of one `#[...]` attribute group into
/// `out`. Non-serde attributes (doc comments, `#[default]`, ...) are
/// ignored.
fn parse_attr_group(group: &proc_macro::Group, out: &mut Attrs) {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let is_serde = matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return;
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) => g.stream(),
        _ => return,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        let key = match &inner[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        let mut value: Option<String> = None;
        if matches!(inner.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = inner.get(i + 2) {
                let raw = lit.to_string();
                value = Some(raw.trim_matches('"').to_string());
                i += 2;
            }
        }
        match key.as_str() {
            "rename" => out.rename = value.clone(),
            "default" => out.default = true,
            "skip_serializing_if" => out.skip_serializing_if = value.clone(),
            "transparent" => out.transparent = true,
            other => panic!("serde_derive stand-in: unsupported serde attribute `{other}`"),
        }
        i += 1;
        if matches!(inner.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
}

/// Consume leading `#[...]` attributes starting at `*i`, merging any
/// serde attributes into the returned `Attrs`.
fn take_attrs(toks: &[TokenTree], i: &mut usize) -> Attrs {
    let mut attrs = Attrs::default();
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            parse_attr_group(g, &mut attrs);
            *i += 2;
        } else {
            break;
        }
    }
    attrs
}

/// Skip a `pub` / `pub(crate)` visibility prefix.
fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == proc_macro::Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past one field's type: everything up to the next `,` that is
/// not nested inside `<...>` angle brackets (token-tree groups are
/// single trees already). Returns whether the type's first token is the
/// `Option` ident.
fn skip_type(toks: &[TokenTree], i: &mut usize) -> bool {
    let is_option =
        matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "Option");
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
    is_option
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        // ':'
        i += 1;
        let is_option = skip_type(&toks, &mut i);
        // ','
        i += 1;
        fields.push(Field {
            name,
            attrs,
            is_option,
        });
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0usize;
    while i < toks.len() {
        let attrs = take_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let is_option = skip_type(&toks, &mut i);
        // ','
        i += 1;
        fields.push(Field {
            name: index.to_string(),
            attrs,
            is_option,
        });
        index += 1;
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let container_attrs = take_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stand-in: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in: generic types are not supported ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g))
                    if g.delimiter() == proc_macro::Delimiter::Brace =>
                {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g))
                    if g.delimiter() == proc_macro::Delimiter::Parenthesis =>
                {
                    Shape::Tuple(parse_tuple_fields(g))
                }
                _ => Shape::Unit,
            };
            Item::Struct {
                name,
                attrs: container_attrs,
                shape,
            }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g))
                    if g.delimiter() == proc_macro::Delimiter::Brace =>
                {
                    g
                }
                other => panic!("serde_derive stand-in: expected enum body, got {other:?}"),
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0;
            while j < vt.len() {
                let attrs = take_attrs(&vt, &mut j);
                let ident = match vt.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => break,
                };
                j += 1;
                let shape = match vt.get(j) {
                    Some(TokenTree::Group(g))
                        if g.delimiter() == proc_macro::Delimiter::Parenthesis =>
                    {
                        j += 1;
                        Shape::Tuple(parse_tuple_fields(g))
                    }
                    Some(TokenTree::Group(g))
                        if g.delimiter() == proc_macro::Delimiter::Brace =>
                    {
                        j += 1;
                        Shape::Named(parse_named_fields(g))
                    }
                    _ => Shape::Unit,
                };
                // ','
                if matches!(vt.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    j += 1;
                }
                variants.push(Variant {
                    ident,
                    attrs,
                    shape,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stand-in: unsupported item kind `{other}`"),
    }
}

fn field_key(f: &Field) -> String {
    f.attrs.rename.clone().unwrap_or_else(|| f.name.clone())
}

fn variant_key(v: &Variant) -> String {
    v.attrs.rename.clone().unwrap_or_else(|| v.ident.clone())
}

/// `Serialize` body for a set of named fields accessed through `prefix`
/// (e.g. `&self.` or `` for pre-bound idents).
fn ser_named(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let mut out = String::from(
        "{ let mut _serde_m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        let key = field_key(f);
        let a = access(f);
        let push = format!(
            "_serde_m.push((\"{key}\".to_string(), ::serde::Serialize::to_content({a})));"
        );
        if let Some(skip) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{skip}({a}) {{ {push} }}"));
        } else {
            out.push_str(&push);
        }
    }
    out.push_str("::serde::Content::Map(_serde_m) }");
    out
}

/// `Deserialize` field initialisers for named fields, reading from the
/// map slice bound to `_serde_m`.
fn de_named(ty: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let key = field_key(f);
        let missing = if f.attrs.default || f.is_option {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::Error::missing_field(\"{key}\", \
                 \"{ty}\"))"
            )
        };
        out.push_str(&format!(
            "{name}: match ::serde::map_get(_serde_m, \"{key}\") {{ \
             ::std::option::Option::Some(_serde_v) => \
             ::serde::Deserialize::from_content(_serde_v)?, \
             ::std::option::Option::None => {missing}, }},",
            name = f.name
        ));
    }
    out
}

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, attrs, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 || attrs.transparent => {
                    format!(
                        "::serde::Serialize::to_content(&self.{})",
                        fields[0].name
                    )
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| format!("::serde::Serialize::to_content(&self.{})", f.name))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) if attrs.transparent && fields.len() == 1 => format!(
                    "::serde::Serialize::to_content(&self.{})",
                    fields[0].name
                ),
                Shape::Named(fields) => ser_named(fields, |f| format!("&self.{}", f.name)),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_content(&self) -> ::serde::Content \
                 {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(v);
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{id} => ::serde::Content::Str(\"{key}\".to_string()),",
                        id = v.ident
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => arms.push_str(&format!(
                        "{name}::{id}(_serde_f0) => ::serde::Content::Map(vec![(\"{key}\"\
                         .to_string(), ::serde::Serialize::to_content(_serde_f0))]),",
                        id = v.ident
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|k| format!("_serde_f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{id}({binds}) => ::serde::Content::Map(vec![(\"{key}\"\
                             .to_string(), ::serde::Content::Seq(vec![{items}]))]),",
                            id = v.ident,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{}: _serde_b_{}", f.name, f.name))
                            .collect();
                        let inner =
                            ser_named(fields, |f| format!("_serde_b_{}", f.name));
                        arms.push_str(&format!(
                            "{name}::{id} {{ {binds} }} => ::serde::Content::Map(vec![(\"{key}\"\
                             .to_string(), {inner})]),",
                            id = v.ident,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ fn to_content(&self) -> ::serde::Content \
                 {{ match self {{ {arms} }} }} }}"
            )
        }
    }
}

fn derive_deserialize_impl(item: &Item) -> String {
    let header = |name: &str, body: &str| {
        format!(
            "impl ::serde::Deserialize for {name} {{ fn from_content(_serde_c: \
             &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
        )
    };
    match item {
        Item::Struct { name, attrs, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(fields) if fields.len() == 1 || attrs.transparent => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(\
                     _serde_c)?))"
                ),
                Shape::Tuple(fields) => {
                    let n = fields.len();
                    let items: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Deserialize::from_content(&_serde_s[{k}])?"))
                        .collect();
                    format!(
                        "let _serde_s = _serde_c.as_seq().ok_or_else(|| \
                         ::serde::Error::msg(\"expected a sequence for {name}\"))?; \
                         if _serde_s.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::msg(\"wrong tuple length for {name}\")); }} \
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) if attrs.transparent && fields.len() == 1 => format!(
                    "::std::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::from_content(_serde_c)? }})",
                    f = fields[0].name
                ),
                Shape::Named(fields) => format!(
                    "let _serde_m = _serde_c.as_map_slice().ok_or_else(|| \
                     ::serde::Error::msg(\"expected a map for {name}\"))?; \
                     ::std::result::Result::Ok({name} {{ {inits} }})",
                    inits = de_named(name, fields)
                ),
            };
            header(name, &body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let key = variant_key(v);
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{id}),",
                        id = v.ident
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => data_arms.push_str(&format!(
                        "\"{key}\" => ::std::result::Result::Ok({name}::{id}(\
                         ::serde::Deserialize::from_content(_serde_v)?)),",
                        id = v.ident
                    )),
                    Shape::Tuple(fields) => {
                        let n = fields.len();
                        let items: Vec<String> = (0..n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_content(&_serde_s[{k}])?")
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{key}\" => {{ let _serde_s = _serde_v.as_seq().ok_or_else(|| \
                             ::serde::Error::msg(\"expected a sequence for {name}::{id}\"))?; \
                             if _serde_s.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::msg(\"wrong tuple length for {name}::{id}\")); }} \
                             ::std::result::Result::Ok({name}::{id}({items})) }},",
                            id = v.ident,
                            items = items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => data_arms.push_str(&format!(
                        "\"{key}\" => {{ let _serde_m = _serde_v.as_map_slice().ok_or_else(|| \
                         ::serde::Error::msg(\"expected a map for {name}::{id}\"))?; \
                         ::std::result::Result::Ok({name}::{id} {{ {inits} }}) }},",
                        id = v.ident,
                        inits = de_named(name, fields)
                    )),
                }
            }
            let body = format!(
                "match _serde_c {{ \
                 ::serde::Content::Str(_serde_s) => match _serde_s.as_str() {{ {unit_arms} \
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown variant for {name}\")), }}, \
                 ::serde::Content::Map(_serde_entries) if _serde_entries.len() == 1 => {{ \
                 let (_serde_k, _serde_v) = &_serde_entries[0]; \
                 match _serde_k.as_str() {{ {data_arms} \
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown variant for {name}\")), }} }}, \
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected a string or single-entry map for {name}\")), }}"
            );
            header(name, &body)
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde_derive stand-in: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde_derive stand-in: generated invalid Deserialize impl")
}
