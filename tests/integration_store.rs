//! Integration: the two campaign stores are interchangeable.
//!
//! The store contract: a bundle written with `--store columnar` holds
//! the identical dataset as the JSON default — every rendered artefact
//! (report, comparison, table/figure CSVs) is **byte-identical**, the
//! loaded `CampaignOutcome` serialises identically, and the column-scan
//! index agrees with the row-struct `CampaignIndex` field for field —
//! under fault injection and across 1/2/4-shard merges. The columnar
//! bytes themselves are deterministic: same seed → same file,
//! regardless of thread count, run repetition, or whether the store was
//! written by a single crawl or streamed out of a segment merge.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::process::Command;
use topics_core::analysis::colscan::{self, ColumnIndex};
use topics_core::analysis::dataset::DatasetId;
use topics_core::analysis::index::{CampaignIndex, PresenceCount};
use topics_core::crawler::columnar::ColumnarCampaign;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::export::BUNDLE_FILES;
use topics_core::net::domain::Domain;
use topics_core::net::fault::FaultProfile;
use topics_core::obs::Obs;
use topics_core::{
    evaluate, load_campaign, merge_dir_columnar, run_shard, write_bundle, write_segment, Lab,
    LabConfig, StoreKind,
};

const SITES: usize = 200;

/// Unique temp dir per test (tests run concurrently in one process).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("topics-istore-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const DATASETS: [DatasetId; 3] = [
    DatasetId::BeforeAccept,
    DatasetId::AfterAccept,
    DatasetId::AfterReject,
];

/// Every aggregate of the column scan must equal the row-struct index.
fn assert_index_equiv(outcome: &CampaignOutcome, col: &ColumnIndex, tag: &str) {
    let idx = CampaignIndex::new(outcome);
    let want_candidates: Vec<Domain> = idx.candidates().iter().map(|d| (*d).clone()).collect();
    assert_eq!(col.candidates, want_candidates, "{tag}: candidates");
    for (slot, id) in DATASETS.into_iter().enumerate() {
        assert_eq!(
            col.visit_counts[slot],
            idx.visits(id).len(),
            "{tag}: {id:?} visits"
        );
        assert_eq!(
            col.call_counts[slot],
            idx.calls(id).len(),
            "{tag}: {id:?} calls"
        );
        let want_parties: BTreeSet<Domain> = idx
            .calling_parties(id)
            .iter()
            .map(|d| (*d).clone())
            .collect();
        assert_eq!(
            col.calling_parties[slot], want_parties,
            "{tag}: {id:?} parties"
        );
        let want_presence: BTreeMap<Domain, PresenceCount> = idx
            .presence(id)
            .iter()
            .map(|(d, c)| ((*d).clone(), *c))
            .collect();
        assert_eq!(col.presence[slot], want_presence, "{tag}: {id:?} presence");
        let want_sites: BTreeMap<Domain, BTreeSet<Domain>> = idx
            .calling_sites(id)
            .iter()
            .map(|(d, s)| ((*d).clone(), s.iter().map(|w| (*w).clone()).collect()))
            .collect();
        assert_eq!(
            col.calling_sites[slot], want_sites,
            "{tag}: {id:?} calling sites"
        );
    }
    assert_eq!(
        col.unique_third_parties,
        idx.unique_third_parties(),
        "{tag}: third parties"
    );
    assert_eq!(
        col.questionable_ba_visits,
        idx.ba_tags().iter().filter(|t| t.questionable).count(),
        "{tag}: questionable visits"
    );
    assert_eq!(
        col.outcome_counts,
        outcome.outcome_counts(),
        "{tag}: outcome counts"
    );
}

/// Write both bundles for one outcome and assert every rendered
/// artefact is byte-identical, both stores load back the same dataset,
/// and the column scan matches the row index.
fn assert_stores_equivalent(outcome: &CampaignOutcome, tag: &str) {
    let eval = evaluate(outcome);
    let dir_json = temp_dir(&format!("{tag}-json"));
    let dir_col = temp_dir(&format!("{tag}-col"));
    write_bundle(&dir_json, outcome, &eval, false, StoreKind::Json).unwrap();
    write_bundle(&dir_col, outcome, &eval, false, StoreKind::Columnar).unwrap();

    assert!(dir_col.join("campaign.col").is_file(), "{tag}: no .col");
    assert!(
        !dir_col.join("campaign.json").exists(),
        "{tag}: columnar bundle must not write campaign.json"
    );
    for artefact in BUNDLE_FILES.iter().filter(|f| **f != "campaign.json") {
        assert_eq!(
            std::fs::read(dir_json.join(artefact)).unwrap(),
            std::fs::read(dir_col.join(artefact)).unwrap(),
            "{tag}: {artefact} differs between stores"
        );
    }

    let from_json = load_campaign(&dir_json.join("campaign.json")).unwrap();
    let from_col = load_campaign(&dir_col.join("campaign.col")).unwrap();
    assert_eq!(
        serde_json::to_string(&from_json).unwrap(),
        serde_json::to_string(&from_col).unwrap(),
        "{tag}: loaded datasets differ between stores"
    );

    let store =
        ColumnarCampaign::decode(std::fs::read(dir_col.join("campaign.col")).unwrap()).unwrap();
    store.verify().unwrap();
    let col = colscan::scan(&store).unwrap();
    assert_index_equiv(&from_json, &col, tag);

    std::fs::remove_dir_all(&dir_json).unwrap();
    std::fs::remove_dir_all(&dir_col).unwrap();
}

#[test]
fn both_stores_render_identical_artefacts() {
    let outcome = Lab::new(LabConfig::quick(67, SITES).with_threads(2))
        .run()
        .outcome;
    assert_stores_equivalent(&outcome, "plain");
}

#[test]
fn both_stores_agree_under_fault_injection() {
    let config = LabConfig::quick(73, SITES)
        .with_threads(2)
        .with_fault_profile(FaultProfile::parse("0.05").unwrap());
    let outcome = Lab::new(config).run().outcome;
    let counts = outcome.outcome_counts();
    assert!(
        counts.degraded + counts.failed > 0,
        "fault profile must actually degrade some sites"
    );
    assert_stores_equivalent(&outcome, "faulted");
}

#[test]
fn columnar_bytes_are_identical_across_runs_and_thread_counts() {
    let reference = ColumnarCampaign::from_outcome(
        &Lab::new(LabConfig::quick(71, 150).with_threads(1))
            .run()
            .outcome,
    );
    for threads in [1, 2, 4] {
        let outcome = Lab::new(LabConfig::quick(71, 150).with_threads(threads))
            .run()
            .outcome;
        let store = ColumnarCampaign::from_outcome(&outcome);
        assert_eq!(
            store.bytes(),
            reference.bytes(),
            "{threads}-thread store bytes differ"
        );
    }
}

#[test]
fn sharded_columnar_merge_reproduces_the_single_run_store() {
    for (tag, config) in [
        ("plain", LabConfig::quick(79, SITES).with_threads(2)),
        (
            "faulted",
            LabConfig::quick(83, SITES)
                .with_threads(2)
                .with_fault_profile(FaultProfile::parse("0.05").unwrap()),
        ),
    ] {
        let outcome = Lab::new(config.clone()).run().outcome;
        let single = ColumnarCampaign::from_outcome(&outcome);
        let report = evaluate(&outcome).render_report();
        for shards in [1, 2, 4] {
            let dir = temp_dir(&format!("merge-{tag}-{shards}"));
            for shard in 0..shards {
                let segment = run_shard(&config, shard, shards, &Obs::new().with_trace());
                write_segment(&dir, &segment).unwrap();
            }
            let merged = merge_dir_columnar(&dir).unwrap();
            assert_eq!(
                merged.store.bytes(),
                single.bytes(),
                "{tag}: {shards}-shard merged store differs from the single-run store"
            );
            assert_eq!(
                evaluate(&merged.outcome).render_report(),
                report,
                "{tag}: {shards}-shard report differs"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

fn lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args(args)
        .output()
        .expect("topics-lab runs")
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("reading {name}: {e}"))
}

#[test]
fn cli_store_flag_equivalence_and_doctor() {
    let dir = temp_dir("cli");
    let json_dir = dir.join("json");
    let col_dir = dir.join("col");
    let segs = dir.join("segs");

    // The same crawl through both backends.
    for (out, extra) in [(&json_dir, None), (&col_dir, Some("columnar"))] {
        let mut args = vec!["crawl", "--sites", "60", "--seed", "13", "--quiet", "--out"];
        args.push(out.to_str().unwrap());
        if let Some(store) = extra {
            args.extend(["--store", store]);
        }
        let out = lab(&args);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Every rendered artefact byte-identical; only the store differs.
    for artefact in BUNDLE_FILES.iter().filter(|f| **f != "campaign.json") {
        assert_eq!(
            read(&json_dir, artefact),
            read(&col_dir, artefact),
            "{artefact} differs between --store backends"
        );
    }
    assert!(col_dir.join("campaign.col").is_file());
    assert!(!col_dir.join("campaign.json").exists());

    // `report` renders the same text from either bundle.
    let report_json = lab(&["report", "--campaign", json_dir.to_str().unwrap()]);
    let report_col = lab(&["report", "--campaign", col_dir.to_str().unwrap()]);
    assert!(report_json.status.success() && report_col.status.success());
    assert_eq!(report_json.stdout, report_col.stdout);

    // A merged columnar bundle reproduces the crawl-written store byte
    // for byte.
    for spec in ["1/2", "2/2"] {
        let out = lab(&[
            "shard",
            "--shard",
            spec,
            "--sites",
            "60",
            "--seed",
            "13",
            "--quiet",
            "--out",
            segs.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = lab(&[
        "merge",
        "--segments",
        segs.to_str().unwrap(),
        "--store",
        "columnar",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        read(&segs, "campaign.col"),
        read(&col_dir, "campaign.col"),
        "merge --store columnar must stream the same bytes the crawl wrote"
    );
    assert!(!segs.join("campaign.json").exists());

    // Doctor on the merged bundle verifies segments AND the columnar
    // store (checksums, intern integrity, dataset agreement).
    let out = lab(&["doctor", "--campaign", segs.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("== Shard segments =="), "{stdout}");
    assert!(stdout.contains("== Columnar store =="), "{stdout}");
    assert!(stdout.contains("[ok] campaign.col"), "{stdout}");

    // Corrupting the store is caught at load time: the checksum fails
    // before anything downstream can misread the bytes.
    let mut bytes = read(&segs, "campaign.col");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(segs.join("campaign.col"), &bytes).unwrap();
    let out = lab(&["doctor", "--campaign", segs.to_str().unwrap()]);
    assert!(!out.status.success(), "doctor must fail on a corrupt store");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("campaign.col"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An explicit `--store json` against a columnar-only bundle is a
    // clean load error, not a misparse.
    let out = lab(&[
        "report",
        "--campaign",
        col_dir.to_str().unwrap(),
        "--store",
        "json",
    ]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).unwrap();
}
