//! Integration: figure-level shape checks on a mid-size crawl.
//!
//! Each test asserts one qualitative finding of the paper's evaluation
//! on a 4,000-site campaign — large enough for the named platforms'
//! statistics to stabilise.

use topics_core::analysis::abtest::{clustering_share, fit_fraction};
use topics_core::analysis::anomalous::anomalous_stats;
use topics_core::analysis::cmp_usage::fig7;
use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::analysis::figures::{fig2, fig3, fig5, fig6};
use topics_core::analysis::timeline::timeline;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::net::region::Region;
use topics_core::{Lab, LabConfig};

const SEED: u64 = 777;
const SITES: usize = 4_000;

fn run() -> &'static CampaignOutcome {
    use std::sync::OnceLock;
    static OUTCOME: OnceLock<CampaignOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| Lab::new(LabConfig::quick(SEED, SITES)).run().outcome)
}

#[test]
fn fig2_shape_ga_first_doubleclick_third_enabled() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let rows = fig2(&ds, 15);
    assert!(rows.len() >= 10, "at least ten pervasive CPs");
    // google-analytics is the most pervasive and never calls.
    assert_eq!(rows[0].cp.as_str(), "google-analytics.com");
    assert_eq!(rows[0].called, 0);
    // doubleclick is second and calls on roughly a third of its sites.
    assert_eq!(rows[1].cp.as_str(), "doubleclick.net");
    let dc = rows[1].enabled_fraction();
    assert!((0.25..=0.42).contains(&dc), "doubleclick enabled {dc}");
    // bing is present but never calls.
    let bing = rows.iter().find(|r| r.cp.as_str() == "bing.com").unwrap();
    assert_eq!(bing.called, 0);
}

#[test]
fn fig3_fractions_cluster_on_canonical_arms() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let rows = fig3(&ds, 15);
    assert!(!rows.is_empty());
    // Most CPs sit near an arm.
    assert!(clustering_share(&rows, 0.10) > 0.7);
    // criteo's arm is 75%.
    if let Some(criteo) = rows.iter().find(|r| r.cp.as_str() == "criteo.com") {
        assert_eq!(fit_fraction(criteo.enabled_fraction()).nearest, 0.75);
    }
    // The ranking is by enabled fraction, descending.
    for w in rows.windows(2) {
        assert!(w[0].enabled_fraction() >= w[1].enabled_fraction());
    }
}

#[test]
fn fig5_yandex_tops_and_doubleclick_is_absent() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let rows = fig5(&ds, 15);
    assert!(!rows.is_empty());
    assert!(
        rows[0].cp.as_str().starts_with("yandex"),
        "top questionable CP is yandex, got {}",
        rows[0].cp
    );
    assert!(rows.iter().all(|r| r.cp.as_str() != "doubleclick.net"));
    assert!(rows.iter().all(|r| r.cp.as_str() != "google-analytics.com"));
}

#[test]
fn fig6_yandex_is_russian_criteo_is_global() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let yandex = topics_core::net::Domain::parse("yandex.com").unwrap();
    let criteo = topics_core::net::Domain::parse("criteo.com").unwrap();
    let rows = fig6(&ds, &[yandex, criteo]);
    let idx = |r: Region| Region::ALL.iter().position(|x| *x == r).unwrap();
    let (yx, cr) = (&rows[0], &rows[1]);
    // Yandex: no Japan presence; Russia dominates its footprint.
    assert_eq!(yx.by_region[idx(Region::Japan)].0, 0);
    assert!(yx.by_region[idx(Region::Russia)].0 > yx.by_region[idx(Region::EuropeanUnion)].0);
    // Criteo: present in every region, including Japan.
    for r in Region::ALL {
        assert!(cr.by_region[idx(r)].0 > 0, "criteo missing from {r}");
    }
}

#[test]
fn fig7_hubspot_is_the_leaky_cmp() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let f = fig7(&ds);
    assert!(f.total_sites > 3_000);
    assert!(f.questionable_sites > 0);
    let hubspot = f
        .rows
        .iter()
        .find(|r| r.cmp.spec().name == "HubSpot")
        .unwrap();
    let onetrust = f
        .rows
        .iter()
        .find(|r| r.cmp.spec().name == "OneTrust")
        .unwrap();
    // HubSpot leaks more than the market leader.
    assert!(
        hubspot.p_questionable_given_cmp() > onetrust.p_questionable_given_cmp(),
        "HubSpot {} vs OneTrust {}",
        hubspot.p_questionable_given_cmp(),
        onetrust.p_questionable_given_cmp()
    );
    // OneTrust is the most observed CMP.
    assert!(f.rows.iter().all(|r| r.sites <= onetrust.sites));
}

#[test]
fn sec4_anomalous_calls_are_first_party_javascript_with_gtm() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let s = anomalous_stats(&ds, DatasetId::AfterAccept);
    assert!(
        s.distinct_cps > 50,
        "anomalous CPs at this scale: {}",
        s.distinct_cps
    );
    assert!(s.total_calls >= s.distinct_cps);
    assert_eq!(s.javascript_fraction, 1.0, "all anomalous calls are JS");
    assert!(s.same_second_level_fraction > 0.55);
    assert!(s.gtm_cooccurrence > 0.85);
}

#[test]
fn timeline_starts_june_2023_and_spreads() {
    let outcome = run();
    let t = timeline(outcome);
    let (y, m, d) = t.first.unwrap().to_date();
    assert_eq!(
        (y, m, d),
        (2023, 6, 16),
        "first attestation June 16th, 2023"
    );
    assert!(t.by_month.len() >= 10);
    assert_eq!(t.total, 193 - 12 + 1, "181 attested allowed + distillery");
    assert_eq!(t.with_enrollment_site, 0, "probed before October 2024");
}
