//! Cross-seed robustness: the paper's qualitative findings must hold on
//! *any* synthetic web drawn from the model, not just the calibrated
//! default seed — a guard against seed-overfitting.

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::{comparison_rows, evaluate, Lab, LabConfig};

const SITES: usize = 2_500;

fn check_seed(seed: u64) {
    let outcome = Lab::new(LabConfig::quick(seed, SITES)).run();
    let eval = evaluate(&outcome);
    let ds = Datasets::new(&outcome);

    // Rate-style shape checks (the scale-independent subset of the
    // EXPERIMENTS bands) must pass for every seed.
    let rows = comparison_rows(&eval, false);
    let failures: Vec<String> = rows
        .iter()
        .filter(|r| r.ok == Some(false))
        // Per-CP fraction rows are noisy at 2.5k sites, and legitimate
        // coverage is rank-sensitive (the top of the Tranco list carries
        // more ads than the full 50k, so a 2.5k prefix overshoots the
        // 50k band). The structural and rate rows must hold everywhere.
        .filter(|r| {
            !matches!(
                r.metric,
                // Per-CP fractions and the HubSpot conditionals rest on
                // a few dozen samples at 2.5k sites; they are verified at
                // full scale (EXPERIMENTS.md) and via ordering checks in
                // integration_figures.
                "criteo.com enabled fraction"
                    | "D_AA sites with ≥1 legitimate call"
                    | "HubSpot over-representation"
                    | "P(questionable | HubSpot)"
            )
        })
        .map(|r| format!("{} / {} = {}", r.experiment, r.metric, r.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "seed {seed}: shape deviations at small scale: {failures:?}"
    );

    // Qualitative invariants.
    assert!(
        !ds.calling_parties(DatasetId::BeforeAccept)
            .iter()
            .any(|d| d.as_str() == "doubleclick.net"),
        "seed {seed}: doubleclick called before consent"
    );
    assert!(
        eval.anomalous.javascript_fraction == 1.0 || eval.anomalous.total_calls == 0,
        "seed {seed}: anomalous calls must be JavaScript-only"
    );
    assert!(
        eval.table1.allowed_total == 193 && eval.table1.allowed_not_attested == 12,
        "seed {seed}: registry totals broke"
    );
}

#[test]
fn findings_hold_across_seeds() {
    // Three seeds far from the calibrated 2024.
    for seed in [1u64, 987_654_321, 0xDEAD_BEEF] {
        check_seed(seed);
    }
}

#[test]
fn us_vantage_sees_fewer_banners_but_not_fewer_sites() {
    use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
    use topics_core::net::http::Vantage;
    let lab = Lab::new(LabConfig::quick(55, 1_200));
    let eu = run_campaign(&lab.world, &CampaignConfig::default());
    let us = run_campaign(
        &lab.world,
        &CampaignConfig {
            vantage: Vantage::UnitedStates,
            ..CampaignConfig::default()
        },
    );
    // Reachability is vantage-independent.
    assert_eq!(eu.visited_count(), us.visited_count());
    let banners = |o: &topics_core::crawler::record::CampaignOutcome| {
        o.sites
            .iter()
            .filter_map(|s| s.before.as_ref())
            .filter(|v| v.banner_found)
            .count()
    };
    assert!(
        banners(&us) < banners(&eu),
        "geo-targeted banners disappear from the US: {} vs {}",
        banners(&us),
        banners(&eu)
    );
    assert!(us.accepted_count() < eu.accepted_count());
    // Geo-targeted implied-consent pages surface MORE parties on the
    // first visit from the US.
    let first_visit_parties = |o: &topics_core::crawler::record::CampaignOutcome| {
        o.sites
            .iter()
            .filter_map(|s| s.before.as_ref())
            .map(|v| v.party_domains.len())
            .sum::<usize>()
    };
    assert!(first_visit_parties(&us) >= first_visit_parties(&eu));
}

#[test]
fn world_fetch_is_total_for_arbitrary_urls() {
    use topics_core::net::http::{HttpRequest, ResourceKind};
    use topics_core::net::service::NetworkService;
    use topics_core::net::url::Url;
    use topics_core::net::Timestamp;
    let lab = Lab::new(LabConfig::quick(77, 200));
    // Every path/host combination must return a response, never panic.
    let hosts = [
        "www.googletagmanager.com",
        "webstats-metrics.com",
        "doubleclick.net",
        "static.doubleclick.net",
        "cdn.onetrust.com",
        "cdn-unknown-minor.com",
        "totally-unknown.zz",
        "distillery.com",
    ];
    let paths = [
        "/",
        "/gtm.js",
        "/gtm.js?id=GTM-abc",
        "/gtm.js?id=GTM-999999999",
        "/tag.js",
        "/frame",
        "/bid",
        "/.well-known/privacy-sandbox-attestations.json",
        "/nonexistent",
        "/adframe",
        "/pframe",
        "/a/b/c/d",
    ];
    for host in hosts {
        for path in paths {
            let url = Url::parse(&format!("https://{host}{path}")).unwrap();
            let req = HttpRequest::get(url, ResourceKind::Document);
            let resp = lab
                .world
                .fetch(&req, Timestamp::CRAWL_START)
                .expect("fetch is total");
            // Bodies of successful responses are non-pathological.
            assert!(resp.body.len() < 1 << 20);
        }
    }
}
