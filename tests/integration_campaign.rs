//! End-to-end integration: world generation → crawl → records.
//!
//! Exercises the full pipeline the paper describes in §2 at a reduced
//! scale and checks the *mechanisms* (not the full-scale counts, which
//! the `full_campaign` example and EXPERIMENTS.md cover).

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::browser::observer::CallType;
use topics_core::crawler::record::Phase;
use topics_core::{evaluate, Lab, LabConfig};

const SEED: u64 = 90_210;
const SITES: usize = 1_500;

fn run() -> &'static topics_core::crawler::record::CampaignOutcome {
    use std::sync::OnceLock;
    static OUTCOME: OnceLock<topics_core::crawler::record::CampaignOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| Lab::new(LabConfig::quick(SEED, SITES)).run().outcome)
}

#[test]
fn campaign_produces_both_datasets() {
    let outcome = run();
    assert_eq!(outcome.sites.len(), SITES);
    let visited = outcome.visited_count();
    let accepted = outcome.accepted_count();
    // ≈86.8% visited, ≈34% of those accepted.
    assert!((1_230..=1_380).contains(&visited), "visited {visited}");
    assert!((330..=620).contains(&accepted), "accepted {accepted}");
    for s in &outcome.sites {
        if let Some(after) = &s.after {
            assert_eq!(after.phase, Phase::AfterAccept);
            assert!(s.before.is_some(), "D_AA ⊂ D_BA");
        }
        if s.before.is_none() {
            assert!(s.error.is_some(), "failed sites carry an error");
        }
    }
}

#[test]
fn all_call_types_appear_in_the_wild() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let mut js = 0;
    let mut fetch = 0;
    let mut iframe = 0;
    for (_, c) in ds.calls(DatasetId::AfterAccept) {
        match c.call_type {
            CallType::JavaScript => js += 1,
            CallType::Fetch => fetch += 1,
            CallType::Iframe => iframe += 1,
        }
    }
    assert!(js > 0, "JavaScript calls present");
    assert!(fetch > 0, "Fetch calls present");
    assert!(iframe > 0, "IFrame calls present");
    // Anomalous (non-allowed, non-attested) callers use JavaScript
    // exclusively, like the paper's §4 observation. distillery.com — the
    // lone ¬Allowed ∧ Attested party — is exempt: it runs a first-party
    // fetch-type integration.
    for (_, c) in ds.calls(DatasetId::AfterAccept) {
        if !outcome.is_allowed(&c.caller_site) && !outcome.is_attested(&c.caller_site) {
            assert_eq!(c.call_type, CallType::JavaScript);
        }
    }
}

#[test]
fn consent_gating_shows_in_the_diff_between_visits() {
    let outcome = run();
    // On at least some sites the After-Accept visit must surface parties
    // that the Before-Accept visit did not load (server-side gating).
    let mut sites_with_new_parties = 0;
    for s in &outcome.sites {
        if let (Some(before), Some(after)) = (&s.before, &s.after) {
            let new: Vec<_> = after
                .party_domains
                .iter()
                .filter(|d| !before.party_domains.contains(d))
                .collect();
            if !new.is_empty() {
                sites_with_new_parties += 1;
            }
        }
    }
    assert!(
        sites_with_new_parties > 20,
        "gated tags appear after consent on many sites: {sites_with_new_parties}"
    );
}

#[test]
fn doubleclick_never_calls_before_accept_but_yandex_does() {
    let outcome = run();
    let ds = Datasets::new(outcome);
    let dba_callers = ds.calling_parties(DatasetId::BeforeAccept);
    assert!(
        !dba_callers.iter().any(|d| d.as_str() == "doubleclick.net"),
        "doubleclick respects consent"
    );
    assert!(
        dba_callers.iter().any(|d| d.as_str().starts_with("yandex")),
        "yandex calls before consent"
    );
}

#[test]
fn attestation_probes_separate_allowed_and_attested() {
    let outcome = run();
    // 193 allowed domains; exactly 12 of them not attested.
    assert_eq!(outcome.allow_list.len(), 193);
    let not_attested = outcome
        .allow_list
        .iter()
        .filter(|d| !outcome.is_attested(d))
        .count();
    assert_eq!(not_attested, 12);
    // distillery.com is attested but not allowed.
    let distillery = topics_core::net::Domain::parse("distillery.com").unwrap();
    assert!(outcome.is_attested(&distillery));
    assert!(!outcome.is_allowed(&distillery));
}

#[test]
fn crawler_survives_pathological_sites() {
    // A bigger world so all three pathologies (redirect loop, 500,
    // empty page) occur; the campaign must complete and classify them
    // sensibly.
    let outcome = Lab::new(LabConfig::quick(4242, 3_000).with_threads(8)).run();
    let lab = Lab::new(LabConfig::quick(4242, 3_000));
    let mut loops = 0;
    let mut errors_or_empty = 0;
    for spec in lab.world.sites().iter().filter(|s| s.pathology.is_some()) {
        let site = &outcome.sites[spec.rank];
        match spec.pathology.unwrap() {
            topics_core::webgen::site::Pathology::RedirectLoop => {
                // Either DNS killed it first or the redirect guard did.
                if let Some(err) = &site.error {
                    if err.contains("redirects") {
                        loops += 1;
                    }
                }
                assert!(!site.accepted());
            }
            topics_core::webgen::site::Pathology::ServerError
            | topics_core::webgen::site::Pathology::EmptyPage => {
                // These pages load (or fail DNS) but never yield a banner.
                if site.visited() {
                    errors_or_empty += 1;
                    let v = site.before.as_ref().unwrap();
                    assert!(!v.banner_found);
                    assert!(v.topics_calls.is_empty());
                }
                assert!(!site.accepted());
            }
        }
    }
    assert!(loops > 0, "some redirect loops were caught by the guard");
    assert!(errors_or_empty > 0, "some degenerate pages were visited");
}

#[test]
fn reject_protocol_keeps_gated_tags_hidden() {
    use topics_core::crawler::campaign::{run_campaign, CampaignConfig};
    use topics_core::crawler::ConsentAction;
    let lab = Lab::new(LabConfig::quick(SEED, 800));
    let config = CampaignConfig {
        consent_action: ConsentAction::Reject,
        ..CampaignConfig::default()
    };
    let outcome = run_campaign(&lab.world, &config);
    let rejected = outcome.sites.iter().filter(|s| s.rejected()).count();
    assert!(rejected > 100, "reject buttons are clicked: {rejected}");
    assert_eq!(
        outcome.accepted_count(),
        0,
        "the reject campaign never accepts"
    );
    let ds = Datasets::new(&outcome);
    for s in &outcome.sites {
        if let (Some(before), Some(after)) = (&s.before, &s.after) {
            assert_eq!(after.phase, Phase::AfterReject);
            // No consent ⇒ no gated tag may appear.
            for d in &after.party_domains {
                assert!(
                    before.party_domains.contains(d),
                    "{d} appeared only after REJECTION on {}",
                    s.website
                );
            }
        }
    }
    // Respectful platforms never call after a refusal; violators and
    // ungated GTM containers still do.
    let dr_callers = ds.calling_parties(DatasetId::AfterReject);
    assert!(!dr_callers.iter().any(|d| d.as_str() == "doubleclick.net"));
    assert!(!dr_callers.is_empty(), "some callers defy the refusal");
}

#[test]
fn evaluation_runs_on_the_small_campaign() {
    let outcome = run();
    let eval = evaluate(outcome);
    assert_eq!(eval.table1.allowed_total, 193);
    assert!(eval.stats.unique_third_parties > 500);
    assert!(eval.stats.legitimate_coverage_aa > 0.3);
    assert!(!eval.fig2.is_empty());
    assert!(!eval.fig5.is_empty());
    let report = eval.render_report();
    assert!(report.contains("Figure 7"));
}
