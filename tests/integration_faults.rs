//! Chaos suite: the campaign must survive injected network faults.
//!
//! Three fault bands are exercised — 0% (provably inert), 5% (the
//! paper-like lossy-crawl band, where the §3/§4 shape checks must still
//! hold), and 25% (a hostile network where the only promises are "no
//! panic" and "the books balance"). Faults are drawn from the seeded
//! [`FaultPlan`], so every assertion here is deterministic: a band that
//! passes once passes forever.

use topics_core::crawler::record::OutcomeCounts;
use topics_core::net::fault::FaultProfile;
use topics_core::{comparison_rows, evaluate, CampaignRun, Lab, LabConfig};

const SITES: usize = 1_200;
const SEED: u64 = 2_024;

fn run_with(profile: FaultProfile) -> CampaignRun {
    Lab::new(LabConfig::quick(SEED, SITES).with_fault_profile(profile)).run()
}

/// The outcome partition must cover every attempted site exactly once,
/// in both the records and the metric tally.
fn assert_books_balance(run: &CampaignRun) -> OutcomeCounts {
    let counts = run.outcome_counts();
    assert_eq!(
        counts.total(),
        SITES,
        "complete + degraded + failed must equal the attempted sites"
    );
    let s = &run.metrics;
    assert_eq!(s.counter_sum("sites_outcome_total"), SITES as u64);
    assert_eq!(
        s.counter("sites_outcome_total{outcome=\"complete\"}"),
        counts.complete as u64
    );
    assert_eq!(
        s.counter("sites_outcome_total{outcome=\"degraded\"}"),
        counts.degraded as u64
    );
    assert_eq!(
        s.counter("sites_outcome_total{outcome=\"failed\"}"),
        counts.failed as u64
    );
    // A retry sequence that ran out of attempts contributed at least one
    // retry first, so the counters can never cross.
    assert!(
        s.counter("net_retries_total") >= s.counter("net_retries_exhausted_total"),
        "retries ({}) must dominate exhausted sequences ({})",
        s.counter("net_retries_total"),
        s.counter("net_retries_exhausted_total"),
    );
    counts
}

#[test]
fn a_zero_rate_fault_profile_is_provably_inert() {
    let plain = Lab::new(LabConfig::quick(SEED, SITES)).run();
    for profile in [FaultProfile::off(), FaultProfile::uniform(0.0)] {
        let faulty = run_with(profile.clone());
        let jp = serde_json::to_string(&plain.outcome).unwrap();
        let jf = serde_json::to_string(&faulty.outcome).unwrap();
        assert_eq!(
            jp, jf,
            "outcome under {profile:?} must be byte-identical to a plain run"
        );
        let sp = serde_json::to_string(&plain.metrics.clone().strip_wall_clock()).unwrap();
        let sf = serde_json::to_string(&faulty.metrics.clone().strip_wall_clock()).unwrap();
        assert_eq!(sp, sf, "metrics under {profile:?} match a plain run");
        let counts = assert_books_balance(&faulty);
        assert_eq!(counts.degraded, 0, "nothing degrades at rate 0");
        assert_eq!(faulty.metrics.counter_sum("net_faults_injected_total"), 0);
        assert_eq!(faulty.metrics.counter("net_retries_total"), 0);
    }
}

#[test]
fn light_faults_degrade_coverage_but_not_the_findings() {
    // 5% ≈ the band of the paper's own crawl losses (§2.4 loses 13.2%
    // of its 50,000 targets before any fault injection).
    let run = run_with(FaultProfile::light());
    let counts = assert_books_balance(&run);
    assert!(
        counts.degraded > 0,
        "a 5% fault rate must leave visible retry scars"
    );
    assert!(
        counts.complete > 0,
        "most of the crawl still comes back clean"
    );
    assert!(
        run.metrics.counter_sum("net_faults_injected_total") > 0,
        "the plan actually fired"
    );

    // The paper's rate-style findings must survive the lossy crawl. §2.4
    // and Table 1 rows are excluded by construction: visit rate and the
    // Attested registry are exactly what fault injection perturbs. The
    // remaining metric exclusions mirror integration_robustness — rows
    // that are noisy at small scale even without faults.
    let eval = evaluate(&run.outcome);
    let failures: Vec<String> = comparison_rows(&eval, false)
        .iter()
        .filter(|r| r.ok == Some(false))
        .filter(|r| {
            r.experiment.starts_with("§3")
                || r.experiment.starts_with("§4")
                || r.experiment.starts_with("Fig.")
        })
        .filter(|r| {
            !matches!(
                r.metric,
                "criteo.com enabled fraction"
                    | "D_AA sites with ≥1 legitimate call"
                    | "HubSpot over-representation"
                    | "P(questionable | HubSpot)"
            )
        })
        .map(|r| format!("{} / {} = {}", r.experiment, r.metric, r.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "§3/§4/figure shape checks broke under 5% faults: {failures:?}"
    );
}

#[test]
fn heavy_faults_never_panic_and_the_report_owns_up_to_it() {
    // 25% is far past anything the paper saw; the promises shrink to
    // totality and honest bookkeeping.
    let run = run_with(FaultProfile::heavy());
    let counts = assert_books_balance(&run);
    assert!(
        counts.degraded + counts.failed > 0,
        "a hostile network leaves marks"
    );
    let s = &run.metrics;
    assert!(s.counter_sum("net_faults_injected_total") > 0);
    assert!(s.counter("net_retries_total") > 0, "retries were attempted");

    // The report must label the degraded coverage instead of quoting
    // rates as if the crawl were clean.
    let eval = evaluate(&run.outcome);
    assert_eq!(eval.stats.outcomes, counts);
    let report = eval.render_report();
    assert!(report.contains("site outcomes:"));
    assert!(
        report.contains("NOTE: degraded coverage"),
        "report must flag degraded coverage under heavy faults"
    );
}
