//! Integration: `topics-lab serve` answers the offline artefacts.
//!
//! The serving contract: every `/api/*` response is **byte-identical**
//! to the artefact the offline pipeline writes for the same campaign
//! store — for a plain campaign, under fault injection, and for a
//! 4-shard-merged columnar store — including under concurrent clients.
//! The server's own telemetry reconciles exactly: after a known set of
//! requests, the `/metrics` counters sum to the requests issued. The
//! CLI front end exits with typed codes (3 missing, 4 corrupt) instead
//! of a catch-all 1.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;
use topics_core::net::fault::FaultProfile;
use topics_core::obs::Obs;
use topics_core::{
    evaluate, http_fetch, merge_dir_columnar, run_shard, write_segment, Lab, LabConfig,
    ServeConfig, Server, StoreKind, API_ENDPOINTS,
};

const SITES: usize = 150;

/// Unique temp dir per test (tests run concurrently in one process).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("topics-iserve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Bind a server over `dir`'s campaign.col, run it on a background
/// thread, and hand the bound address to `f`; drains via the handle
/// afterwards and returns the served-request count.
fn with_server(dir: &Path, threads: usize, f: impl FnOnce(&str, &Server)) -> u64 {
    let config = ServeConfig {
        campaign: dir.join("campaign.col"),
        trace: None,
        addr: "127.0.0.1:0".to_owned(),
        threads,
    };
    let server = Server::bind(&config, Arc::new(Obs::new())).expect("server binds");
    let addr = server.local_addr().to_string();
    std::thread::scope(|scope| {
        let runner = scope.spawn(|| server.run());
        f(&addr, &server);
        server.handle().stop();
        runner.join().expect("server thread")
    })
}

/// Fetch every artefact endpoint and assert the bytes equal the files
/// the offline pipeline wrote into `dir`.
fn assert_endpoints_match_artefacts(addr: &str, dir: &Path, tag: &str) {
    for (path, artefact) in API_ENDPOINTS {
        let resp = http_fetch(addr, "GET", path).expect("fetch succeeds");
        assert_eq!(resp.status, 200, "{tag}: {path}");
        let want = std::fs::read(dir.join(artefact))
            .unwrap_or_else(|e| panic!("{tag}: reading {artefact}: {e}"));
        assert_eq!(resp.body, want, "{tag}: {path} differs from {artefact}");
    }
}

#[test]
fn serve_answers_byte_identical_artefacts_plain_and_faulted() {
    for (tag, config) in [
        ("plain", LabConfig::quick(41, SITES).with_threads(2)),
        (
            "faulted",
            LabConfig::quick(43, SITES)
                .with_threads(2)
                .with_fault_profile(FaultProfile::parse("0.05").unwrap()),
        ),
    ] {
        let dir = temp_dir(tag);
        let outcome = Lab::new(config).run().outcome;
        let eval = evaluate(&outcome);
        topics_core::write_bundle(&dir, &outcome, &eval, false, StoreKind::Columnar).unwrap();

        with_server(&dir, 2, |addr, server| {
            assert_endpoints_match_artefacts(addr, &dir, tag);

            // Probes answer; no trace next to the store → doctor and
            // profile are a clean 404, not a panic.
            assert_eq!(http_fetch(addr, "GET", "/healthz").unwrap().status, 200);
            assert_eq!(http_fetch(addr, "GET", "/readyz").unwrap().status, 200);
            assert_eq!(http_fetch(addr, "GET", "/api/doctor").unwrap().status, 404);
            assert_eq!(http_fetch(addr, "GET", "/api/profile").unwrap().status, 404);
            assert_eq!(http_fetch(addr, "GET", "/nope").unwrap().status, 404);
            assert_eq!(
                http_fetch(addr, "DELETE", "/api/report").unwrap().status,
                405
            );

            // The build published its one-time cost and footprint.
            let snap = server.service();
            assert!(!snap.store().bytes().is_empty(), "{tag}: resident store");
            assert_eq!(snap.api_paths().len(), API_ENDPOINTS.len(), "{tag}");
        });
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn serve_answers_the_merged_store_with_doctor_and_profile() {
    let config = LabConfig::quick(47, SITES).with_threads(2);
    let dir = temp_dir("merged");
    for shard in 0..4 {
        let segment = run_shard(&config, shard, 4, &Obs::new().with_trace());
        write_segment(&dir, &segment).unwrap();
    }
    let merged = merge_dir_columnar(&dir).unwrap();
    std::fs::write(dir.join("campaign.col"), merged.store.bytes()).unwrap();
    std::fs::write(dir.join("trace.jsonl"), merged.trace.to_jsonl()).unwrap();
    let eval = evaluate(&merged.outcome);
    topics_core::export::write_artefacts(&dir, &merged.outcome, &eval, false).unwrap();

    // The offline doctor body, straight from the subcommand.
    let doctor = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args(["doctor", "--campaign", dir.to_str().unwrap()])
        .output()
        .expect("doctor runs");
    assert!(
        doctor.status.success(),
        "{}",
        String::from_utf8_lossy(&doctor.stderr)
    );

    with_server(&dir, 4, |addr, _| {
        assert_endpoints_match_artefacts(addr, &dir, "merged");

        // With a trace next to the store, /api/doctor replicates the
        // doctor subcommand byte for byte (segment + columnar checks
        // included) and /api/profile renders the span profile.
        let api_doctor = http_fetch(addr, "GET", "/api/doctor").unwrap();
        assert_eq!(api_doctor.status, 200);
        assert_eq!(
            api_doctor.body, doctor.stdout,
            "/api/doctor differs from the doctor subcommand"
        );
        let profile = http_fetch(addr, "GET", "/api/profile").unwrap();
        assert_eq!(profile.status, 200);
        let text = String::from_utf8(profile.body).unwrap();
        assert!(text.contains("== Per-phase time =="), "{text}");
    });
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_clients_get_identical_bytes_and_metrics_reconcile() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;
    let dir = temp_dir("concurrent");
    let outcome = Lab::new(LabConfig::quick(53, SITES).with_threads(2))
        .run()
        .outcome;
    let eval = evaluate(&outcome);
    topics_core::write_bundle(&dir, &outcome, &eval, false, StoreKind::Columnar).unwrap();

    let served = with_server(&dir, 4, |addr, _| {
        // 8 clients, each fetching every artefact endpoint 5 times;
        // every response must equal the offline artefact bytes.
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                scope.spawn(|| {
                    for _ in 0..ROUNDS {
                        assert_endpoints_match_artefacts(addr, &dir, "concurrent");
                    }
                });
            }
        });

        // Quiescent now: one /metrics scrape must account for every
        // request issued — including itself, since the counter is
        // incremented before the exposition is rendered.
        let scrape = http_fetch(addr, "GET", "/metrics").unwrap();
        assert_eq!(scrape.status, 200);
        let text = String::from_utf8(scrape.body).unwrap();
        let mut by_path: BTreeMap<String, u64> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            if let Some(rest) = line.strip_prefix("http_requests_total{path=\"") {
                let (path, value) = rest.split_once("\"} ").expect("well-formed sample");
                by_path.insert(path.to_owned(), value.parse().expect("numeric counter"));
            }
        }
        let per_endpoint = (CLIENTS * ROUNDS) as u64;
        for (path, _) in API_ENDPOINTS {
            assert_eq!(
                by_path.get(*path).copied(),
                Some(per_endpoint),
                "{path} counter"
            );
        }
        assert_eq!(by_path.get("/metrics").copied(), Some(1), "self-scrape");
        let total: u64 = by_path.values().sum();
        assert_eq!(
            total,
            per_endpoint * API_ENDPOINTS.len() as u64 + 1,
            "every request accounted for: {by_path:?}"
        );
        assert!(
            text.contains("serve_ready 1"),
            "readiness gauge exported: {text}"
        );
    });
    // The drain served everything: the clients' requests, the scrape,
    // and nothing else (the stop poke is dropped unserved).
    assert_eq!(served, (CLIENTS * ROUNDS * API_ENDPOINTS.len()) as u64 + 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

fn lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args(args)
        .output()
        .expect("topics-lab runs")
}

#[test]
fn cli_exit_codes_distinguish_missing_from_corrupt() {
    let dir = temp_dir("exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let corrupt = dir.join("campaign.json");
    std::fs::write(&corrupt, "not a campaign at all").unwrap();
    let missing = dir.join("no-such-campaign.json");

    for cmd in ["report", "metrics", "doctor", "serve"] {
        let out = lab(&[cmd, "--campaign", missing.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(3),
            "{cmd} on a missing campaign: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let out = lab(&[cmd, "--campaign", corrupt.to_str().unwrap()]);
        assert_eq!(
            out.status.code(),
            Some(4),
            "{cmd} on a corrupt campaign: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // A truncated columnar store is caught by its checksums → exit 4.
    let outcome = Lab::new(LabConfig::quick(59, 40).with_threads(2))
        .run()
        .outcome;
    let store = topics_core::crawler::columnar::ColumnarCampaign::from_outcome(&outcome);
    let col = dir.join("campaign.col");
    std::fs::write(&col, &store.bytes()[..store.bytes().len() - 1]).unwrap();
    let out = lab(&["report", "--campaign", col.to_str().unwrap()]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Usage errors stay exit 2; other failures stay exit 1.
    assert_eq!(lab(&[]).status.code(), Some(2), "bare invocation is usage");
    let out = lab(&["report"]);
    assert_eq!(out.status.code(), Some(1), "missing flag is a plain error");
    let out = lab(&["fetch", "--addr", "127.0.0.1:1", "--path", "/healthz"]);
    assert_eq!(out.status.code(), Some(1), "unreachable server is exit 1");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cli_serve_and_fetch_round_trip() {
    let dir = temp_dir("cli-serve");
    let outcome = Lab::new(LabConfig::quick(61, 60).with_threads(2))
        .run()
        .outcome;
    let eval = evaluate(&outcome);
    topics_core::write_bundle(&dir, &outcome, &eval, false, StoreKind::Columnar).unwrap();

    let addr_file = dir.join("addr.txt");
    let mut server = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args([
            "serve",
            "--campaign",
            dir.to_str().unwrap(),
            "--threads",
            "2",
            "--quiet",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ])
        .spawn()
        .expect("serve starts");

    // The addr file appears once the listener is bound and the service
    // is built (bind is eager, so the server is ready by then).
    let mut addr = String::new();
    for _ in 0..600 {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if s.ends_with('\n') {
                addr = s.trim().to_owned();
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(!addr.is_empty(), "server never wrote its address");

    // fetch writes the report body; it must equal the offline file.
    let report_out = dir.join("fetched-report.txt");
    let out = lab(&[
        "fetch",
        "--addr",
        &addr,
        "--path",
        "/api/report",
        "--out",
        report_out.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&report_out).unwrap(),
        std::fs::read(dir.join("report.txt")).unwrap(),
        "fetched report differs from the offline artefact"
    );

    // A 404 path is a non-zero fetch exit.
    let out = lab(&["fetch", "--addr", &addr, "--path", "/nope"]);
    assert_eq!(out.status.code(), Some(1));

    // POST /shutdown drains the server to a clean exit.
    let out = lab(&["fetch", "--addr", &addr, "--path", "/shutdown", "--post"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = server.wait().expect("server exits");
    assert!(status.success(), "serve exited {status:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}
