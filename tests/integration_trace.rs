//! Integration: the hierarchical trace subsystem.
//!
//! The trace is part of the determinism contract: with wall-clock and
//! operational worker spans stripped, the same seed and configuration
//! must serialize to byte-identical JSONL regardless of thread counts.
//! On top of the trace, the doctor report must profile a real campaign
//! and catch structural corruption.

use topics_core::crawler::record::CampaignOutcome;
use topics_core::net::fault::FaultProfile;
use topics_core::obs::{Obs, Trace};
use topics_core::{diagnose, Lab, LabConfig};

const SITES: usize = 500;

fn traced_run(config: LabConfig) -> (CampaignOutcome, Trace) {
    let obs = Obs::new().with_trace();
    let run = Lab::new(config).run_observed(&obs);
    (run.outcome, obs.trace.finish())
}

fn stripped_jsonl(config: LabConfig) -> String {
    traced_run(config).1.stripped().to_jsonl()
}

#[test]
fn same_seed_traces_are_byte_identical_across_runs_and_thread_counts() {
    let config = || LabConfig::quick(23, SITES).with_threads(4);
    let baseline = stripped_jsonl(config());
    assert!(!baseline.is_empty());
    assert_eq!(
        baseline,
        stripped_jsonl(config()),
        "re-running the same configuration changes the stripped trace"
    );
    for probe_threads in [1, 4, 8] {
        assert_eq!(
            baseline,
            stripped_jsonl(config().with_probe_threads(probe_threads)),
            "--probe-threads {probe_threads} changes the stripped trace"
        );
    }
    // Crawl parallelism must not leak into the trace either.
    assert_eq!(
        baseline,
        stripped_jsonl(LabConfig::quick(23, SITES).with_threads(1)),
        "crawl thread count changes the stripped trace"
    );
}

#[test]
fn trace_survives_a_jsonl_round_trip() {
    let (_, trace) = traced_run(LabConfig::quick(29, 60).with_threads(2));
    let parsed = Trace::from_jsonl(&trace.to_jsonl()).expect("round trip parses");
    assert_eq!(trace.spans, parsed.spans);
    // The Chrome export wraps at least one event per span in the
    // `traceEvents` envelope Perfetto expects.
    let chrome = trace.to_chrome_json();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.matches("\"ph\":").count() >= trace.spans.len());
}

#[test]
fn doctor_profiles_a_faulty_campaign() {
    let (outcome, trace) = traced_run(
        LabConfig::quick(37, SITES)
            .with_threads(2)
            .with_fault_profile(FaultProfile::parse("0.05").unwrap()),
    );
    let report = diagnose(&outcome, &trace, 10);
    assert!(report.is_healthy(), "violations: {:?}", report.violations());
    assert_eq!(report.attempted, SITES);

    // Critical path descends from a phase into campaign work.
    assert!(report.profile.critical_path.len() >= 2);

    // Worker utilization is present and sane for the crawl pool.
    let idle = report.profile.idle_fractions();
    let crawl_idle = idle
        .iter()
        .find(|(phase, _)| phase == "crawl")
        .map(|(_, f)| *f)
        .expect("crawl worker spans recorded");
    assert!((0.0..=1.0).contains(&crawl_idle));

    // Top-10 slowest visits, ranked.
    assert_eq!(report.profile.slowest_visits.len(), 10);
    let durations: Vec<u64> = report
        .profile
        .slowest_visits
        .iter()
        .map(|v| v.duration_ms)
        .collect();
    let mut sorted = durations.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(durations, sorted, "slowest visits are ordered");
    assert!(!report.profile.slowest_visits[0].domain.is_empty());

    // 5% faults produce retries, and the profiler clusters them.
    assert!(!report.profile.retry_clusters.is_empty());

    // The rendered report names every advertised section.
    let text = report.render();
    for needle in [
        "Trace/metric reconciliation",
        "Critical path",
        "Worker utilization",
        "Retry hot-spots",
        "Slowest visits",
    ] {
        assert!(text.contains(needle), "missing section {needle}");
    }
}

#[test]
fn doctor_detects_an_injected_orphan_in_a_serialized_trace() {
    let (outcome, trace) = traced_run(LabConfig::quick(41, 60).with_threads(2));
    // Corrupt the trace the way a broken writer would: through the
    // serialized fixture, not the in-memory structs.
    let corrupted: String = trace
        .to_jsonl()
        .lines()
        .enumerate()
        .map(|(i, line)| {
            let mut span: topics_core::obs::SpanRecord = serde_json::from_str(line).unwrap();
            if i == 5 {
                span.parent = Some(999_999);
            }
            format!("{}\n", serde_json::to_string(&span).unwrap())
        })
        .collect();
    let trace = Trace::from_jsonl(&corrupted).expect("corrupted fixture still parses");
    let report = diagnose(&outcome, &trace, 10);
    assert!(!report.is_healthy());
    assert!(
        report.violations().iter().any(|v| v.contains("orphan")),
        "violations: {:?}",
        report.violations()
    );
}
