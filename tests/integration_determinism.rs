//! Integration: determinism and configuration isolation.
//!
//! The whole workspace derives from a single campaign seed; two runs
//! with the same seed must agree bit for bit, different seeds must
//! differ, and the allow-list ablation setups must only change what
//! they claim to change.

use topics_core::analysis::dataset::{DatasetId, Datasets};
use topics_core::crawler::campaign::AllowListSetup;
use topics_core::crawler::record::CampaignOutcome;
use topics_core::net::fault::FaultProfile;
use topics_core::{CampaignRun, Lab, LabConfig};

const SITES: usize = 600;

fn run(seed: u64) -> CampaignRun {
    Lab::new(LabConfig::quick(seed, SITES)).run()
}

fn call_signature(outcome: &CampaignOutcome) -> Vec<(String, String, usize)> {
    outcome
        .sites
        .iter()
        .flat_map(|s| s.before.iter().chain(s.after.iter()))
        .map(|v| {
            (
                v.website.as_str().to_owned(),
                format!("{:?}", v.phase),
                v.topics_calls.len(),
            )
        })
        .collect()
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run(11);
    let b = run(11);
    assert_eq!(a.visited_count(), b.visited_count());
    assert_eq!(a.accepted_count(), b.accepted_count());
    assert_eq!(call_signature(&a), call_signature(&b));
    // Full record equality via serde.
    let ja = serde_json::to_string(&a.outcome).unwrap();
    let jb = serde_json::to_string(&b.outcome).unwrap();
    assert_eq!(ja, jb, "identical seeds produce identical campaigns");
}

#[test]
fn same_seed_metrics_snapshots_are_byte_identical_without_wall_clock() {
    let a = run(13);
    let b = run(13);
    // Wall-clock series (phase gauges, anything with "wall" in the
    // name) legitimately differ between runs; everything else — counts
    // and simulated-time histograms — must agree bit for bit.
    let sa = a.metrics.clone().strip_wall_clock();
    let sb = b.metrics.clone().strip_wall_clock();
    let ja = serde_json::to_string(&sa).unwrap();
    let jb = serde_json::to_string(&sb).unwrap();
    assert_eq!(ja, jb, "stripped metric snapshots are byte-identical");
}

#[test]
fn metrics_reconcile_with_the_outcome_and_report_counts() {
    let run = run(17);
    let s = &run.metrics;
    // The tally series equal the outcome's own §2.4 aggregates …
    assert_eq!(s.counter("sites_attempted_total"), SITES as u64);
    assert_eq!(s.counter("visits_total"), run.visited_count() as u64);
    assert_eq!(
        s.counter("banner_accepted_total"),
        run.accepted_count() as u64
    );
    // … the live counters agree with the tally taken from the records …
    assert_eq!(
        s.counter("crawl_visits_ok_total"),
        s.counter("visits_total")
    );
    assert_eq!(
        s.counter("crawl_banner_accepted_total"),
        s.counter("banner_accepted_total")
    );
    // … per-worker live counters sum to the attempted total …
    assert_eq!(
        s.counter_sum("crawl_worker_sites_total"),
        s.counter("sites_attempted_total")
    );
    // … and the class partition covers every recorded call exactly once.
    let recorded: usize = run
        .sites
        .iter()
        .flat_map(|site| site.before.iter().chain(site.after.iter()))
        .map(|v| v.topics_calls.len())
        .sum();
    assert_eq!(s.counter("topics_calls_recorded_total"), recorded as u64);
    assert_eq!(s.counter_sum("topics_calls_total"), recorded as u64);
    // The browser-side live series counts the same executed calls the
    // engine-enabled browser observed (every call is either permitted or
    // blocked).
    assert_eq!(
        s.counter("topics_api_permitted_total") + s.counter("topics_api_blocked_total"),
        s.counter_sum("topics_api_calls_total")
    );
}

#[test]
fn different_seeds_differ() {
    let a = run(11);
    let b = run(12);
    assert_ne!(call_signature(&a), call_signature(&b));
}

fn run_faulty(world_seed: u64, fault_seed: u64) -> CampaignRun {
    Lab::new(
        LabConfig::quick(world_seed, SITES)
            .with_fault_profile(FaultProfile::light())
            .with_fault_seed(fault_seed),
    )
    .run()
}

#[test]
fn same_world_and_fault_seed_is_bit_identical() {
    let a = run_faulty(11, 5);
    let b = run_faulty(11, 5);
    let ja = serde_json::to_string(&a.outcome).unwrap();
    let jb = serde_json::to_string(&b.outcome).unwrap();
    assert_eq!(ja, jb, "same world + fault seed reproduces the campaign");
    let sa = serde_json::to_string(&a.metrics.clone().strip_wall_clock()).unwrap();
    let sb = serde_json::to_string(&b.metrics.clone().strip_wall_clock()).unwrap();
    assert_eq!(sa, sb, "fault metrics are reproducible too");
}

#[test]
fn different_fault_seeds_differ_only_where_faults_landed() {
    let a = run_faulty(11, 5);
    let b = run_faulty(11, 6);

    // The fault plan moved, so the campaigns as a whole differ …
    let ja = serde_json::to_string(&a.outcome).unwrap();
    let jb = serde_json::to_string(&b.outcome).unwrap();
    assert_ne!(ja, jb, "moving the fault seed must move some faults");

    // … but the perturbation is confined to fault-attributed records: a
    // site that came back Complete (zero fault scars) under BOTH plans
    // never saw an injected fault in either run, so its record is
    // byte-identical.
    use topics_core::crawler::record::VisitOutcome;
    let mut untouched = 0usize;
    for (x, y) in a.sites.iter().zip(&b.sites) {
        assert_eq!(x.website, y.website, "site order is world-determined");
        if x.outcome() == VisitOutcome::Complete && y.outcome() == VisitOutcome::Complete {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap(),
                "{}: fault-free records must not feel the fault seed",
                x.website
            );
            untouched += 1;
        }
    }
    // A site makes dozens of exchanges across two visits, so even a 5%
    // per-exchange rate touches most sites — but the check above is only
    // meaningful if a non-trivial fault-free population exists in both.
    assert!(
        untouched > 10,
        "too few doubly-clean sites to make the check meaningful ({untouched})"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    let world_cfg = LabConfig::quick(31, SITES);
    let lab = Lab::new(world_cfg.clone().with_threads(1));
    let single = lab.run();
    let lab8 = Lab::new(world_cfg.with_threads(8));
    let eight = lab8.run();
    assert_eq!(call_signature(&single), call_signature(&eight));
}

#[test]
fn probe_thread_count_does_not_change_campaign_or_tallies() {
    use topics_core::metrics_snapshot_of;
    // The probe phase shards across a worker pool, but the campaign
    // record and the tally metrics derived from it must be byte-identical
    // for any `--probe-threads` — with and without fault injection.
    for fault in [None, Some("0.05")] {
        let mut reference: Option<(String, String)> = None;
        for pt in [1usize, 4, 8] {
            let mut cfg = LabConfig::quick(61, SITES).with_probe_threads(pt);
            if let Some(rate) = fault {
                cfg = cfg.with_fault_profile(FaultProfile::parse(rate).unwrap());
            }
            let run = Lab::new(cfg).run();
            let campaign = serde_json::to_string(&run.outcome).unwrap();
            let tally = serde_json::to_string(&metrics_snapshot_of(&run.outcome)).unwrap();
            match &reference {
                None => reference = Some((campaign, tally)),
                Some((c, t)) => {
                    assert_eq!(
                        c, &campaign,
                        "campaign.json differs at probe_threads={pt}, fault={fault:?}"
                    );
                    assert_eq!(
                        t, &tally,
                        "metrics tally differs at probe_threads={pt}, fault={fault:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn allow_list_setups_only_change_decisions() {
    let corrupted = Lab::new(LabConfig::quick(41, SITES)).run();
    let healthy =
        Lab::new(LabConfig::quick(41, SITES).with_allow_list(AllowListSetup::Healthy)).run();

    // Same sites visited, same objects loaded.
    assert_eq!(corrupted.visited_count(), healthy.visited_count());
    for (a, b) in corrupted.sites.iter().zip(&healthy.sites) {
        assert_eq!(a.website, b.website);
        match (&a.before, &b.before) {
            (Some(x), Some(y)) => {
                assert_eq!(x.party_domains, y.party_domains);
                assert_eq!(x.object_count, y.object_count);
            }
            (None, None) => {}
            _ => panic!("visit success must not depend on the allow-list"),
        }
    }

    // But executed calls differ: the healthy browser blocks non-enrolled
    // callers.
    let executed_unallowed = |o: &CampaignOutcome| {
        let ds = Datasets::new(o);
        ds.calls(DatasetId::AfterAccept)
            .filter(|(_, c)| !o.is_allowed(&c.caller_site))
            .count()
    };
    assert!(executed_unallowed(&corrupted) > 0);
    assert_eq!(executed_unallowed(&healthy), 0);

    // Legitimate (allowed) callers behave identically in both setups.
    let legit_calls = |o: &CampaignOutcome| {
        let ds = Datasets::new(o);
        let mut v: Vec<String> = ds
            .calls(DatasetId::AfterAccept)
            .filter(|(_, c)| o.is_allowed(&c.caller_site))
            .map(|(site, c)| format!("{site}:{}", c.caller_site))
            .collect();
        v.sort();
        v
    };
    assert_eq!(legit_calls(&corrupted), legit_calls(&healthy));
}

#[test]
fn fixed_browser_blocks_everything_under_corruption() {
    let fixed =
        Lab::new(LabConfig::quick(51, SITES).with_allow_list(AllowListSetup::CorruptedFailClosed))
            .run();
    let ds = Datasets::new(&fixed);
    assert_eq!(
        ds.calls(DatasetId::AfterAccept).count() + ds.calls(DatasetId::BeforeAccept).count(),
        0,
        "fail-closed + corrupt DB executes no calls at all"
    );
}
