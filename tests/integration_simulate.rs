//! Integration: the `topics-lab simulate` subcommand end to end.
//!
//! The population engine's determinism contract is byte-level: the
//! k-anonymity and re-identification CSVs must be identical for any
//! `--threads` value and across reruns of the same seed, and must
//! change when the seed changes. On top of the artefacts, the trace a
//! simulate run records must pass `doctor --trace` (trace-only mode)
//! and the published metrics must reconcile exactly with the
//! simulation shape.

use std::path::{Path, PathBuf};
use std::process::Command;
use topics_core::baseline::SimConfig;
use topics_core::obs::Obs;
use topics_core::{run_simulation, SIM_KANON_FILE, SIM_REIDENT_FILE, SIM_REPORT_FILE};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("topics-isim-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run `topics-lab simulate` into `out`, panicking on failure.
fn simulate_cli(out: &Path, extra: &[&str]) -> std::process::Output {
    let output = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args([
            "simulate", "--users", "400", "--epochs", "6", "--sites", "300", "--sample", "200",
            "--seed", "9", "--quiet", "--out",
        ])
        .arg(out)
        .args(extra)
        .output()
        .expect("simulate runs");
    assert!(
        output.status.success(),
        "simulate failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn curves(dir: &Path) -> (String, String) {
    (
        std::fs::read_to_string(dir.join(SIM_KANON_FILE)).unwrap(),
        std::fs::read_to_string(dir.join(SIM_REIDENT_FILE)).unwrap(),
    )
}

#[test]
fn curves_are_byte_identical_for_any_thread_count_and_depend_on_the_seed() {
    let base = temp_dir("threads1");
    simulate_cli(&base, &["--threads", "1"]);
    let (kanon, reident) = curves(&base);
    assert!(kanon.starts_with("epoch,"), "{kanon}");
    assert!(reident.starts_with("epochs_observed,"), "{reident}");

    for threads in ["4", "8"] {
        let dir = temp_dir(&format!("threads{threads}"));
        simulate_cli(&dir, &["--threads", threads]);
        let (k, r) = curves(&dir);
        assert_eq!(kanon, k, "--threads {threads} changed the k-anonymity CSV");
        assert_eq!(
            reident, r,
            "--threads {threads} changed the re-identification CSV"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // Same seed, same bytes — including the report.
    let rerun = temp_dir("rerun");
    simulate_cli(&rerun, &["--threads", "2"]);
    let (k, r) = curves(&rerun);
    assert_eq!(kanon, k, "re-running the same seed changed the CSV");
    assert_eq!(reident, r);
    assert_eq!(
        std::fs::read_to_string(base.join(SIM_REPORT_FILE)).unwrap(),
        std::fs::read_to_string(rerun.join(SIM_REPORT_FILE)).unwrap(),
    );
    std::fs::remove_dir_all(&rerun).unwrap();

    // A different seed must actually move the curves.
    let other = temp_dir("seed");
    let output = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args([
            "simulate", "--users", "400", "--epochs", "6", "--sites", "300", "--sample", "200",
            "--seed", "10", "--quiet", "--out",
        ])
        .arg(&other)
        .output()
        .expect("simulate runs");
    assert!(output.status.success());
    let (k, r) = curves(&other);
    assert!(
        kanon != k || reident != r,
        "seed 9 and seed 10 produced identical curves"
    );
    std::fs::remove_dir_all(&other).unwrap();
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn doctor_trace_only_mode_accepts_a_simulate_trace() {
    let dir = temp_dir("doctor");
    simulate_cli(
        &dir,
        &[
            "--threads",
            "2",
            "--alloc-stats",
            "--trace-out",
            "trace.jsonl",
            "--metrics-out",
            "metrics.prom",
        ],
    );
    let trace_path = dir.join("trace.jsonl");
    assert!(trace_path.is_file(), "trace.jsonl lands inside --out");

    let doctor = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args(["doctor", "--trace"])
        .arg(&trace_path)
        .output()
        .expect("doctor runs");
    assert!(
        doctor.status.success(),
        "doctor --trace failed: {}\n{}",
        String::from_utf8_lossy(&doctor.stderr),
        String::from_utf8_lossy(&doctor.stdout)
    );
    let body = String::from_utf8(doctor.stdout).unwrap();
    assert!(body.contains("integrity: clean"), "{body}");
    for phase in ["sim-universe", "sim-advance", "sim-kanon", "sim-attack"] {
        assert!(body.contains(phase), "missing {phase} in:\n{body}");
    }

    // The metrics snapshot carries the simulation counters.
    let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
    assert!(prom.contains("sim_users 400"), "{prom}");
    assert!(prom.contains("sim_api_calls_total"), "{prom}");

    // Without --campaign and without --trace the subcommand points at
    // both modes; exit 2 is the usage error.
    let bare = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .arg("doctor")
        .output()
        .expect("doctor runs");
    assert!(!bare.status.success());
    assert!(
        String::from_utf8_lossy(&bare.stderr).contains("trace-only"),
        "{}",
        String::from_utf8_lossy(&bare.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn rejects_bad_flags_before_running_anything() {
    for bad in [
        vec!["simulate", "--users", "0"],
        vec!["simulate", "--noise", "1.5"],
        vec!["simulate", "--threads", "none"],
        vec!["simulate", "--user", "10"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_topics-lab"))
            .args(&bad)
            .output()
            .expect("simulate runs");
        assert_eq!(
            output.status.code(),
            Some(1),
            "{bad:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(bad[1]),
            "{bad:?} error does not name the flag: {stderr}"
        );
    }
}

#[test]
fn library_metrics_reconcile_with_the_run() {
    let cfg = SimConfig {
        sites: 300,
        sample: 200,
        ..SimConfig::new(9, 400, 6)
    };
    let obs = Obs::new();
    let run = run_simulation(&cfg, 2, &obs).unwrap();
    topics_core::publish_sim_metrics(&run, &obs.metrics);
    let snap = obs.metrics.snapshot();
    // Every API call is accounted for: both panels query every user
    // once per context site per window epoch.
    assert_eq!(
        snap.counter("sim_api_calls_total"),
        cfg.users as u64 * cfg.context_sites as u64 * cfg.window * 2
    );
    assert_eq!(
        snap.counter("sim_queries_total"),
        cfg.sample as u64 * cfg.window
    );
    assert_eq!(
        snap.counter("sim_correct_total"),
        run.reident.iter().map(|r| r.correct).sum::<u64>()
    );
    assert_eq!(run.kanon.len(), cfg.epochs as usize);
    assert_eq!(run.reident.len(), cfg.window as usize);
    // The k-anonymity rows cover the whole population every epoch.
    assert!(run.kanon.iter().all(|r| r.users == cfg.users as u64));
}
