//! Integration: sharded campaigns reassemble byte-identically.
//!
//! The shard/merge contract: splitting a seeded world into N rank
//! stripes, running each shard independently, and merging the record
//! segments must reproduce the single-process campaign **byte for
//! byte** — the `campaign.json` serialization, the stripped span
//! trace, and the rendered report — for every shard count, including
//! under fault injection and probe-pool parallelism. Corrupted,
//! truncated, duplicated or missing segments must be rejected with
//! named violations, by the library, the `merge` subcommand, and
//! `doctor`.

use std::path::{Path, PathBuf};
use std::process::Command;
use topics_core::net::fault::FaultProfile;
use topics_core::obs::Obs;
use topics_core::{evaluate, merge_dir, run_shard, write_segment, Lab, LabConfig};

const SITES: usize = 200;

/// Unique temp dir per test (tests run concurrently in one process).
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("topics-ishard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The single-process artefacts: campaign JSON, stripped trace JSONL,
/// rendered report.
fn single_run(config: &LabConfig) -> (String, String, String) {
    let obs = Obs::new().with_trace();
    let run = Lab::new(config.clone()).run_observed(&obs);
    (
        serde_json::to_string(&run.outcome).unwrap(),
        obs.trace.finish().stripped().to_jsonl(),
        evaluate(&run.outcome).render_report(),
    )
}

/// Run every shard of an N-way split into `dir` and merge the segments
/// back into the same three artefacts.
fn sharded_run(config: &LabConfig, shards: usize, dir: &Path) -> (String, String, String) {
    for shard in 0..shards {
        let segment = run_shard(config, shard, shards, &Obs::new().with_trace());
        write_segment(dir, &segment).unwrap();
    }
    let merged = merge_dir(dir).unwrap();
    (
        serde_json::to_string(&merged.outcome).unwrap(),
        merged.trace.to_jsonl(),
        evaluate(&merged.outcome).render_report(),
    )
}

#[test]
fn one_two_and_four_shards_reassemble_byte_identically() {
    let config = LabConfig::quick(47, SITES).with_threads(2);
    let (json, trace, report) = single_run(&config);
    assert!(!json.is_empty() && !trace.is_empty());
    for shards in [1, 2, 4] {
        let dir = temp_dir(&format!("plain-{shards}"));
        let (mjson, mtrace, mreport) = sharded_run(&config, shards, &dir);
        assert_eq!(mjson, json, "{shards}-shard campaign.json differs");
        assert_eq!(mtrace, trace, "{shards}-shard stripped trace differs");
        assert_eq!(mreport, report, "{shards}-shard report differs");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn sharding_is_byte_identical_under_faults_and_probe_parallelism() {
    let config = LabConfig::quick(53, SITES)
        .with_threads(2)
        .with_fault_profile(FaultProfile::parse("0.05").unwrap())
        .with_probe_threads(4);
    let (json, trace, report) = single_run(&config);
    for shards in [1, 4] {
        let dir = temp_dir(&format!("fault-{shards}"));
        let (mjson, mtrace, mreport) = sharded_run(&config, shards, &dir);
        assert_eq!(mjson, json, "{shards}-shard faulty campaign.json differs");
        assert_eq!(mtrace, trace, "{shards}-shard faulty trace differs");
        assert_eq!(mreport, report, "{shards}-shard faulty report differs");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Write a 2-shard split of a small campaign and return the segment
/// paths (shard order).
fn small_split(tag: &str) -> (PathBuf, Vec<PathBuf>) {
    let config = LabConfig::quick(59, 40).with_threads(2);
    let dir = temp_dir(tag);
    let paths: Vec<PathBuf> = (0..2)
        .map(|shard| {
            let segment = run_shard(&config, shard, 2, &Obs::new().with_trace());
            write_segment(&dir, &segment).unwrap()
        })
        .collect();
    (dir, paths)
}

#[test]
fn merge_rejects_corrupted_segments_with_named_violations() {
    let (dir, paths) = small_split("corrupt");
    let pristine = std::fs::read_to_string(&paths[0]).unwrap();

    // Truncation: no checksum trailer survives.
    std::fs::write(&paths[0], &pristine[..pristine.len() / 2]).unwrap();
    let err = merge_dir(&dir).unwrap_err();
    assert!(err.contains("truncated"), "{err}");

    // Bit flip that stays valid JSON: only the checksum can catch it.
    std::fs::write(&paths[0], pristine.replacen("\"rank\":0", "\"rank\":9", 1)).unwrap();
    let err = merge_dir(&dir).unwrap_err();
    assert!(err.contains("checksum mismatch"), "{err}");

    // Duplicated shard: the same segment under both file names.
    std::fs::write(&paths[0], &pristine).unwrap();
    std::fs::copy(&paths[0], &paths[1]).unwrap();
    let err = merge_dir(&dir).unwrap_err();
    assert!(err.contains("duplicate shard"), "{err}");

    // Missing shard: only one of the two segments present.
    std::fs::remove_file(&paths[1]).unwrap();
    let err = merge_dir(&dir).unwrap_err();
    assert!(err.contains("missing shard"), "{err}");

    std::fs::remove_dir_all(&dir).unwrap();
}

fn lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_topics-lab"))
        .args(args)
        .output()
        .expect("topics-lab runs")
}

#[test]
fn cli_shard_merge_doctor_round_trip_and_failure_exits() {
    let dir = temp_dir("cli");
    let segs = dir.join("segs");
    let single = dir.join("single");
    let sd = segs.to_str().unwrap();

    // Single-process reference bundle.
    let out = lab(&[
        "crawl",
        "--sites",
        "60",
        "--seed",
        "13",
        "--quiet",
        "--out",
        single.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Shard twice, merge in place, compare byte-for-byte.
    for spec in ["1/2", "2/2"] {
        let out = lab(&[
            "shard", "--shard", spec, "--sites", "60", "--seed", "13", "--quiet", "--out", sd,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = lab(&["merge", "--segments", sd]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for artefact in ["campaign.json", "report.txt"] {
        assert_eq!(
            std::fs::read_to_string(single.join(artefact)).unwrap(),
            std::fs::read_to_string(segs.join(artefact)).unwrap(),
            "merged {artefact} differs from the single-process run"
        );
    }

    // Doctor verifies the segments sitting next to the merged bundle.
    let out = lab(&["doctor", "--campaign", sd]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("== Shard segments =="), "{stdout}");
    assert!(stdout.contains("[ok] 2 segment file(s)"), "{stdout}");

    // Corrupt one segment: merge and doctor both exit non-zero, naming
    // the checksum violation.
    let seg_path = segs.join("shard-1-of-2.seg");
    let pristine = std::fs::read_to_string(&seg_path).unwrap();
    std::fs::write(&seg_path, pristine.replacen("\"rank\":0", "\"rank\":9", 1)).unwrap();
    let out = lab(&["merge", "--segments", sd]);
    assert!(!out.status.success(), "merge must fail on corruption");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("checksum mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = lab(&["doctor", "--campaign", sd]);
    assert!(!out.status.success(), "doctor must fail on corruption");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("checksum mismatch"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Strict argument handling: bad shard specs and typo'd flags are
    // hard errors, same as every other subcommand.
    for bad in [
        vec!["shard", "--shard", "0/4", "--quiet"],
        vec!["shard", "--shard", "5/4", "--quiet"],
        vec!["shard", "--shard", "1/0", "--quiet"],
        vec!["shard", "--quiet"],
        vec!["shard", "--shar", "1/2", "--quiet"],
        vec!["merge"],
        vec!["merge", "--segment", "dir"],
        vec!["merge", "--segments"],
    ] {
        let out = lab(&bad);
        assert!(!out.status.success(), "must reject {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "{bad:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
