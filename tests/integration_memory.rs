//! Integration: memory & allocation observability.
//!
//! The counting allocator must be invisible to the science: with it on
//! or off, the same seed serializes to a byte-identical campaign and a
//! byte-identical stripped trace, at any probe-thread count. With it
//! on, the trace carries per-phase/per-span allocation attribution that
//! `mem_profile` can report and the doctor's allocation-balance check
//! can audit — on clean and fault-injected campaigns alike.

use std::sync::Mutex;
use topics_core::analysis::dataset::Datasets;
use topics_core::net::fault::FaultProfile;
use topics_core::obs::{alloc, mem_profile, Obs, Trace};
use topics_core::{diagnose, Lab, LabConfig};

/// The test binary routes its heap through the counting allocator, the
/// same way the `topics-lab` binary does.
#[global_allocator]
static ALLOC: topics_core::obs::CountingAlloc = topics_core::obs::CountingAlloc;

/// Counting is a process-global switch; tests that flip it serialize.
static GATE: Mutex<()> = Mutex::new(());

const SITES: usize = 300;

struct RunOutput {
    campaign_json: String,
    stripped_trace: String,
    trace: Trace,
    outcome: topics_core::crawler::record::CampaignOutcome,
}

fn run(config: LabConfig, counting: bool) -> RunOutput {
    alloc::set_enabled(counting);
    let obs = Obs::new().with_trace();
    let run = Lab::new(config).run_observed(&obs);
    alloc::set_enabled(false);
    let trace = obs.trace.finish();
    RunOutput {
        campaign_json: serde_json::to_string(&run.outcome).expect("outcome serialises"),
        stripped_trace: trace.stripped().to_jsonl(),
        trace,
        outcome: run.outcome,
    }
}

#[test]
fn counting_allocator_does_not_change_campaign_or_stripped_trace() {
    let _gate = GATE.lock().unwrap();
    let config = |probe_threads| {
        LabConfig::quick(53, SITES)
            .with_threads(4)
            .with_probe_threads(probe_threads)
    };
    let baseline = run(config(1), false);
    assert!(!baseline.stripped_trace.is_empty());
    for counting in [false, true] {
        for probe_threads in [1, 4] {
            let candidate = run(config(probe_threads), counting);
            assert_eq!(
                baseline.campaign_json, candidate.campaign_json,
                "campaign.json changed (counting={counting}, probe_threads={probe_threads})"
            );
            assert_eq!(
                baseline.stripped_trace, candidate.stripped_trace,
                "stripped trace changed (counting={counting}, probe_threads={probe_threads})"
            );
        }
    }
}

#[test]
fn attribution_reaches_phases_visits_and_memprofile() {
    let _gate = GATE.lock().unwrap();
    let out = run(LabConfig::quick(59, SITES).with_threads(2), true);

    // Phase spans (children of the campaign root) carry window deltas.
    let attributed_phases: Vec<&str> = out
        .trace
        .spans
        .iter()
        .filter(|s| s.parent == Some(1) && !s.op)
        .filter(|s| s.fields.iter().any(|(k, _)| k == "alloc_bytes"))
        .map(|s| s.name.as_str())
        .collect();
    assert!(
        attributed_phases.contains(&"crawl"),
        "crawl phase lacks allocation attribution: {attributed_phases:?}"
    );
    assert!(
        attributed_phases.contains(&"attestation-probe"),
        "probe phase lacks allocation attribution: {attributed_phases:?}"
    );

    // Visit spans carry thread-local deltas.
    let attributed_visits = out
        .trace
        .spans
        .iter()
        .filter(|s| s.name == "visit" && s.fields.iter().any(|(k, _)| k == "alloc_bytes"))
        .count();
    assert!(attributed_visits > SITES / 2, "{attributed_visits} visits");

    // The profile report assembles from the same trace.
    let profile = mem_profile(&out.trace, 10);
    assert!(!profile.is_empty());
    assert!(profile.phases.iter().any(|p| p.name == "crawl"));
    assert!(!profile.top_spans.is_empty());
    let text = profile.render();
    for needle in [
        "Per-phase allocation",
        "Top allocating spans",
        "Retry-storm allocation",
    ] {
        assert!(text.contains(needle), "missing section {needle}");
    }

    // The stripped trace keeps determinism: no alloc fields survive.
    assert!(!out.stripped_trace.contains("alloc_bytes"));
}

#[test]
fn doctor_allocation_balance_holds_on_clean_and_faulty_campaigns() {
    let _gate = GATE.lock().unwrap();
    let clean = run(LabConfig::quick(61, SITES).with_threads(2), true);
    let faulty = run(
        LabConfig::quick(67, SITES)
            .with_threads(2)
            .with_fault_profile(FaultProfile::parse("0.05").unwrap()),
        true,
    );
    for (label, out) in [("clean", &clean), ("5%-fault", &faulty)] {
        let report = diagnose(&out.outcome, &out.trace, 10);
        assert!(
            report.is_healthy(),
            "{label}: violations {:?}",
            report.violations()
        );
        assert!(
            !report.alloc_balance.is_empty(),
            "{label}: no balance rows despite attribution"
        );
        assert!(report.render().contains("Allocation balance"));
    }
}

#[test]
fn dataset_index_alloc_is_measured_only_under_counting() {
    let _gate = GATE.lock().unwrap();
    let outcome = Lab::new(LabConfig::quick(71, 100)).run().outcome;

    alloc::set_enabled(true);
    let counted = Datasets::new(&outcome).index_alloc();
    alloc::set_enabled(false);
    assert!(counted.alloc_bytes > 0, "index build allocates");
    assert!(counted.alloc_count > 0);

    let uncounted = Datasets::new(&outcome).index_alloc();
    assert!(uncounted.is_zero(), "counting off records nothing");
}
