//! The Topics taxonomy tree.
//!
//! Taxonomy v2 (the one active during the paper's crawl) has 469 topics
//! under 25 root categories. Topic IDs are small integers assigned in a
//! stable depth-first order, matching how Chrome exposes them to callers
//! (`browsingTopics()` returns numeric topic IDs plus a taxonomy version).
//!
//! The 25 roots and a curated set of prominent children carry their real
//! names; the remaining nodes are synthesised deterministically per root so
//! the tree reaches exactly [`TAXONOMY_SIZE`] nodes with a realistic
//! breadth/depth profile. Downstream code only depends on the tree's
//! *structure* (IDs, parentage, size), never on the display names.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// Number of topics in taxonomy v2 (the default).
pub const TAXONOMY_SIZE: usize = 469;

/// Number of topics in taxonomy v1 (Chrome's original taxonomy, used
/// until the v2 migration that was rolling out around the paper's
/// crawl).
pub const TAXONOMY_V1_SIZE: usize = 349;

/// Version string reported alongside topics, as Chrome formats it.
pub const TAXONOMY_VERSION: &str = "2";

/// Which shipped taxonomy a tree models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaxonomyVersion {
    /// The original 349-topic taxonomy.
    V1,
    /// The 469-topic taxonomy active during the paper's crawl.
    #[default]
    V2,
}

impl TaxonomyVersion {
    /// Number of topics in this version.
    pub fn size(self) -> usize {
        match self {
            TaxonomyVersion::V1 => TAXONOMY_V1_SIZE,
            TaxonomyVersion::V2 => TAXONOMY_SIZE,
        }
    }

    /// The version string Chrome reports alongside answers.
    pub fn as_str(self) -> &'static str {
        match self {
            TaxonomyVersion::V1 => "1",
            TaxonomyVersion::V2 => "2",
        }
    }
}

/// A topic identifier: `1..=TAXONOMY_SIZE`, stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TopicId(pub u16);

impl TopicId {
    /// The numeric id.
    pub fn get(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TopicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One node of the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topic {
    /// Stable id (`1..=TAXONOMY_SIZE`).
    pub id: TopicId,
    /// Display name of this node (last path segment).
    pub name: String,
    /// Parent topic, `None` for the 25 roots.
    pub parent: Option<TopicId>,
}

/// The real 25 root categories of the Topics taxonomy.
const ROOTS: [&str; 25] = [
    "Arts & Entertainment",
    "Autos & Vehicles",
    "Beauty & Fitness",
    "Books & Literature",
    "Business & Industrial",
    "Computers & Electronics",
    "Finance",
    "Food & Drink",
    "Games",
    "Hobbies & Leisure",
    "Home & Garden",
    "Internet & Telecom",
    "Jobs & Education",
    "Law & Government",
    "News",
    "Online Communities",
    "People & Society",
    "Pets & Animals",
    "Real Estate",
    "Reference",
    "Science",
    "Shopping",
    "Sports",
    "Travel & Transportation",
    "Adult", // placeholder root for sensitive content, never returned
];

/// Curated real children for prominent roots (root index, child names).
/// These give the tree recognisable labels where the paper's figures would
/// show them; the long tail is synthesised.
const CURATED_CHILDREN: &[(usize, &[&str])] = &[
    (
        0,
        &[
            "Movies",
            "Music & Audio",
            "TV Shows & Programs",
            "Comics",
            "Humor",
            "Live Events",
        ],
    ),
    (
        1,
        &[
            "Motor Vehicles (By Type)",
            "Vehicle Repair & Maintenance",
            "Motorcycles",
        ],
    ),
    (2, &["Fitness", "Hair Care", "Skin Care"]),
    (
        4,
        &[
            "Advertising & Marketing",
            "Aerospace & Defense",
            "Agriculture & Forestry",
        ],
    ),
    (
        5,
        &[
            "Consumer Electronics",
            "Software",
            "Programming",
            "Network Security",
        ],
    ),
    (
        6,
        &["Banking", "Credit Cards", "Insurance", "Investing", "Loans"],
    ),
    (7, &["Cooking & Recipes", "Restaurants", "Beverages"]),
    (
        8,
        &[
            "Computer & Video Games",
            "Board Games",
            "Card Games",
            "Gambling",
        ],
    ),
    (12, &["Education", "Jobs"]),
    (14, &["Business News", "Politics", "Sports News", "Weather"]),
    (21, &["Apparel", "Consumer Resources", "Luxury Goods"]),
    (
        22,
        &[
            "Soccer",
            "Basketball",
            "Baseball",
            "Tennis",
            "Motor Sports",
            "Winter Sports",
        ],
    ),
    (
        23,
        &["Air Travel", "Hotels & Accommodations", "Car Rentals"],
    ),
];

/// The full taxonomy, built once per process and per version.
#[derive(Debug)]
pub struct Taxonomy {
    version: TaxonomyVersion,
    topics: Vec<Topic>,
    roots: Vec<TopicId>,
}

impl Taxonomy {
    /// Access the process-wide taxonomy instance (v2, the version active
    /// during the paper's crawl).
    ///
    /// ```
    /// use topics_taxonomy::Taxonomy;
    ///
    /// let t = Taxonomy::global();
    /// assert_eq!(t.len(), topics_taxonomy::TAXONOMY_SIZE);
    /// assert_eq!(t.roots().len(), 25);
    /// ```
    pub fn global() -> &'static Taxonomy {
        Taxonomy::of(TaxonomyVersion::V2)
    }

    /// Access a specific shipped taxonomy version.
    pub fn of(version: TaxonomyVersion) -> &'static Taxonomy {
        static V1: OnceLock<Taxonomy> = OnceLock::new();
        static V2: OnceLock<Taxonomy> = OnceLock::new();
        match version {
            TaxonomyVersion::V1 => V1.get_or_init(|| Taxonomy::build(TaxonomyVersion::V1)),
            TaxonomyVersion::V2 => V2.get_or_init(|| Taxonomy::build(TaxonomyVersion::V2)),
        }
    }

    /// Which shipped version this tree models.
    pub fn version(&self) -> TaxonomyVersion {
        self.version
    }

    /// Build the taxonomy: 25 roots, curated children, then synthesised
    /// nodes distributed round-robin across roots (with a third level
    /// under the earliest children) until the version's size is reached.
    /// Versions are prefix-compatible by construction: every v1 topic id
    /// means the same thing in v2, as in Chrome's actual migration.
    fn build(version: TaxonomyVersion) -> Taxonomy {
        let size = version.size();
        let mut topics: Vec<Topic> = Vec::with_capacity(size);
        let mut roots = Vec::with_capacity(ROOTS.len());

        let push = |name: String, parent: Option<TopicId>, topics: &mut Vec<Topic>| {
            let id = TopicId((topics.len() + 1) as u16);
            topics.push(Topic { id, name, parent });
            id
        };

        for name in ROOTS {
            let id = push(name.to_owned(), None, &mut topics);
            roots.push(id);
        }

        // Curated, real-named children.
        for &(root_idx, children) in CURATED_CHILDREN {
            let parent = roots[root_idx];
            for &c in children {
                push(c.to_owned(), Some(parent), &mut topics);
            }
        }

        // Synthesised second-level nodes, round-robin over roots (skipping
        // the sensitive root), until 80% of the remaining budget is used.
        let second_level_budget = {
            let used = topics.len();
            ((size - used) * 4) / 5
        };
        let mut counters = vec![0usize; ROOTS.len()];
        let mut second_level: Vec<TopicId> = Vec::new();
        for i in 0..second_level_budget {
            let root_idx = i % (ROOTS.len() - 1); // skip "Adult"
            counters[root_idx] += 1;
            let name = format!("{} Subtopic {}", ROOTS[root_idx], counters[root_idx]);
            let id = push(name, Some(roots[root_idx]), &mut topics);
            second_level.push(id);
        }

        // Third-level nodes under the earliest second-level nodes.
        let mut i = 0usize;
        while topics.len() < size {
            let parent = second_level[i % second_level.len()];
            // Names must not contain '/', which is reserved for path
            // rendering.
            let name = format!("{} Detail {}", topics[(parent.0 - 1) as usize].name, i + 1);
            push(name, Some(parent), &mut topics);
            i += 1;
        }

        debug_assert_eq!(topics.len(), size);
        Taxonomy {
            version,
            topics,
            roots,
        }
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// Never true: a taxonomy always has its version's topic count.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Look a topic up by id. Returns `None` for out-of-range ids (e.g. a
    /// corrupted record).
    pub fn get(&self, id: TopicId) -> Option<&Topic> {
        if id.0 == 0 {
            return None;
        }
        self.topics.get((id.0 - 1) as usize)
    }

    /// The 25 root topics.
    pub fn roots(&self) -> &[TopicId] {
        &self.roots
    }

    /// All topics in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Topic> {
        self.topics.iter()
    }

    /// The root ancestor of a topic.
    pub fn root_of(&self, id: TopicId) -> TopicId {
        let mut cur = id;
        while let Some(t) = self.get(cur) {
            match t.parent {
                Some(p) => cur = p,
                None => return cur,
            }
        }
        cur
    }

    /// Ancestors from the topic's parent up to (and including) the root.
    pub fn ancestors(&self, id: TopicId) -> Vec<TopicId> {
        let mut out = Vec::new();
        let mut cur = self.get(id).and_then(|t| t.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.get(p).and_then(|t| t.parent);
        }
        out
    }

    /// True when `desc` is `anc` or lies beneath it.
    pub fn is_descendant_or_self(&self, desc: TopicId, anc: TopicId) -> bool {
        desc == anc || self.ancestors(desc).contains(&anc)
    }

    /// Render the full `/Root/…/Leaf` path of a topic.
    pub fn path(&self, id: TopicId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            match self.get(c) {
                Some(t) => {
                    parts.push(&t.name);
                    cur = t.parent;
                }
                None => break,
            }
        }
        parts.reverse();
        let mut out = String::new();
        for p in parts {
            out.push('/');
            out.push_str(p);
        }
        out
    }

    /// The id of the sensitive "Adult" root, which the Topics engine must
    /// never return to callers.
    pub fn sensitive_root(&self) -> TopicId {
        self.roots[ROOTS.len() - 1]
    }

    /// Ids eligible to be returned to callers (everything outside the
    /// sensitive subtree).
    pub fn returnable(&self) -> impl Iterator<Item = TopicId> + '_ {
        let sensitive = self.sensitive_root();
        self.topics
            .iter()
            .map(|t| t.id)
            .filter(move |&id| !self.is_descendant_or_self(id, sensitive))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_469_topics_and_25_roots() {
        let t = Taxonomy::global();
        assert_eq!(t.len(), TAXONOMY_SIZE);
        assert_eq!(t.roots().len(), 25);
        assert!(!t.is_empty());
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let t = Taxonomy::global();
        for (i, topic) in t.iter().enumerate() {
            assert_eq!(topic.id.0 as usize, i + 1);
        }
        assert_eq!(t.get(TopicId(1)).unwrap().name, "Arts & Entertainment");
        assert!(t.get(TopicId(0)).is_none());
        assert!(t.get(TopicId(TAXONOMY_SIZE as u16 + 1)).is_none());
    }

    #[test]
    fn every_non_root_has_valid_parent() {
        let t = Taxonomy::global();
        for topic in t.iter() {
            if let Some(p) = topic.parent {
                assert!(t.get(p).is_some(), "dangling parent for {:?}", topic.id);
                assert!(p < topic.id, "parents precede children in id order");
            }
        }
    }

    #[test]
    fn root_of_terminates_at_roots() {
        let t = Taxonomy::global();
        for topic in t.iter() {
            let root = t.root_of(topic.id);
            assert!(t.get(root).unwrap().parent.is_none());
            assert!(t.roots().contains(&root));
        }
    }

    #[test]
    fn paths_render_with_slash_hierarchy() {
        let t = Taxonomy::global();
        // Topic 26 is the first curated child: /Arts & Entertainment/Movies
        let movies = t
            .iter()
            .find(|x| x.name == "Movies")
            .expect("curated child exists");
        assert_eq!(t.path(movies.id), "/Arts & Entertainment/Movies");
        assert_eq!(t.path(TopicId(1)), "/Arts & Entertainment");
    }

    #[test]
    fn descendant_relation() {
        let t = Taxonomy::global();
        let soccer = t.iter().find(|x| x.name == "Soccer").unwrap();
        let sports = t.root_of(soccer.id);
        assert_eq!(t.get(sports).unwrap().name, "Sports");
        assert!(t.is_descendant_or_self(soccer.id, sports));
        assert!(t.is_descendant_or_self(sports, sports));
        assert!(!t.is_descendant_or_self(sports, soccer.id));
    }

    #[test]
    fn sensitive_root_excluded_from_returnable() {
        let t = Taxonomy::global();
        let sensitive = t.sensitive_root();
        assert_eq!(t.get(sensitive).unwrap().name, "Adult");
        let returnable: Vec<_> = t.returnable().collect();
        assert!(!returnable.contains(&sensitive));
        // Only the single sensitive root is excluded (it has no synthesised
        // children because round-robin skips it).
        assert_eq!(returnable.len(), TAXONOMY_SIZE - 1);
    }

    #[test]
    fn taxonomy_v1_is_a_prefix_of_v2() {
        let v1 = Taxonomy::of(TaxonomyVersion::V1);
        let v2 = Taxonomy::of(TaxonomyVersion::V2);
        assert_eq!(v1.len(), TAXONOMY_V1_SIZE);
        assert_eq!(v2.len(), TAXONOMY_SIZE);
        assert_eq!(v1.version().as_str(), "1");
        assert_eq!(v2.version().as_str(), "2");
        assert_eq!(v1.roots(), v2.roots(), "same 25 roots");
        // Chrome's migration kept existing ids stable; our builder is
        // prefix-compatible for the entire second level.
        let shared = v1
            .iter()
            .zip(v2.iter())
            .take_while(|(a, b)| a.name == b.name && a.parent == b.parent)
            .count();
        assert!(shared > 250, "long shared prefix, got {shared}");
    }

    #[test]
    fn tree_has_three_levels() {
        let t = Taxonomy::global();
        let max_depth = t.iter().map(|x| t.ancestors(x.id).len()).max().unwrap();
        assert_eq!(max_depth, 2, "roots, children, grandchildren");
    }
}
