//! # topics-taxonomy — the Topics API taxonomy and page classifier
//!
//! The Topics API maps every visited website onto a small, human-curated
//! taxonomy of advertising interests ("topics"). Chrome ships taxonomy v2
//! with 469 topics arranged in a tree (e.g. `/Sports/Soccer` under
//! `/Sports`), plus a model that classifies a hostname into up to a few
//! topics; an override list pins well-known domains to curated topics.
//!
//! This crate reproduces that machinery:
//!
//! * [`tree`] — the taxonomy itself: 469 topics, 25 root categories, with
//!   parent/child navigation and path rendering. Root and prominent
//!   second-level names mirror the real taxonomy; the long tail is
//!   synthesised deterministically so the tree has the real shape.
//! * [`classify`] — the "predefined language model" of the paper's §2.1:
//!   a deterministic domain→topics classifier with an override table,
//!   a hash-based fallback, and an *unclassifiable* outcome for domains
//!   the model cannot label.
//!
//! Everything is pure and deterministic: the same domain always yields the
//! same topics, which the browser-side epoch pipeline depends on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod tree;

pub use classify::{Classification, Classifier};
pub use tree::{
    Taxonomy, TaxonomyVersion, Topic, TopicId, TAXONOMY_SIZE, TAXONOMY_V1_SIZE, TAXONOMY_VERSION,
};
