//! The domain→topics classifier ("predefined language model" in §2.1).
//!
//! Chrome classifies a site by its hostname: an override list pins ~10k
//! well-known hosts to curated topics; everything else goes through an
//! on-device model that emits up to a handful of topics, or nothing when
//! the host is meaningless. We reproduce that interface with:
//!
//! * an **override table** the world generator populates with its ground
//!   truth (site → intended topics), mirroring Chrome's curated list, and
//! * a **deterministic fallback** hashing the registrable domain into 1–3
//!   topics, with a configurable unclassifiable rate.
//!
//! Classification happens per *registrable domain* — exactly the
//! granularity at which the Topics engine records observations.

use crate::tree::{Taxonomy, TaxonomyVersion, TopicId};
use std::collections::HashMap;
use topics_net::domain::Domain;
use topics_net::psl::registrable_domain;
use topics_net::seed;

/// The result of classifying one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Classification {
    /// The model produced topics (1–3, deduplicated, stable order).
    Topics(Vec<TopicId>),
    /// The model could not label the site; it contributes nothing to the
    /// epoch history.
    Unclassifiable,
}

impl Classification {
    /// The topics, or an empty slice when unclassifiable.
    pub fn topics(&self) -> &[TopicId] {
        match self {
            Classification::Topics(t) => t,
            Classification::Unclassifiable => &[],
        }
    }
}

/// Deterministic site classifier.
#[derive(Debug, Clone)]
pub struct Classifier {
    overrides: HashMap<Domain, Vec<TopicId>>,
    /// Probability that a non-overridden domain is unclassifiable.
    unclassifiable_rate: f64,
    version: TaxonomyVersion,
    seed: u64,
}

impl Classifier {
    /// Chrome's observed behaviour: a minority of hosts get no label.
    pub const DEFAULT_UNCLASSIFIABLE_RATE: f64 = 0.13;

    /// A classifier with no overrides and the default unclassifiable
    /// rate, targeting taxonomy v2.
    pub fn new(seed: u64) -> Classifier {
        Classifier::new_with_version(seed, TaxonomyVersion::V2)
    }

    /// A classifier targeting a specific taxonomy version (the model
    /// Chrome ships is version-locked: a v1 model never emits a topic id
    /// outside the 349-topic tree).
    pub fn new_with_version(seed: u64, version: TaxonomyVersion) -> Classifier {
        Classifier {
            overrides: HashMap::new(),
            unclassifiable_rate: Self::DEFAULT_UNCLASSIFIABLE_RATE,
            version,
            seed: seed::derive(seed, "classifier"),
        }
    }

    /// The taxonomy version this model targets.
    pub fn taxonomy_version(&self) -> TaxonomyVersion {
        self.version
    }

    /// Change the unclassifiable rate (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_unclassifiable_rate(mut self, rate: f64) -> Classifier {
        self.unclassifiable_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Pin a domain (at registrable-domain granularity) to fixed topics,
    /// as Chrome's override list does for well-known sites.
    pub fn add_override(&mut self, domain: &Domain, topics: Vec<TopicId>) {
        self.overrides.insert(registrable_domain(domain), topics);
    }

    /// Number of override entries.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Classify a host. Subdomains share the registrable domain's label,
    /// matching Chrome (`sport.example.com` and `example.com` agree).
    pub fn classify(&self, host: &Domain) -> Classification {
        let reg = registrable_domain(host);
        if let Some(t) = self.overrides.get(&reg) {
            return if t.is_empty() {
                Classification::Unclassifiable
            } else {
                Classification::Topics(t.clone())
            };
        }
        self.fallback(&reg)
    }

    /// Hash-based fallback for unknown domains: deterministic 1–3 topics
    /// from the returnable set, or unclassifiable.
    fn fallback(&self, reg: &Domain) -> Classification {
        let taxonomy = Taxonomy::of(self.version);
        let s = seed::derive(self.seed, reg.as_str());
        if seed::unit_f64(seed::derive(s, "uncls")) < self.unclassifiable_rate {
            return Classification::Unclassifiable;
        }
        let count = 1 + (seed::derive(s, "count") % 3) as usize; // 1..=3
        let returnable: u64 = (self.version.size() - 1) as u64;
        let sensitive = taxonomy.sensitive_root();
        let mut topics = Vec::with_capacity(count);
        let mut attempt = 0u64;
        while topics.len() < count && attempt < 32 {
            let pick = TopicId((seed::derive_idx(s, attempt) % returnable) as u16 + 1);
            attempt += 1;
            if pick == sensitive || topics.contains(&pick) {
                continue;
            }
            topics.push(pick);
        }
        topics.sort();
        Classification::Topics(topics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn deterministic_per_domain() {
        let c = Classifier::new(1);
        let a = c.classify(&d("news-site-42.com"));
        let b = c.classify(&d("news-site-42.com"));
        assert_eq!(a, b);
    }

    #[test]
    fn subdomains_share_label() {
        let c = Classifier::new(1);
        assert_eq!(
            c.classify(&d("example.com")),
            c.classify(&d("www.blog.example.com"))
        );
    }

    #[test]
    fn overrides_win() {
        let mut c = Classifier::new(1);
        let soccer = Taxonomy::global()
            .iter()
            .find(|t| t.name == "Soccer")
            .unwrap()
            .id;
        c.add_override(&d("fifa.com"), vec![soccer]);
        assert_eq!(
            c.classify(&d("www.fifa.com")),
            Classification::Topics(vec![soccer])
        );
        assert_eq!(c.override_count(), 1);
    }

    #[test]
    fn empty_override_means_unclassifiable() {
        let mut c = Classifier::new(1);
        c.add_override(&d("blank.org"), vec![]);
        assert_eq!(c.classify(&d("blank.org")), Classification::Unclassifiable);
    }

    #[test]
    fn fallback_emits_one_to_three_sorted_unique_topics() {
        let c = Classifier::new(9).with_unclassifiable_rate(0.0);
        for i in 0..2000 {
            match c.classify(&d(&format!("site{i}.net"))) {
                Classification::Topics(t) => {
                    assert!((1..=3).contains(&t.len()), "{} topics", t.len());
                    let mut sorted = t.clone();
                    sorted.sort();
                    sorted.dedup();
                    assert_eq!(sorted, t, "sorted and unique");
                    for id in &t {
                        assert!(Taxonomy::global().get(*id).is_some());
                        assert_ne!(*id, Taxonomy::global().sensitive_root());
                    }
                }
                Classification::Unclassifiable => panic!("rate is zero"),
            }
        }
    }

    #[test]
    fn unclassifiable_rate_is_respected() {
        let c = Classifier::new(5).with_unclassifiable_rate(0.25);
        let n = 10_000;
        let uncls = (0..n)
            .filter(|i| {
                matches!(
                    c.classify(&d(&format!("u{i}.org"))),
                    Classification::Unclassifiable
                )
            })
            .count();
        let rate = uncls as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn v1_model_stays_inside_the_v1_tree() {
        let c = Classifier::new_with_version(9, TaxonomyVersion::V1).with_unclassifiable_rate(0.0);
        assert_eq!(c.taxonomy_version(), TaxonomyVersion::V1);
        for i in 0..2_000 {
            if let Classification::Topics(t) = c.classify(&d(&format!("v1site{i}.com"))) {
                for id in t {
                    assert!(
                        (id.get() as usize) <= crate::tree::TAXONOMY_V1_SIZE,
                        "v1 model emitted v2-only topic {id}"
                    );
                }
            }
        }
    }

    #[test]
    fn classification_topics_accessor() {
        assert!(Classification::Unclassifiable.topics().is_empty());
        let t = Classification::Topics(vec![TopicId(3)]);
        assert_eq!(t.topics(), &[TopicId(3)]);
    }
}
