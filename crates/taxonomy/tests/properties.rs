//! Property-based tests for the taxonomy and classifier.

use proptest::prelude::*;
use topics_net::domain::Domain;
use topics_taxonomy::{Classification, Classifier, Taxonomy, TopicId, TAXONOMY_SIZE};

proptest! {
    #[test]
    fn classify_is_total_sorted_unique_and_valid(
        label in "[a-z][a-z0-9]{0,14}",
        tld in prop_oneof![Just("com"), Just("net"), Just("org"), Just("io"), Just("co.uk")]
    ) {
        let taxonomy = Taxonomy::global();
        let domain = Domain::parse(&format!("{label}.{tld}")).unwrap();
        let c = Classifier::new(99);
        match c.classify(&domain) {
            Classification::Topics(ts) => {
                prop_assert!(!ts.is_empty() && ts.len() <= 3);
                let mut sorted = ts.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(&sorted, &ts, "sorted, unique");
                for t in &ts {
                    prop_assert!(taxonomy.get(*t).is_some());
                    prop_assert!(*t != taxonomy.sensitive_root());
                }
            }
            Classification::Unclassifiable => {}
        }
    }

    #[test]
    fn classification_ignores_subdomains(
        label in "[a-z][a-z0-9]{0,10}",
        sub in "[a-z][a-z0-9]{0,8}"
    ) {
        let c = Classifier::new(5);
        let apex = Domain::parse(&format!("{label}.com")).unwrap();
        let deep = Domain::parse(&format!("{sub}.{label}.com")).unwrap();
        prop_assert_eq!(c.classify(&apex), c.classify(&deep));
    }

    #[test]
    fn classifier_seed_changes_fallback_somewhere(
        seed_a in any::<u64>(),
        seed_b in any::<u64>()
    ) {
        prop_assume!(seed_a != seed_b);
        let ca = Classifier::new(seed_a).with_unclassifiable_rate(0.0);
        let cb = Classifier::new(seed_b).with_unclassifiable_rate(0.0);
        // Across 40 domains, the two seeds must disagree at least once —
        // the fallback is seed-dependent, not a fixed mapping.
        let mut differs = false;
        for i in 0..40 {
            let d = Domain::parse(&format!("probe{i}.com")).unwrap();
            if ca.classify(&d) != cb.classify(&d) {
                differs = true;
                break;
            }
        }
        prop_assert!(differs);
    }

    #[test]
    fn topic_navigation_is_consistent(raw in 1u16..=(TAXONOMY_SIZE as u16)) {
        let taxonomy = Taxonomy::global();
        let id = TopicId(raw);
        let topic = taxonomy.get(id).expect("ids in range resolve");
        prop_assert_eq!(topic.id, id);
        // path() has one more segment than ancestors().
        let depth = taxonomy.ancestors(id).len();
        let path = taxonomy.path(id);
        prop_assert_eq!(path.matches('/').count(), depth + 1);
        // Every ancestor is an ancestor-or-self of the topic.
        for anc in taxonomy.ancestors(id) {
            prop_assert!(taxonomy.is_descendant_or_self(id, anc));
            prop_assert!(!taxonomy.is_descendant_or_self(anc, id) || anc == id);
        }
        // root_of agrees with the last ancestor (or self for roots).
        let root = taxonomy.root_of(id);
        match taxonomy.ancestors(id).last() {
            Some(&top) => prop_assert_eq!(root, top),
            None => prop_assert_eq!(root, id),
        }
    }

    #[test]
    fn override_beats_fallback(
        label in "[a-z][a-z0-9]{0,10}",
        topic_raw in 1u16..=(TAXONOMY_SIZE as u16)
    ) {
        let mut c = Classifier::new(1);
        let d = Domain::parse(&format!("{label}.com")).unwrap();
        c.add_override(&d, vec![TopicId(topic_raw)]);
        prop_assert_eq!(
            c.classify(&d),
            Classification::Topics(vec![TopicId(topic_raw)])
        );
    }
}
