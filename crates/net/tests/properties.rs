//! Property-based tests for the network substrate.

use proptest::prelude::*;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::http::parse_topics_header;
use topics_net::psl::{registrable_domain, same_second_level_label, same_site};
use topics_net::region::Region;
use topics_net::seed;
use topics_net::url::Url;
use topics_net::wellknown::AttestationFile;

/// Strategy for syntactically valid hostnames (2–4 labels).
fn valid_domain() -> impl Strategy<Value = String> {
    let label = "[a-z][a-z0-9]{0,10}";
    prop::collection::vec(label.prop_map(|s: String| s), 2..=4).prop_map(|labels| labels.join("."))
}

proptest! {
    #[test]
    fn domain_parse_never_panics(input in ".*") {
        let _ = Domain::parse(&input);
    }

    #[test]
    fn valid_domains_roundtrip(host in valid_domain()) {
        let d = Domain::parse(&host).expect("generated hosts are valid");
        prop_assert_eq!(d.to_string(), host.clone());
        let re = Domain::parse(d.as_ref()).unwrap();
        prop_assert_eq!(re, d);
    }

    #[test]
    fn parse_is_case_insensitive(host in valid_domain()) {
        let upper = host.to_ascii_uppercase();
        prop_assert_eq!(
            Domain::parse(&host).unwrap(),
            Domain::parse(&upper).unwrap()
        );
    }

    #[test]
    fn registrable_domain_is_idempotent(host in valid_domain()) {
        let d = Domain::parse(&host).unwrap();
        let reg = registrable_domain(&d);
        prop_assert_eq!(registrable_domain(&reg), reg.clone());
        // The host is always a subdomain of (or equal to) its
        // registrable domain.
        prop_assert!(d.is_subdomain_of(&reg) || d == reg);
    }

    #[test]
    fn same_site_is_reflexive_and_symmetric(a in valid_domain(), b in valid_domain()) {
        let da = Domain::parse(&a).unwrap();
        let db = Domain::parse(&b).unwrap();
        prop_assert!(same_site(&da, &da));
        prop_assert_eq!(same_site(&da, &db), same_site(&db, &da));
        prop_assert_eq!(
            same_second_level_label(&da, &db),
            same_second_level_label(&db, &da)
        );
    }

    #[test]
    fn region_is_total_and_stable(host in valid_domain()) {
        let d = Domain::parse(&host).unwrap();
        let r = Region::of(&d);
        prop_assert_eq!(r, Region::of(&d));
        prop_assert!(Region::ALL.contains(&r));
    }

    #[test]
    fn url_parse_never_panics(input in ".*") {
        let _ = Url::parse(&input);
    }

    #[test]
    fn url_roundtrips_via_display(
        host in valid_domain(),
        path in "(/[a-z0-9]{1,8}){0,3}",
        query in prop::option::of("[a-z0-9=&]{1,12}")
    ) {
        let mut s = format!("https://{host}{}", if path.is_empty() { "/" } else { &path });
        if let Some(q) = &query {
            s.push('?');
            s.push_str(q);
        }
        let u = Url::parse(&s).expect("constructed URLs are valid");
        let re = Url::parse(&u.to_string()).unwrap();
        prop_assert_eq!(re, u);
    }

    #[test]
    fn url_display_then_parse_is_a_fixed_point(input in ".{0,80}") {
        // For any string that parses at all, display → parse → display
        // converges after one step (parsing is idempotent through the
        // canonical form).
        if let Ok(u) = Url::parse(&input) {
            let canonical = u.to_string();
            let re = Url::parse(&canonical).expect("canonical form reparses");
            prop_assert_eq!(&re, &u);
            prop_assert_eq!(re.to_string(), canonical);
        }
    }

    #[test]
    fn topics_header_parse_never_panics(input in ".*") {
        let _ = parse_topics_header(&input);
    }

    #[test]
    fn topics_header_roundtrips(
        topics in prop::collection::vec(any::<u16>(), 0..8),
        version in "[a-z]{1,8}\\.[0-9]{1,2}:[0-9]{1,2}"
    ) {
        // The header the browser would emit — `(1 2 3);v=chrome.1:2`,
        // with the empty list `();v=…` also legal.
        let ids = topics
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let value = format!("({ids});v={version}");
        let parsed = parse_topics_header(&value).expect("emitted headers parse");
        prop_assert_eq!(parsed.topics, topics);
        prop_assert_eq!(parsed.version, version);
    }

    #[test]
    fn attestation_parse_is_total_over_truncations(
        host in valid_domain(),
        days in 0u64..1000,
        with_site in any::<bool>(),
        cut in any::<u16>()
    ) {
        // The fault layer serves truncated attestation bodies; the
        // parser must reject them with an error, never a panic, and the
        // full body must keep round-tripping.
        let d = Domain::parse(&host).unwrap();
        let file = AttestationFile::for_topics(&d, Timestamp::from_days(days), with_site);
        let json = file.to_json();
        prop_assert_eq!(
            AttestationFile::parse_and_validate(&json).as_ref(),
            Ok(&file)
        );
        prop_assert!(json.is_ascii(), "any byte offset is a char boundary");
        let cut = usize::from(cut) % (json.len() + 1);
        let _ = AttestationFile::parse_and_validate(&json[..cut]);
        let _ = AttestationFile::parse_and_validate(&json[cut..]);
    }

    #[test]
    fn url_join_of_rooted_paths_keeps_host(
        host in valid_domain(),
        path in "/[a-z0-9]{1,10}"
    ) {
        let base = Url::parse(&format!("https://{host}/")).unwrap();
        let joined = base.join(&path).unwrap();
        prop_assert_eq!(joined.host(), base.host());
        prop_assert_eq!(joined.path(), path.as_str());
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive(
        parent in any::<u64>(),
        label_a in "[a-z]{1,12}",
        label_b in "[a-z]{1,12}"
    ) {
        prop_assert_eq!(seed::derive(parent, &label_a), seed::derive(parent, &label_a));
        if label_a != label_b {
            prop_assert_ne!(seed::derive(parent, &label_a), seed::derive(parent, &label_b));
        }
    }

    #[test]
    fn unit_f64_stays_in_range(s in any::<u64>()) {
        let x = seed::unit_f64(s);
        prop_assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn timestamps_produce_valid_civil_dates(ms in 0u64..(400 * 7 * 86_400_000)) {
        let (y, m, d) = Timestamp(ms).to_date();
        prop_assert!((2023..=2031).contains(&y));
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
        // Formatting is total.
        let text = Timestamp(ms).to_string();
        prop_assert!(text.ends_with('Z'));
    }

    #[test]
    fn epoch_is_monotone(a in any::<u32>(), b in any::<u32>()) {
        let (a, b) = (u64::from(a), u64::from(b));
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(Timestamp(lo).epoch() <= Timestamp(hi).epoch());
    }
}
