//! Deterministic fault injection for the simulated network.
//!
//! The paper's crawl is a *lossy* measurement: of the Tranco top-50,000
//! only 43,405 sites are successfully visited, attestation fetches fail or
//! return malformed JSON, and the §4 anomalous-usage finding exists only
//! because a corrupted allow-list component fails open. The base world
//! models a calibrated amount of that loss (see [`crate::dns`]); this
//! module adds a *tunable* layer on top so the pipeline's tolerance to
//! worse conditions can be exercised and tested.
//!
//! Everything is a pure function of a fault seed, so campaigns stay
//! reproducible: per-exchange decisions are keyed on
//! `(fault seed, URL, simulated time)` — a retried exchange lands at a
//! later simulated instant (backoff) and therefore draws a fresh coin,
//! which is how deterministic-yet-transient faults are modelled without
//! any shared mutable state. DNS faults are *sticky* per registrable
//! domain (a dead name stays dead, retrying does not help), matching the
//! paper's "domain name resolution errors" site drops.

use crate::clock::Timestamp;
use crate::dns::DnsError;
use crate::domain::Domain;
use crate::error::NetError;
use crate::http::{HttpRequest, HttpResponse};
use crate::psl::registrable_domain;
use crate::seed;
use crate::service::NetworkService;
use crate::url::Url;
use crate::wellknown::ATTESTATION_PATH;
use serde::{Deserialize, Serialize};
use topics_obs::{Counter, MetricsRegistry};

/// Default simulated milliseconds a client waits before declaring an
/// injected slow response timed out.
pub const DEFAULT_EXCHANGE_TIMEOUT_MS: u64 = 10_000;

/// Tunable fault rates for one campaign. All rates are probabilities in
/// `[0, 1]`; the profile is inert (and provably zero-cost) when every
/// rate is zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Probability that a ranked (first-party) registrable domain fails
    /// DNS for the whole campaign — sticky, on top of the base
    /// [`crate::dns::DnsPolicy`] failure model.
    pub dns_failure_rate: f64,
    /// Per-exchange probability of a connection reset.
    pub connection_reset_rate: f64,
    /// Per-exchange probability of an HTTP 500.
    pub server_error_rate: f64,
    /// Per-exchange probability that the response is slower than
    /// `exchange_timeout_ms` and the client gives up.
    pub slow_response_rate: f64,
    /// Per-exchange probability that a served attestation body arrives
    /// truncated (invalid JSON) at the well-known path.
    pub attestation_truncation_rate: f64,
    /// Per-campaign probability that the browser's allow-list component
    /// download is corrupt (downgrades a healthy store; see the paper's
    /// §4 fail-open finding).
    pub allow_list_corruption_rate: f64,
    /// Simulated client timeout for injected slow responses.
    pub exchange_timeout_ms: u64,
}

impl FaultProfile {
    /// No faults at all. This is the default; the layer is inert.
    pub fn off() -> FaultProfile {
        FaultProfile::uniform(0.0)
    }

    /// A profile where `rate` is the headline fault probability: each
    /// exchange faults with probability `rate` (split evenly between
    /// resets, 500s and slow responses), each first-party domain is dead
    /// with probability `rate`, and attestation truncation / allow-list
    /// corruption fire at `rate`.
    pub fn uniform(rate: f64) -> FaultProfile {
        let rate = rate.clamp(0.0, 1.0);
        FaultProfile {
            dns_failure_rate: rate,
            connection_reset_rate: rate / 3.0,
            server_error_rate: rate / 3.0,
            slow_response_rate: rate / 3.0,
            attestation_truncation_rate: rate,
            allow_list_corruption_rate: rate,
            exchange_timeout_ms: DEFAULT_EXCHANGE_TIMEOUT_MS,
        }
    }

    /// Mild degradation (5% everywhere): the §3/§4/§5 rate-style findings
    /// must survive this band (see `tests/integration_faults.rs`).
    pub fn light() -> FaultProfile {
        FaultProfile::uniform(0.05)
    }

    /// Heavy degradation (25% everywhere): the pipeline must complete and
    /// reconcile its counts, but findings may move.
    pub fn heavy() -> FaultProfile {
        FaultProfile::uniform(0.25)
    }

    /// Parse a CLI profile name: `off`, `light`, `heavy`, or a bare
    /// uniform rate such as `0.1`.
    pub fn parse(input: &str) -> Result<FaultProfile, String> {
        match input.trim() {
            "off" => Ok(FaultProfile::off()),
            "light" => Ok(FaultProfile::light()),
            "heavy" => Ok(FaultProfile::heavy()),
            other => match other.parse::<f64>() {
                Ok(rate) if (0.0..=1.0).contains(&rate) => Ok(FaultProfile::uniform(rate)),
                _ => Err(format!(
                    "unknown fault profile {other:?} (expected off, light, heavy, or a rate in [0,1])"
                )),
            },
        }
    }

    /// True when every rate is zero and the layer can do nothing.
    pub fn is_off(&self) -> bool {
        self.dns_failure_rate == 0.0
            && self.connection_reset_rate == 0.0
            && self.server_error_rate == 0.0
            && self.slow_response_rate == 0.0
            && self.attestation_truncation_rate == 0.0
            && self.allow_list_corruption_rate == 0.0
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::off()
    }
}

/// A fault injected into one HTTP exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The connection was reset mid-exchange.
    ConnectionReset,
    /// The server answered 500.
    ServerError,
    /// The response took longer than the client timeout.
    SlowResponse {
        /// Simulated milliseconds the client waited before giving up.
        after_ms: u64,
    },
}

/// A seeded, deterministic schedule of faults for one campaign.
///
/// All decision methods are pure: the plan can be cloned into worker
/// threads and queried in any order without changing outcomes.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
}

impl FaultPlan {
    /// Build a plan from a profile and a fault seed (by convention derived
    /// from the campaign seed unless overridden with `--fault-seed`).
    pub fn new(profile: FaultProfile, fault_seed: u64) -> FaultPlan {
        FaultPlan {
            profile,
            seed: seed::derive(fault_seed, "fault-plan"),
        }
    }

    /// The profile this plan draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// True when the plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        !self.profile.is_off()
    }

    /// Sticky per-registrable-domain DNS fault (first-party lookups only;
    /// third-party flakiness is part of the base model). Retrying cannot
    /// help, which is deliberate: it models persistent NXDOMAIN-style
    /// loss, the paper's main reason for dropped sites.
    pub fn dns_fault(&self, domain: &Domain) -> Option<DnsError> {
        if self.profile.dns_failure_rate == 0.0 {
            return None;
        }
        let reg = registrable_domain(domain);
        let s = seed::derive(seed::derive(self.seed, "dns"), reg.as_str());
        (seed::unit_f64(s) < self.profile.dns_failure_rate).then(|| DnsError::Timeout {
            domain: reg.as_str().to_owned(),
        })
    }

    /// Per-exchange transient fault, keyed on `(url, now)`. A retried
    /// exchange arrives later (after backoff) and draws a fresh coin.
    pub fn exchange_fault(&self, url: &Url, now: Timestamp) -> Option<InjectedFault> {
        let p = &self.profile;
        let total = p.connection_reset_rate + p.server_error_rate + p.slow_response_rate;
        if total == 0.0 {
            return None;
        }
        let x = seed::unit_f64(self.exchange_seed("exchange", url, now));
        if x >= total {
            None
        } else if x < p.connection_reset_rate {
            Some(InjectedFault::ConnectionReset)
        } else if x < p.connection_reset_rate + p.server_error_rate {
            Some(InjectedFault::ServerError)
        } else {
            Some(InjectedFault::SlowResponse {
                after_ms: p.exchange_timeout_ms,
            })
        }
    }

    /// Should the attestation body served for this exchange arrive
    /// truncated? Only meaningful at the well-known path; transient like
    /// [`FaultPlan::exchange_fault`].
    pub fn truncate_attestation(&self, url: &Url, now: Timestamp) -> bool {
        if self.profile.attestation_truncation_rate == 0.0 || url.path() != ATTESTATION_PATH {
            return false;
        }
        seed::unit_f64(self.exchange_seed("attestation", url, now))
            < self.profile.attestation_truncation_rate
    }

    /// Campaign-level coin: is the browser's allow-list component
    /// download corrupt this campaign?
    pub fn corrupt_allow_list(&self) -> bool {
        self.profile.allow_list_corruption_rate > 0.0
            && seed::bernoulli(
                self.seed,
                "allow-list",
                self.profile.allow_list_corruption_rate,
            )
    }

    fn exchange_seed(&self, label: &str, url: &Url, now: Timestamp) -> u64 {
        seed::derive_idx(
            seed::derive(seed::derive(self.seed, label), &url.to_string()),
            now.millis(),
        )
    }
}

/// Counters for injected faults: `net_faults_injected_total{kind=…}`.
#[derive(Debug, Clone)]
pub struct FaultMetrics {
    dns: Counter,
    reset: Counter,
    server_error: Counter,
    timeout: Counter,
    truncated: Counter,
}

impl FaultMetrics {
    /// Resolve the handles in `registry`.
    pub fn new(registry: &MetricsRegistry) -> FaultMetrics {
        let c = |kind: &str| registry.labeled_counter("net_faults_injected_total", "kind", kind);
        FaultMetrics {
            dns: c("dns"),
            reset: c("reset"),
            server_error: c("server_error"),
            timeout: c("timeout"),
            truncated: c("truncated_body"),
        }
    }
}

/// A [`NetworkService`] decorator that injects the plan's faults in front
/// of an inner service. With an inert plan every call delegates verbatim,
/// so wrapping is free when faults are off.
pub struct FaultyService<'a, S: ?Sized> {
    inner: &'a S,
    plan: FaultPlan,
    metrics: Option<FaultMetrics>,
}

impl<'a, S: NetworkService + ?Sized> FaultyService<'a, S> {
    /// Wrap `inner` with `plan`.
    pub fn new(inner: &'a S, plan: FaultPlan) -> FaultyService<'a, S> {
        FaultyService {
            inner,
            plan,
            metrics: None,
        }
    }

    /// Count injected faults into a registry.
    pub fn with_metrics(mut self, metrics: FaultMetrics) -> FaultyService<'a, S> {
        self.metrics = Some(metrics);
        self
    }

    /// The plan driving this wrapper.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

/// Truncate a body roughly in half (on a char boundary), turning any
/// non-trivial JSON document into invalid JSON.
fn truncate_body(body: &mut String) {
    let mut cut = body.len() / 2;
    while cut > 0 && !body.is_char_boundary(cut) {
        cut -= 1;
    }
    body.truncate(cut);
}

impl<S: NetworkService + ?Sized> NetworkService for FaultyService<'_, S> {
    fn resolve_ranked(&self, domain: &Domain) -> Result<(), DnsError> {
        if let Some(e) = self.plan.dns_fault(domain) {
            if let Some(m) = &self.metrics {
                m.dns.inc();
            }
            return Err(e);
        }
        self.inner.resolve_ranked(domain)
    }

    fn resolve_third_party(&self, domain: &Domain) -> Result<(), DnsError> {
        self.inner.resolve_third_party(domain)
    }

    fn fetch(&self, request: &HttpRequest, now: Timestamp) -> Result<HttpResponse, NetError> {
        match self.plan.exchange_fault(&request.url, now) {
            Some(InjectedFault::ConnectionReset) => {
                if let Some(m) = &self.metrics {
                    m.reset.inc();
                }
                Err(NetError::ConnectionReset {
                    host: request.url.host().as_str().to_owned(),
                })
            }
            Some(InjectedFault::ServerError) => {
                if let Some(m) = &self.metrics {
                    m.server_error.inc();
                }
                Ok(HttpResponse::server_error("injected fault: server error"))
            }
            Some(InjectedFault::SlowResponse { after_ms }) => {
                if let Some(m) = &self.metrics {
                    m.timeout.inc();
                }
                Err(NetError::TimedOut {
                    url: request.url.to_string(),
                    after_ms,
                })
            }
            None => {
                let mut response = self.inner.fetch(request, now)?;
                if response.status.is_success() && self.plan.truncate_attestation(&request.url, now)
                {
                    truncate_body(&mut response.body);
                    if let Some(m) = &self.metrics {
                        m.truncated.inc();
                    }
                }
                Ok(response)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{ResourceKind, StatusCode};
    use crate::wellknown::{attestation_url, AttestationError, AttestationFile};

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    /// An always-healthy inner service serving a fixed body everywhere.
    struct Healthy;
    impl NetworkService for Healthy {
        fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn fetch(&self, req: &HttpRequest, _now: Timestamp) -> Result<HttpResponse, NetError> {
            if req.url.path() == ATTESTATION_PATH {
                let f = AttestationFile::for_topics(req.url.host(), Timestamp::from_days(30), true);
                Ok(HttpResponse::ok("application/json", f.to_json()))
            } else {
                Ok(HttpResponse::ok("text/html", "<html></html>"))
            }
        }
    }

    fn req(url: &str) -> HttpRequest {
        HttpRequest::get(Url::parse(url).unwrap(), ResourceKind::Document)
    }

    #[test]
    fn profile_parsing() {
        assert!(FaultProfile::parse("off").unwrap().is_off());
        assert_eq!(FaultProfile::parse("light").unwrap(), FaultProfile::light());
        assert_eq!(FaultProfile::parse("heavy").unwrap(), FaultProfile::heavy());
        assert_eq!(
            FaultProfile::parse("0.1").unwrap(),
            FaultProfile::uniform(0.1)
        );
        assert!(FaultProfile::parse("2.0").is_err());
        assert!(FaultProfile::parse("chaotic").is_err());
    }

    #[test]
    fn inert_plan_delegates_verbatim() {
        let plan = FaultPlan::new(FaultProfile::off(), 1);
        assert!(!plan.is_active());
        let svc = FaultyService::new(&Healthy, plan);
        assert!(svc.resolve_ranked(&d("site.com")).is_ok());
        let r = svc
            .fetch(&req("https://site.com/"), Timestamp::ORIGIN)
            .unwrap();
        assert_eq!(r.status, StatusCode::Ok);
        assert_eq!(r.body, "<html></html>");
        let a = svc
            .fetch(
                &req(&attestation_url(&d("site.com")).to_string()),
                Timestamp::ORIGIN,
            )
            .unwrap();
        assert!(AttestationFile::parse_and_validate(&a.body).is_ok());
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(FaultProfile::uniform(0.3), 7);
        let b = FaultPlan::new(FaultProfile::uniform(0.3), 7);
        let c = FaultPlan::new(FaultProfile::uniform(0.3), 8);
        let mut agree = 0;
        let mut differ = 0;
        for i in 0..500u64 {
            let url = Url::parse(&format!("https://s{i}.com/p")).unwrap();
            let t = Timestamp::from_days(i);
            assert_eq!(a.exchange_fault(&url, t), b.exchange_fault(&url, t));
            assert_eq!(
                a.dns_fault(&d(&format!("s{i}.com"))),
                b.dns_fault(&d(&format!("s{i}.com")))
            );
            if a.exchange_fault(&url, t) == c.exchange_fault(&url, t) {
                agree += 1;
            } else {
                differ += 1;
            }
        }
        assert!(
            differ > 0,
            "different fault seeds must differ ({agree} agreements)"
        );
    }

    #[test]
    fn dns_faults_are_sticky_per_registrable_domain() {
        let plan = FaultPlan::new(FaultProfile::uniform(0.5), 3);
        let mut dead = 0;
        for i in 0..400 {
            let base = d(&format!("host{i}.org"));
            let www = d(&format!("www.host{i}.org"));
            assert_eq!(
                plan.dns_fault(&base).is_some(),
                plan.dns_fault(&www).is_some()
            );
            if plan.dns_fault(&base).is_some() {
                dead += 1;
            }
        }
        assert!((120..=280).contains(&dead), "rate off: {dead}/400");
    }

    #[test]
    fn retried_exchanges_draw_fresh_coins() {
        // At 50% per-exchange rate, the same URL must both fault and
        // succeed across nearby simulated instants — time is the retry
        // axis.
        let plan = FaultPlan::new(FaultProfile::uniform(0.5), 11);
        let url = Url::parse("https://flaky.com/x").unwrap();
        let outcomes: Vec<bool> = (0..50u64)
            .map(|ms| {
                plan.exchange_fault(&url, Timestamp::ORIGIN.plus_millis(ms * 311))
                    .is_some()
            })
            .collect();
        assert!(outcomes.iter().any(|&f| f) && outcomes.iter().any(|&f| !f));
    }

    #[test]
    fn injected_faults_surface_as_errors_and_counters() {
        let registry = MetricsRegistry::new();
        let plan = FaultPlan::new(FaultProfile::uniform(0.4), 5);
        let svc = FaultyService::new(&Healthy, plan).with_metrics(FaultMetrics::new(&registry));
        let mut resets = 0;
        let mut errors_500 = 0;
        let mut timeouts = 0;
        for i in 0..600u64 {
            let r = svc.fetch(
                &req(&format!("https://s{i}.com/page")),
                Timestamp::from_days(i % 30),
            );
            match r {
                Err(NetError::ConnectionReset { .. }) => resets += 1,
                Err(NetError::TimedOut { after_ms, .. }) => {
                    assert_eq!(after_ms, DEFAULT_EXCHANGE_TIMEOUT_MS);
                    timeouts += 1;
                }
                Ok(resp) if resp.status == StatusCode::InternalServerError => errors_500 += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(resets > 0 && errors_500 > 0 && timeouts > 0);
        let s = registry.snapshot();
        assert_eq!(
            s.counter("net_faults_injected_total{kind=\"reset\"}"),
            resets
        );
        assert_eq!(
            s.counter("net_faults_injected_total{kind=\"server_error\"}"),
            errors_500
        );
        assert_eq!(
            s.counter("net_faults_injected_total{kind=\"timeout\"}"),
            timeouts
        );
    }

    #[test]
    fn attestation_truncation_yields_malformed_json() {
        let profile = FaultProfile {
            attestation_truncation_rate: 0.9,
            ..FaultProfile::off()
        };
        let plan = FaultPlan::new(profile, 13);
        let svc = FaultyService::new(&Healthy, plan);
        let mut truncated = 0;
        for i in 0..50u64 {
            let url = attestation_url(&d(&format!("party{i}.com")));
            let resp = svc
                .fetch(
                    &HttpRequest::get(url, ResourceKind::WellKnown),
                    Timestamp::from_days(i),
                )
                .unwrap();
            match AttestationFile::parse_and_validate(&resp.body) {
                Err(AttestationError::Malformed) => truncated += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected validation error {e}"),
            }
        }
        assert!(truncated > 0, "0.9 truncation rate never fired");
    }

    #[test]
    fn allow_list_corruption_is_a_campaign_level_coin() {
        let on = FaultPlan::new(FaultProfile::uniform(1.0), 1);
        assert!(on.corrupt_allow_list());
        let off = FaultPlan::new(FaultProfile::off(), 1);
        assert!(!off.corrupt_allow_list());
        // Deterministic per seed.
        let p = FaultProfile::uniform(0.5);
        for fault_seed in 0..20 {
            let a = FaultPlan::new(p.clone(), fault_seed).corrupt_allow_list();
            let b = FaultPlan::new(p.clone(), fault_seed).corrupt_allow_list();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn truncate_body_respects_char_boundaries() {
        let mut s = "ééééé".to_owned();
        truncate_body(&mut s);
        assert!(s.len() < 10);
        let mut empty = String::new();
        truncate_body(&mut empty);
        assert!(empty.is_empty());
    }
}
