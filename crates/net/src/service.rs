//! The boundary between clients (browser, crawler) and the simulated web.
//!
//! `topics-webgen`'s `World` implements [`NetworkService`]; the browser's
//! page loader and the crawler's well-known prober only ever talk to this
//! trait, so tests can substitute tiny hand-built services.

use crate::clock::Timestamp;
use crate::dns::DnsError;
use crate::domain::Domain;
use crate::error::NetError;
use crate::http::{HttpRequest, HttpResponse};
use crate::url::Url;

/// A simulated web: name resolution plus request handling.
pub trait NetworkService {
    /// Resolve a ranked (first-party) site. Failure aborts the visit.
    fn resolve_ranked(&self, domain: &Domain) -> Result<(), DnsError>;

    /// Resolve a third-party host.
    fn resolve_third_party(&self, domain: &Domain) -> Result<(), DnsError>;

    /// Handle one HTTP exchange at simulated time `now`.
    fn fetch(&self, request: &HttpRequest, now: Timestamp) -> Result<HttpResponse, NetError>;
}

/// Maximum redirect hops before giving up, matching browser defaults.
pub const MAX_REDIRECTS: usize = 10;

/// The outcome of following a redirect chain.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The final URL after redirects.
    pub final_url: Url,
    /// Every URL visited, in order, including the final one.
    pub chain: Vec<Url>,
    /// The final (non-redirect) response.
    pub response: HttpResponse,
}

impl FetchOutcome {
    /// Number of redirect hops taken.
    pub fn hops(&self) -> usize {
        self.chain.len() - 1
    }
}

/// Issue `request` and follow redirects (up to [`MAX_REDIRECTS`]),
/// resolving each new host as a third party.
///
/// This is the single fetch path used by the browser for subresources and
/// by the crawler for top-level documents (which resolve the first hop as
/// ranked before calling this).
pub fn fetch_following_redirects<S: NetworkService + ?Sized>(
    service: &S,
    mut request: HttpRequest,
    now: Timestamp,
) -> Result<FetchOutcome, NetError> {
    let mut chain = vec![request.url.clone()];
    loop {
        let response = service.fetch(&request, now)?;
        if !response.status.is_redirect() {
            return Ok(FetchOutcome {
                final_url: request.url,
                chain,
                response,
            });
        }
        let location = response.location().ok_or_else(|| NetError::BadRedirect {
            url: request.url.to_string(),
        })?;
        let next = request.url.join(location)?;
        if chain.len() > MAX_REDIRECTS {
            return Err(NetError::TooManyRedirects {
                url: next.to_string(),
                hops: chain.len(),
            });
        }
        if next.host() != request.url.host() {
            service.resolve_third_party(next.host())?;
        }
        chain.push(next.clone());
        request.url = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, ResourceKind, StatusCode};

    /// A toy service: `/hop{n}` redirects to `/hop{n+1}` until `limit`,
    /// then serves a body.
    struct HopService {
        limit: usize,
    }

    impl NetworkService for HopService {
        fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn resolve_third_party(&self, d: &Domain) -> Result<(), DnsError> {
            if d.as_str() == "dead.example" {
                Err(DnsError::NameError {
                    domain: d.as_str().to_owned(),
                })
            } else {
                Ok(())
            }
        }
        fn fetch(&self, req: &HttpRequest, _now: Timestamp) -> Result<HttpResponse, NetError> {
            let n: usize = req
                .url
                .path()
                .strip_prefix("/hop")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            if n >= self.limit {
                Ok(HttpResponse::ok("text/plain", format!("arrived at {n}")))
            } else {
                let next = req.url.with_path(&format!("/hop{}", n + 1));
                Ok(HttpResponse::redirect(&next))
            }
        }
    }

    fn req(path: &str) -> HttpRequest {
        HttpRequest {
            method: Method::Get,
            url: Url::parse(&format!("https://a.com{path}")).unwrap(),
            headers: Default::default(),
            kind: ResourceKind::Document,
            body: None,
            vantage: Default::default(),
        }
    }

    #[test]
    fn follows_short_chain() {
        let svc = HopService { limit: 3 };
        let out = fetch_following_redirects(&svc, req("/hop0"), Timestamp::ORIGIN).unwrap();
        assert_eq!(out.hops(), 3);
        assert_eq!(out.final_url.path(), "/hop3");
        assert_eq!(out.response.status, StatusCode::Ok);
        assert_eq!(out.response.body, "arrived at 3");
    }

    #[test]
    fn aborts_long_chain() {
        let svc = HopService { limit: 100 };
        let err = fetch_following_redirects(&svc, req("/hop0"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects { .. }));
    }

    #[test]
    fn cross_host_redirect_resolves_target() {
        struct CrossService;
        impl NetworkService for CrossService {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, d: &Domain) -> Result<(), DnsError> {
                if d.as_str() == "dead.example" {
                    Err(DnsError::Timeout {
                        domain: d.as_str().into(),
                    })
                } else {
                    Ok(())
                }
            }
            fn fetch(&self, req: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                if req.url.host().as_str() == "a.com" {
                    Ok(HttpResponse::redirect(
                        &Url::parse("https://dead.example/x").unwrap(),
                    ))
                } else {
                    Ok(HttpResponse::ok("text/plain", "hi"))
                }
            }
        }
        let err =
            fetch_following_redirects(&CrossService, req("/"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::Dns(DnsError::Timeout { .. })));
    }

    #[test]
    fn redirect_without_location_is_an_error() {
        struct Broken;
        impl NetworkService for Broken {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn fetch(&self, _r: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                Ok(HttpResponse {
                    status: StatusCode::Found,
                    headers: Default::default(),
                    body: String::new(),
                })
            }
        }
        let err = fetch_following_redirects(&Broken, req("/"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::BadRedirect { .. }));
    }
}
