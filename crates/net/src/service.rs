//! The boundary between clients (browser, crawler) and the simulated web.
//!
//! `topics-webgen`'s `World` implements [`NetworkService`]; the browser's
//! page loader and the crawler's well-known prober only ever talk to this
//! trait, so tests can substitute tiny hand-built services.

use crate::clock::Timestamp;
use crate::dns::DnsError;
use crate::domain::Domain;
use crate::error::NetError;
use crate::http::{HttpRequest, HttpResponse};
use crate::metrics::NetMetrics;
use crate::seed;
use crate::url::Url;
use topics_obs::TraceBuilder;

/// A simulated web: name resolution plus request handling.
pub trait NetworkService {
    /// Resolve a ranked (first-party) site. Failure aborts the visit.
    fn resolve_ranked(&self, domain: &Domain) -> Result<(), DnsError>;

    /// Resolve a third-party host.
    fn resolve_third_party(&self, domain: &Domain) -> Result<(), DnsError>;

    /// Handle one HTTP exchange at simulated time `now`.
    fn fetch(&self, request: &HttpRequest, now: Timestamp) -> Result<HttpResponse, NetError>;
}

/// Maximum redirect hops before giving up, matching browser defaults.
pub const MAX_REDIRECTS: usize = 10;

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Backoff delays are *simulated* milliseconds: a retried exchange is
/// issued at `now + accumulated delay` on the simulated clock, so retries
/// cost simulated page-load time (and draw fresh fault coins from the
/// fault layer) while runs stay byte-for-byte reproducible. Jitter is
/// derived from the request URL and attempt number — no wall clock, no
/// global RNG.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (1 = never retry).
    pub max_attempts: u32,
    /// Delay before the first retry, doubled each further retry.
    pub base_delay_ms: u64,
    /// Cap on a single backoff delay.
    pub max_delay_ms: u64,
    /// Jitter as a fraction of the delay (0 = none, 0.5 = ±25%).
    pub jitter: f64,
}

impl RetryPolicy {
    /// Never retry; zero added latency. This is the default everywhere —
    /// campaigns only enable retries when a fault profile is active, so
    /// the retry layer is provably zero-cost when faults are off.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ms: 0,
            max_delay_ms: 0,
            jitter: 0.0,
        }
    }

    /// The campaign default under an active fault profile: three attempts,
    /// 250 ms base delay, 4 s cap, ±25% jitter.
    pub const fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay_ms: 250,
            max_delay_ms: 4_000,
            jitter: 0.5,
        }
    }

    /// True when this policy never retries.
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// Backoff delay after `failed_attempt` (1-based) fails, with
    /// deterministic jitter drawn from `key`.
    pub fn backoff_ms(&self, failed_attempt: u32, key: u64) -> u64 {
        let shift = failed_attempt.saturating_sub(1).min(16);
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << shift)
            .min(self.max_delay_ms);
        if self.jitter <= 0.0 || exp == 0 {
            return exp;
        }
        let span = (exp as f64 * self.jitter).round() as u64;
        let u = seed::unit_f64(seed::derive_idx(key, u64::from(failed_attempt)));
        exp - span / 2 + (u * span as f64) as u64
    }
}

/// What the retry layer did for one logical fetch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Retry attempts issued beyond the first try.
    pub retries: u32,
    /// Simulated milliseconds spent waiting: backoff delays plus time
    /// burned on injected slow responses.
    pub waited_ms: u64,
}

impl RetryStats {
    /// Fold another fetch's stats into this one.
    pub fn absorb(&mut self, other: RetryStats) {
        self.retries += other.retries;
        self.waited_ms += other.waited_ms;
    }
}

/// Issue one HTTP exchange, retrying transient failures (connection
/// resets, timeouts, HTTP 5xx) under `policy`. Each retry is issued at
/// `now + waited_ms` on the simulated clock. The final attempt's result
/// is returned as-is — an exhausted 5xx stays an `Ok` response, matching
/// how pathological always-500 sites behave without retries.
pub fn fetch_exchange_with_retry<S: NetworkService + ?Sized>(
    service: &S,
    request: &HttpRequest,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
) -> (Result<HttpResponse, NetError>, RetryStats) {
    fetch_exchange_traced(service, request, now, policy, metrics, None)
}

/// [`fetch_exchange_with_retry`] with span emission: every retry adds a
/// `retry` leaf span covering the backoff window on the simulated
/// clock, with the host, 1-based failed attempt, backoff delay, and the
/// failure kind that triggered it.
pub fn fetch_exchange_traced<S: NetworkService + ?Sized>(
    service: &S,
    request: &HttpRequest,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
    mut trace: Option<&mut TraceBuilder>,
) -> (Result<HttpResponse, NetError>, RetryStats) {
    let key = seed::derive_idx(
        seed::fnv1a(request.url.to_string().as_bytes()),
        now.millis(),
    );
    let mut stats = RetryStats::default();
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = service.fetch(request, now.plus_millis(stats.waited_ms));
        if let Err(NetError::TimedOut { after_ms, .. }) = &result {
            // The client sat through the timeout before giving up.
            stats.waited_ms += after_ms;
        }
        let transient = match &result {
            Ok(r) => r.status.is_server_error(),
            Err(e) => e.is_transient(),
        };
        if !transient || attempt >= policy.max_attempts {
            if transient && !policy.is_none() {
                if let Some(m) = metrics {
                    m.record_retries_exhausted();
                }
            }
            return (result, stats);
        }
        stats.retries += 1;
        if let Some(m) = metrics {
            m.record_retry();
        }
        let backoff = policy.backoff_ms(attempt, key);
        if let Some(tb) = trace.as_deref_mut() {
            let failed_at = now.millis() + stats.waited_ms;
            let span = tb.leaf("retry", Some(failed_at), Some(failed_at + backoff));
            tb.field(span, "host", request.url.host().as_str());
            tb.field(span, "attempt", u64::from(attempt));
            tb.field(span, "backoff_ms", backoff);
            let cause = match &result {
                Ok(_) => "http-5xx",
                Err(e) => e.kind(),
            };
            tb.field(span, "cause", cause);
        }
        stats.waited_ms += backoff;
    }
}

/// The outcome of following a redirect chain.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The final URL after redirects.
    pub final_url: Url,
    /// Every URL visited, in order, including the final one.
    pub chain: Vec<Url>,
    /// The final (non-redirect) response.
    pub response: HttpResponse,
}

impl FetchOutcome {
    /// Number of redirect hops taken.
    pub fn hops(&self) -> usize {
        self.chain.len() - 1
    }
}

/// Issue `request` and follow redirects (up to [`MAX_REDIRECTS`]),
/// resolving each new host as a third party.
///
/// This is the single fetch path used by the browser for subresources and
/// by the crawler for top-level documents (which resolve the first hop as
/// ranked before calling this).
pub fn fetch_following_redirects<S: NetworkService + ?Sized>(
    service: &S,
    request: HttpRequest,
    now: Timestamp,
) -> Result<FetchOutcome, NetError> {
    fetch_following_redirects_retrying(service, request, now, &RetryPolicy::none(), None).0
}

/// [`fetch_following_redirects`] with per-hop bounded retry. Stats are
/// returned even when the chain ultimately fails, so callers can account
/// for simulated time spent on retries.
pub fn fetch_following_redirects_retrying<S: NetworkService + ?Sized>(
    service: &S,
    request: HttpRequest,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
) -> (Result<FetchOutcome, NetError>, RetryStats) {
    fetch_following_redirects_traced(service, request, now, policy, metrics, None)
}

/// [`fetch_following_redirects_retrying`] with `retry` span emission
/// (see [`fetch_exchange_traced`]).
pub fn fetch_following_redirects_traced<S: NetworkService + ?Sized>(
    service: &S,
    mut request: HttpRequest,
    now: Timestamp,
    policy: &RetryPolicy,
    metrics: Option<&NetMetrics>,
    mut trace: Option<&mut TraceBuilder>,
) -> (Result<FetchOutcome, NetError>, RetryStats) {
    let mut chain = vec![request.url.clone()];
    let mut total = RetryStats::default();
    loop {
        let (result, stats) = fetch_exchange_traced(
            service,
            &request,
            now.plus_millis(total.waited_ms),
            policy,
            metrics,
            trace.as_deref_mut(),
        );
        total.absorb(stats);
        let response = match result {
            Ok(r) => r,
            Err(e) => return (Err(e), total),
        };
        if !response.status.is_redirect() {
            return (
                Ok(FetchOutcome {
                    final_url: request.url,
                    chain,
                    response,
                }),
                total,
            );
        }
        let location = match response.location() {
            Some(l) => l,
            None => {
                return (
                    Err(NetError::BadRedirect {
                        url: request.url.to_string(),
                    }),
                    total,
                )
            }
        };
        let next = match request.url.join(location) {
            Ok(u) => u,
            Err(e) => return (Err(e), total),
        };
        if chain.len() > MAX_REDIRECTS {
            return (
                Err(NetError::TooManyRedirects {
                    url: next.to_string(),
                    hops: chain.len(),
                }),
                total,
            );
        }
        if next.host() != request.url.host() {
            if let Err(e) = service.resolve_third_party(next.host()) {
                return (Err(e.into()), total);
            }
        }
        chain.push(next.clone());
        request.url = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Method, ResourceKind, StatusCode};

    /// A toy service: `/hop{n}` redirects to `/hop{n+1}` until `limit`,
    /// then serves a body.
    struct HopService {
        limit: usize,
    }

    impl NetworkService for HopService {
        fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn resolve_third_party(&self, d: &Domain) -> Result<(), DnsError> {
            if d.as_str() == "dead.example" {
                Err(DnsError::NameError {
                    domain: d.as_str().to_owned(),
                })
            } else {
                Ok(())
            }
        }
        fn fetch(&self, req: &HttpRequest, _now: Timestamp) -> Result<HttpResponse, NetError> {
            let n: usize = req
                .url
                .path()
                .strip_prefix("/hop")
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            if n >= self.limit {
                Ok(HttpResponse::ok("text/plain", format!("arrived at {n}")))
            } else {
                let next = req.url.with_path(&format!("/hop{}", n + 1));
                Ok(HttpResponse::redirect(&next))
            }
        }
    }

    fn req(path: &str) -> HttpRequest {
        HttpRequest {
            method: Method::Get,
            url: Url::parse(&format!("https://a.com{path}")).unwrap(),
            headers: Default::default(),
            kind: ResourceKind::Document,
            body: None,
            vantage: Default::default(),
        }
    }

    #[test]
    fn follows_short_chain() {
        let svc = HopService { limit: 3 };
        let out = fetch_following_redirects(&svc, req("/hop0"), Timestamp::ORIGIN).unwrap();
        assert_eq!(out.hops(), 3);
        assert_eq!(out.final_url.path(), "/hop3");
        assert_eq!(out.response.status, StatusCode::Ok);
        assert_eq!(out.response.body, "arrived at 3");
    }

    #[test]
    fn aborts_long_chain() {
        let svc = HopService { limit: 100 };
        let err = fetch_following_redirects(&svc, req("/hop0"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::TooManyRedirects { .. }));
    }

    #[test]
    fn cross_host_redirect_resolves_target() {
        struct CrossService;
        impl NetworkService for CrossService {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, d: &Domain) -> Result<(), DnsError> {
                if d.as_str() == "dead.example" {
                    Err(DnsError::Timeout {
                        domain: d.as_str().into(),
                    })
                } else {
                    Ok(())
                }
            }
            fn fetch(&self, req: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                if req.url.host().as_str() == "a.com" {
                    Ok(HttpResponse::redirect(
                        &Url::parse("https://dead.example/x").unwrap(),
                    ))
                } else {
                    Ok(HttpResponse::ok("text/plain", "hi"))
                }
            }
        }
        let err =
            fetch_following_redirects(&CrossService, req("/"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::Dns(DnsError::Timeout { .. })));
    }

    /// Fails with transient errors until the simulated clock passes
    /// `healthy_after_ms` — retries (which advance simulated time via
    /// backoff) eventually get through.
    struct FlakyUntil {
        healthy_after_ms: u64,
        error_500: bool,
    }

    impl NetworkService for FlakyUntil {
        fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn fetch(&self, r: &HttpRequest, now: Timestamp) -> Result<HttpResponse, NetError> {
            if now.millis() >= self.healthy_after_ms {
                Ok(HttpResponse::ok("text/plain", "recovered"))
            } else if self.error_500 {
                Ok(HttpResponse::server_error("injected"))
            } else {
                Err(NetError::ConnectionReset {
                    host: r.url.host().as_str().to_owned(),
                })
            }
        }
    }

    #[test]
    fn retry_recovers_from_transient_resets_and_5xx() {
        use crate::metrics::NetMetrics;
        use topics_obs::MetricsRegistry;
        for error_500 in [false, true] {
            let svc = FlakyUntil {
                healthy_after_ms: 100,
                error_500,
            };
            let registry = MetricsRegistry::new();
            let m = NetMetrics::new(&registry);
            let (result, stats) = fetch_exchange_with_retry(
                &svc,
                &req("/x"),
                Timestamp::ORIGIN,
                &RetryPolicy::standard(),
                Some(&m),
            );
            let response = result.unwrap();
            assert_eq!(response.body, "recovered");
            assert!(stats.retries >= 1);
            assert!(stats.waited_ms >= 100);
            let s = registry.snapshot();
            assert_eq!(s.counter("net_retries_total"), u64::from(stats.retries));
            assert_eq!(s.counter("net_retries_exhausted_total"), 0);
        }
    }

    #[test]
    fn retry_budget_is_bounded_and_exhaustion_is_counted() {
        use crate::metrics::NetMetrics;
        use topics_obs::MetricsRegistry;
        let svc = FlakyUntil {
            healthy_after_ms: u64::MAX,
            error_500: false,
        };
        let registry = MetricsRegistry::new();
        let m = NetMetrics::new(&registry);
        let policy = RetryPolicy::standard();
        let (result, stats) =
            fetch_exchange_with_retry(&svc, &req("/x"), Timestamp::ORIGIN, &policy, Some(&m));
        assert!(matches!(result, Err(NetError::ConnectionReset { .. })));
        assert_eq!(stats.retries, policy.max_attempts - 1);
        let s = registry.snapshot();
        assert_eq!(s.counter("net_retries_exhausted_total"), 1);
        assert!(s.counter("net_retries_total") >= s.counter("net_retries_exhausted_total"));
    }

    #[test]
    fn none_policy_is_a_single_attempt_with_no_delay() {
        let svc = FlakyUntil {
            healthy_after_ms: u64::MAX,
            error_500: true,
        };
        let (result, stats) = fetch_exchange_with_retry(
            &svc,
            &req("/x"),
            Timestamp::ORIGIN,
            &RetryPolicy::none(),
            None,
        );
        assert!(result.unwrap().status.is_server_error());
        assert_eq!(stats, RetryStats::default());
    }

    #[test]
    fn injected_timeouts_cost_simulated_waiting_time() {
        struct AlwaysSlow;
        impl NetworkService for AlwaysSlow {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn fetch(&self, r: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                Err(NetError::TimedOut {
                    url: r.url.to_string(),
                    after_ms: 10_000,
                })
            }
        }
        let (result, stats) = fetch_exchange_with_retry(
            &AlwaysSlow,
            &req("/x"),
            Timestamp::ORIGIN,
            &RetryPolicy::standard(),
            None,
        );
        assert!(matches!(result, Err(NetError::TimedOut { .. })));
        // Three attempts sat through three timeouts plus two backoffs.
        assert!(stats.waited_ms >= 30_000);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let p = RetryPolicy::standard();
        for key in 0..50u64 {
            let d1 = p.backoff_ms(1, key);
            let d2 = p.backoff_ms(2, key);
            assert_eq!(d1, p.backoff_ms(1, key), "deterministic per (key, attempt)");
            // ±25% jitter around 250 and 500 ms.
            assert!((187..=313).contains(&d1), "d1={d1}");
            assert!((375..=625).contains(&d2), "d2={d2}");
        }
        // The cap binds for late attempts.
        assert!(p.backoff_ms(10, 3) <= p.max_delay_ms + p.max_delay_ms / 2);
        assert_eq!(RetryPolicy::none().backoff_ms(1, 3), 0);
    }

    #[test]
    fn retrying_redirect_follower_reports_stats_on_failure() {
        struct DeadEnd;
        impl NetworkService for DeadEnd {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn fetch(&self, r: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                Err(NetError::ConnectionReset {
                    host: r.url.host().as_str().to_owned(),
                })
            }
        }
        let (result, stats) = fetch_following_redirects_retrying(
            &DeadEnd,
            req("/x"),
            Timestamp::ORIGIN,
            &RetryPolicy::standard(),
            None,
        );
        assert!(matches!(result, Err(NetError::ConnectionReset { .. })));
        assert_eq!(stats.retries, RetryPolicy::standard().max_attempts - 1);
        assert!(stats.waited_ms > 0);
    }

    #[test]
    fn redirect_without_location_is_an_error() {
        struct Broken;
        impl NetworkService for Broken {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn fetch(&self, _r: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                Ok(HttpResponse {
                    status: StatusCode::Found,
                    headers: Default::default(),
                    body: String::new(),
                })
            }
        }
        let err = fetch_following_redirects(&Broken, req("/"), Timestamp::ORIGIN).unwrap_err();
        assert!(matches!(err, NetError::BadRedirect { .. }));
    }
}
