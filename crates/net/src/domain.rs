//! Hostname handling.
//!
//! A [`Domain`] is a validated, lowercased DNS hostname. The analysis in
//! the paper operates on domains at two granularities: the full host (for
//! object URLs) and the registrable domain / eTLD+1 (for identifying
//! parties); see [`crate::psl`] for the latter.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A validated, lowercase DNS hostname such as `www.example.co.uk`.
///
/// Cheap to clone (`Arc<str>` inside); ordering and hashing are by the
/// textual host, which makes it usable directly as a map key in datasets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Domain(Arc<str>);

/// Why a hostname failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainError {
    /// The input was empty.
    Empty,
    /// The hostname exceeded 253 characters.
    TooLong,
    /// A label was empty (leading/trailing/double dot).
    EmptyLabel,
    /// A label exceeded 63 characters.
    LabelTooLong,
    /// A character outside `[a-z0-9-]` appeared in a label.
    BadCharacter,
    /// A label started or ended with a hyphen.
    BadHyphen,
    /// The hostname had only one label (no dot), e.g. `localhost`.
    NotFullyQualified,
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DomainError::Empty => "empty hostname",
            DomainError::TooLong => "hostname longer than 253 characters",
            DomainError::EmptyLabel => "empty label",
            DomainError::LabelTooLong => "label longer than 63 characters",
            DomainError::BadCharacter => "invalid character in label",
            DomainError::BadHyphen => "label starts or ends with a hyphen",
            DomainError::NotFullyQualified => "hostname has a single label",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DomainError {}

impl Domain {
    /// Parse and validate a hostname, lowercasing ASCII letters.
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        if input.is_empty() {
            return Err(DomainError::Empty);
        }
        if input.len() > 253 {
            return Err(DomainError::TooLong);
        }
        let lowered = input.to_ascii_lowercase();
        let mut labels = 0usize;
        for label in lowered.split('.') {
            labels += 1;
            if label.is_empty() {
                return Err(DomainError::EmptyLabel);
            }
            if label.len() > 63 {
                return Err(DomainError::LabelTooLong);
            }
            if !label
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                return Err(DomainError::BadCharacter);
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::BadHyphen);
            }
        }
        if labels < 2 {
            return Err(DomainError::NotFullyQualified);
        }
        Ok(Domain(lowered.into()))
    }

    /// The full hostname as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterate over the labels from left (most specific) to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.split('.').count()
    }

    /// The last label, e.g. `uk` for `www.example.co.uk`.
    pub fn tld_label(&self) -> &str {
        self.0.rsplit('.').next().expect("validated non-empty")
    }

    /// True if `self` equals `other` or is a subdomain of it
    /// (`a.b.com`.is_subdomain_of(`b.com`) == true).
    pub fn is_subdomain_of(&self, other: &Domain) -> bool {
        self.0.as_ref() == other.0.as_ref()
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.0.as_ref())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }
}

impl fmt::Debug for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Domain({})", self.0)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for Domain {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Domain::parse(s)
    }
}

impl Borrow<str> for Domain {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Domain {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_lowercases() {
        let d = Domain::parse("WWW.Example.COM").unwrap();
        assert_eq!(d.as_str(), "www.example.com");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(Domain::parse(""), Err(DomainError::Empty));
        assert_eq!(Domain::parse("a..b"), Err(DomainError::EmptyLabel));
        assert_eq!(Domain::parse(".a.b"), Err(DomainError::EmptyLabel));
        assert_eq!(Domain::parse("a.b."), Err(DomainError::EmptyLabel));
        assert_eq!(
            Domain::parse("localhost"),
            Err(DomainError::NotFullyQualified)
        );
        assert_eq!(
            Domain::parse("exa mple.com"),
            Err(DomainError::BadCharacter)
        );
        assert_eq!(Domain::parse("-a.com"), Err(DomainError::BadHyphen));
        assert_eq!(Domain::parse("a-.com"), Err(DomainError::BadHyphen));
        let long_label = format!("{}.com", "a".repeat(64));
        assert_eq!(Domain::parse(&long_label), Err(DomainError::LabelTooLong));
        let long_host = format!("{}.com", "a.".repeat(130));
        assert_eq!(Domain::parse(&long_host), Err(DomainError::TooLong));
    }

    #[test]
    fn labels_iterate_left_to_right() {
        let d = Domain::parse("a.b.co.uk").unwrap();
        let v: Vec<_> = d.labels().collect();
        assert_eq!(v, ["a", "b", "co", "uk"]);
        assert_eq!(d.label_count(), 4);
        assert_eq!(d.tld_label(), "uk");
    }

    #[test]
    fn subdomain_relation() {
        let base = Domain::parse("foo.com").unwrap();
        assert!(Domain::parse("foo.com").unwrap().is_subdomain_of(&base));
        assert!(Domain::parse("a.foo.com").unwrap().is_subdomain_of(&base));
        assert!(!Domain::parse("afoo.com").unwrap().is_subdomain_of(&base));
        assert!(!Domain::parse("foo.com.br").unwrap().is_subdomain_of(&base));
    }

    #[test]
    fn serde_round_trip() {
        let d = Domain::parse("x.example.org").unwrap();
        let j = serde_json::to_string(&d).unwrap();
        assert_eq!(j, "\"x.example.org\"");
        let back: Domain = serde_json::from_str(&j).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn digits_only_labels_are_fine() {
        // e.g. 3lift.com-style domains with leading digits
        let d = Domain::parse("3lift.com").unwrap();
        assert_eq!(d.as_str(), "3lift.com");
    }
}
