//! A minimal URL type sufficient for the simulated web.
//!
//! Only `https` and `http` schemes exist in the simulation; URLs carry a
//! host, a path and an optional query. Fragments are parsed and discarded
//! (they never reach the network, as on the real web).

use crate::domain::{Domain, DomainError};
use crate::error::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// URL scheme. The simulated web is HTTPS-first; HTTP exists so redirects
/// to HTTPS can be modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// `http://`
    Http,
    /// `https://`
    Https,
}

impl Scheme {
    /// The scheme name without `://`.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        }
    }
}

/// A parsed URL: scheme, host, absolute path, optional query.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Url {
    scheme: Scheme,
    host: Domain,
    path: String,
    query: Option<String>,
}

impl Url {
    /// Construct an HTTPS URL for `host` with the given absolute path.
    ///
    /// Panics if `path` does not start with `/` — paths in the simulation
    /// are always absolute.
    pub fn https(host: Domain, path: &str) -> Url {
        assert!(path.starts_with('/'), "path must be absolute: {path:?}");
        Url {
            scheme: Scheme::Https,
            host,
            path: path.to_owned(),
            query: None,
        }
    }

    /// Construct an HTTPS URL with a query string (without the `?`).
    pub fn https_with_query(host: Domain, path: &str, query: &str) -> Url {
        let mut u = Url::https(host, path);
        u.query = Some(query.to_owned());
        u
    }

    /// Parse an absolute URL string.
    pub fn parse(input: &str) -> Result<Url, NetError> {
        let bad = |reason: &'static str| NetError::BadUrl {
            input: input.to_owned(),
            reason,
        };
        let (scheme, rest) = if let Some(r) = input.strip_prefix("https://") {
            (Scheme::Https, r)
        } else if let Some(r) = input.strip_prefix("http://") {
            (Scheme::Http, r)
        } else {
            return Err(bad("missing http(s) scheme"));
        };
        // Strip fragment first: it never reaches the network.
        let rest = rest.split('#').next().unwrap_or(rest);
        let (authority, path_query) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.contains('@') || authority.contains(':') {
            return Err(bad("userinfo and ports are not modelled"));
        }
        let host = Domain::parse(authority).map_err(|_e: DomainError| bad("invalid host"))?;
        let (path, query) = match path_query.find('?') {
            Some(i) => (
                path_query[..i].to_owned(),
                Some(path_query[i + 1..].to_owned()),
            ),
            None => (path_query.to_owned(), None),
        };
        Ok(Url {
            scheme,
            host,
            path,
            query,
        })
    }

    /// The URL scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The host.
    pub fn host(&self) -> &Domain {
        &self.host
    }

    /// The absolute path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The query string without the leading `?`, if any.
    pub fn query(&self) -> Option<&str> {
        self.query.as_deref()
    }

    /// A copy of this URL with a different path (query dropped).
    #[must_use]
    pub fn with_path(&self, path: &str) -> Url {
        assert!(path.starts_with('/'), "path must be absolute: {path:?}");
        Url {
            scheme: self.scheme,
            host: self.host.clone(),
            path: path.to_owned(),
            query: None,
        }
    }

    /// Resolve a reference against this URL as base: absolute URLs pass
    /// through, `//host/path` inherits the scheme, `/path` inherits host.
    pub fn join(&self, reference: &str) -> Result<Url, NetError> {
        if reference.starts_with("http://") || reference.starts_with("https://") {
            Url::parse(reference)
        } else if let Some(rest) = reference.strip_prefix("//") {
            Url::parse(&format!("{}://{}", self.scheme.as_str(), rest))
        } else if reference.starts_with('/') {
            let mut u = self.clone();
            let (path, query) = match reference.find('?') {
                Some(i) => (
                    reference[..i].to_owned(),
                    Some(reference[i + 1..].to_owned()),
                ),
                None => (reference.to_owned(), None),
            };
            u.path = path;
            u.query = query;
            Ok(u)
        } else {
            Err(NetError::BadUrl {
                input: reference.to_owned(),
                reason: "relative (non-rooted) references are not modelled",
            })
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme.as_str(), self.host, self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        Ok(())
    }
}

impl FromStr for Url {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let u = Url::parse("https://www.example.com/a/b?x=1").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host().as_str(), "www.example.com");
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.query(), Some("x=1"));
        assert_eq!(u.to_string(), "https://www.example.com/a/b?x=1");
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "https://example.com/");
    }

    #[test]
    fn fragment_is_dropped() {
        let u = Url::parse("https://example.com/p#frag").unwrap();
        assert_eq!(u.path(), "/p");
        assert_eq!(u.to_string(), "https://example.com/p");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Url::parse("ftp://example.com/").is_err());
        assert!(Url::parse("https://user@example.com/").is_err());
        assert!(Url::parse("https://example.com:8080/").is_err());
        assert!(Url::parse("https:///path").is_err());
        assert!(Url::parse("example.com/path").is_err());
    }

    #[test]
    fn join_variants() {
        let base = Url::parse("https://example.com/dir/page").unwrap();
        assert_eq!(
            base.join("https://other.net/x").unwrap().to_string(),
            "https://other.net/x"
        );
        assert_eq!(
            base.join("//cdn.example.com/lib.js").unwrap().to_string(),
            "https://cdn.example.com/lib.js"
        );
        assert_eq!(
            base.join("/rooted?q=2").unwrap().to_string(),
            "https://example.com/rooted?q=2"
        );
        assert!(base.join("relative/path").is_err());
    }

    #[test]
    fn with_path_drops_query() {
        let u = Url::parse("https://example.com/a?x=1").unwrap();
        let v = u.with_path("/b");
        assert_eq!(v.to_string(), "https://example.com/b");
    }

    #[test]
    #[should_panic(expected = "absolute")]
    fn https_requires_absolute_path() {
        Url::https(Domain::parse("a.com").unwrap(), "nope");
    }
}
