//! HTTP request/response types for the simulated web.
//!
//! The fidelity target is the subset of HTTP the paper's measurement
//! depends on: request/response exchange, redirects (`Location`), content
//! types, and the two Topics-specific headers used by the *fetch* call
//! type — `Sec-Browsing-Topics` on the request and
//! `Observe-Browsing-Topics` on the response.

use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Request method. The simulated web only needs GET (documents,
/// subresources) and POST (ad requests carrying topics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// GET
    Get,
    /// POST
    Post,
}

/// Minimal status codes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StatusCode {
    /// 200
    Ok,
    /// 301
    MovedPermanently,
    /// 302
    Found,
    /// 404
    NotFound,
    /// 500
    InternalServerError,
}

impl StatusCode {
    /// Numeric code.
    pub fn as_u16(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::MovedPermanently => 301,
            StatusCode::Found => 302,
            StatusCode::NotFound => 404,
            StatusCode::InternalServerError => 500,
        }
    }

    /// True for 3xx.
    pub fn is_redirect(self) -> bool {
        matches!(self, StatusCode::MovedPermanently | StatusCode::Found)
    }

    /// True for 2xx.
    pub fn is_success(self) -> bool {
        matches!(self, StatusCode::Ok)
    }

    /// True for 5xx — the retryable server-side failures.
    pub fn is_server_error(self) -> bool {
        matches!(self, StatusCode::InternalServerError)
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u16())
    }
}

/// A small case-insensitive header map (order-preserving; last set wins on
/// lookup of duplicates is avoided by `set` replacing in place).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Headers(Vec<(String, String)>);

impl Headers {
    /// An empty header map.
    pub fn new() -> Headers {
        Headers(Vec::new())
    }

    /// Set a header, replacing any existing value with the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        for (n, v) in &mut self.0 {
            if n.eq_ignore_ascii_case(name) {
                *v = value;
                return;
            }
        }
        self.0.push((name.to_owned(), value));
    }

    /// Look up a header case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// True if the header is present.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no headers are set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Name of the request header carrying topics on fetch-type calls.
pub const SEC_BROWSING_TOPICS: &str = "Sec-Browsing-Topics";
/// Name of the response header asking the browser to record observation.
pub const OBSERVE_BROWSING_TOPICS: &str = "Observe-Browsing-Topics";
/// Location header for redirects.
pub const LOCATION: &str = "Location";
/// Content-Type header.
pub const CONTENT_TYPE: &str = "Content-Type";

/// A parsed `Sec-Browsing-Topics` header value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicsHeader {
    /// The topic ids carried by the header.
    pub topics: Vec<u16>,
    /// The version token after `;v=` (e.g. `chrome.1:2`).
    pub version: String,
}

/// Parse a `Sec-Browsing-Topics` request-header value of the form
/// `(1 2 3);v=chrome.1:2`. An empty topic list `();v=…` is valid (the
/// header is sent even when the user has no topics). Returns `None` for
/// anything malformed.
///
/// ```
/// use topics_net::http::parse_topics_header;
///
/// let h = parse_topics_header("(186 265);v=chrome.1:2").unwrap();
/// assert_eq!(h.topics, vec![186, 265]);
/// assert_eq!(h.version, "chrome.1:2");
/// assert!(parse_topics_header("not a header").is_none());
/// ```
pub fn parse_topics_header(value: &str) -> Option<TopicsHeader> {
    let value = value.trim();
    let rest = value.strip_prefix('(')?;
    let close = rest.find(')')?;
    let (ids, tail) = rest.split_at(close);
    let mut topics = Vec::new();
    for token in ids.split_whitespace() {
        topics.push(token.parse::<u16>().ok()?);
    }
    let version = tail
        .strip_prefix(')')?
        .trim_start_matches(';')
        .strip_prefix("v=")?
        .to_owned();
    if version.is_empty() {
        return None;
    }
    Some(TopicsHeader { topics, version })
}

/// What kind of resource an exchange is for — determines how the browser
/// treats the response and lets the crawler label records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// A top-level or iframe HTML document.
    Document,
    /// An external script (`<script src=…>`).
    Script,
    /// A programmatic fetch / XHR issued by a script.
    Fetch,
    /// An image / pixel.
    Image,
    /// A stylesheet or other passive subresource.
    Style,
    /// A `/.well-known/…` probe issued by the crawler itself.
    WellKnown,
}

/// Where the simulated client connects from. Real sites geo-target
/// their consent UX (GDPR banners are often served only to European
/// visitors), which is why the paper stresses it crawled "from a single
/// location in Europe" (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Vantage {
    /// A European client — the paper's vantage; GDPR applies.
    #[default]
    Europe,
    /// A United-States client — GDPR banners may be withheld.
    UnitedStates,
}

impl Vantage {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Vantage::Europe => "EU",
            Vantage::UnitedStates => "US",
        }
    }
}

/// A request on the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Method.
    pub method: Method,
    /// Target URL.
    pub url: Url,
    /// Request headers.
    pub headers: Headers,
    /// Kind of resource being requested.
    pub kind: ResourceKind,
    /// Request body (POST payloads such as topics sent to ad servers).
    pub body: Option<String>,
    /// Where the client connects from (servers geo-target consent UX).
    #[serde(default)]
    pub vantage: Vantage,
}

impl HttpRequest {
    /// A plain GET request for a resource of the given kind.
    pub fn get(url: Url, kind: ResourceKind) -> HttpRequest {
        HttpRequest {
            method: Method::Get,
            url,
            headers: Headers::new(),
            kind,
            body: None,
            vantage: Vantage::default(),
        }
    }

    /// A POST request with a body.
    pub fn post(url: Url, kind: ResourceKind, body: String) -> HttpRequest {
        HttpRequest {
            method: Method::Post,
            url,
            headers: Headers::new(),
            kind,
            body: Some(body),
            vantage: Vantage::default(),
        }
    }

    /// True when this request carries the `Sec-Browsing-Topics` header —
    /// i.e. it is a fetch-type Topics API call.
    pub fn has_topics_header(&self) -> bool {
        self.headers.contains(SEC_BROWSING_TOPICS)
    }
}

/// A response from the simulated network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HttpResponse {
    /// Status code.
    pub status: StatusCode,
    /// Response headers.
    pub headers: Headers,
    /// Response body. For documents this is the page HTML; for scripts the
    /// scriptlet source; for well-known probes the attestation JSON.
    pub body: String,
}

impl HttpResponse {
    /// A 200 response with a content type and body.
    pub fn ok(content_type: &str, body: impl Into<String>) -> HttpResponse {
        let mut headers = Headers::new();
        headers.set(CONTENT_TYPE, content_type);
        HttpResponse {
            status: StatusCode::Ok,
            headers,
            body: body.into(),
        }
    }

    /// A 302 redirect to `location`.
    pub fn redirect(location: &Url) -> HttpResponse {
        let mut headers = Headers::new();
        headers.set(LOCATION, location.to_string());
        HttpResponse {
            status: StatusCode::Found,
            headers,
            body: String::new(),
        }
    }

    /// A 500 response (used by the fault layer and pathological sites).
    pub fn server_error(body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status: StatusCode::InternalServerError,
            headers: Headers::new(),
            body: body.into(),
        }
    }

    /// A 404 response.
    pub fn not_found() -> HttpResponse {
        HttpResponse {
            status: StatusCode::NotFound,
            headers: Headers::new(),
            body: String::new(),
        }
    }

    /// The redirect target, if this is a redirect with a parsable
    /// `Location`.
    pub fn location(&self) -> Option<&str> {
        if self.status.is_redirect() {
            self.headers.get(LOCATION)
        } else {
            None
        }
    }

    /// The `Content-Type` header, if present.
    pub fn content_type(&self) -> Option<&str> {
        self.headers.get(CONTENT_TYPE)
    }

    /// True when the response asks the browser to mark the caller as
    /// observing topics (`Observe-Browsing-Topics: ?1`).
    pub fn observes_topics(&self) -> bool {
        self.headers
            .get(OBSERVE_BROWSING_TOPICS)
            .is_some_and(|v| v.trim() == "?1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn headers_are_case_insensitive_and_replacing() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        h.set("CONTENT-TYPE", "text/plain");
        assert_eq!(h.get("Content-Type"), Some("text/plain"));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn topics_header_detection() {
        let mut req = HttpRequest::get(url("https://ad.example.com/bid"), ResourceKind::Fetch);
        assert!(!req.has_topics_header());
        req.headers.set(SEC_BROWSING_TOPICS, "(123);v=chrome.1");
        assert!(req.has_topics_header());
    }

    #[test]
    fn redirect_roundtrip() {
        let target = Url::https(Domain::parse("b.com").unwrap(), "/x");
        let resp = HttpResponse::redirect(&target);
        assert!(resp.status.is_redirect());
        assert_eq!(resp.location(), Some("https://b.com/x"));
        assert_eq!(HttpResponse::ok("text/html", "").location(), None);
    }

    #[test]
    fn observe_header_parsing() {
        let mut resp = HttpResponse::ok("text/html", "");
        assert!(!resp.observes_topics());
        resp.headers.set(OBSERVE_BROWSING_TOPICS, "?1");
        assert!(resp.observes_topics());
        resp.headers.set(OBSERVE_BROWSING_TOPICS, "?0");
        assert!(!resp.observes_topics());
    }

    #[test]
    fn topics_header_parsing() {
        let h = parse_topics_header("(123 45 7);v=chrome.1:2").unwrap();
        assert_eq!(h.topics, vec![123, 45, 7]);
        assert_eq!(h.version, "chrome.1:2");
        // Empty topic list is a valid header.
        let empty = parse_topics_header("();v=chrome.1:2").unwrap();
        assert!(empty.topics.is_empty());
        // Malformed variants.
        for bad in [
            "",
            "123;v=chrome.1",
            "(123;v=chrome.1",
            "(abc);v=chrome.1",
            "(1 2)",
            "(1 2);v=",
            "(70000);v=chrome.1", // out of u16 range
        ] {
            assert!(parse_topics_header(bad).is_none(), "{bad:?}");
        }
        // Whitespace tolerance.
        assert!(parse_topics_header("  (5);v=chrome.1:2  ").is_some());
    }

    #[test]
    fn status_codes() {
        assert_eq!(StatusCode::Ok.as_u16(), 200);
        assert!(StatusCode::Ok.is_success());
        assert!(!StatusCode::NotFound.is_success());
        assert!(StatusCode::MovedPermanently.is_redirect());
        assert_eq!(StatusCode::InternalServerError.to_string(), "500");
        assert!(StatusCode::InternalServerError.is_server_error());
        assert!(!StatusCode::NotFound.is_server_error());
        let resp = HttpResponse::server_error("boom");
        assert!(resp.status.is_server_error());
        assert_eq!(resp.body, "boom");
    }
}
