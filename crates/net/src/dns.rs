//! Deterministic DNS with a realistic failure model.
//!
//! The paper visits the Tranco top-50,000 and succeeds on 43,405 sites; the
//! remainder "fail due to domain name resolution or connection-related
//! errors". [`SimDns`] reproduces this: each registrable domain either
//! always resolves or always fails (for a given seed), with the failure
//! kind drawn from a configurable mix. The per-domain decision is a pure
//! function of `(seed, registrable domain)` so repeated lookups — and
//! repeated campaigns — agree.

use crate::domain::Domain;
use crate::psl::registrable_domain;
use crate::seed;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a name lookup failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsError {
    /// NXDOMAIN: the name does not exist.
    NameError {
        /// The failed name.
        domain: String,
    },
    /// The resolver timed out.
    Timeout {
        /// The failed name.
        domain: String,
    },
    /// The name resolved but the host refused the connection. (Grouped
    /// here because the paper lumps resolution and connection errors.)
    ConnectionRefused {
        /// The failed name.
        domain: String,
    },
}

impl DnsError {
    /// The domain the failure applies to.
    pub fn domain(&self) -> &str {
        match self {
            DnsError::NameError { domain }
            | DnsError::Timeout { domain }
            | DnsError::ConnectionRefused { domain } => domain,
        }
    }

    /// True for kinds that would be worth retrying against a real
    /// resolver. Note that both [`SimDns`] and the fault layer decide
    /// *per registrable domain*, so within one simulated campaign even
    /// these kinds are sticky; the retry layer therefore treats DNS
    /// failures as final and this classification is informational.
    pub fn is_transient(&self) -> bool {
        matches!(self, DnsError::Timeout { .. })
    }
}

impl fmt::Display for DnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnsError::NameError { domain } => write!(f, "NXDOMAIN for {domain}"),
            DnsError::Timeout { domain } => write!(f, "lookup timeout for {domain}"),
            DnsError::ConnectionRefused { domain } => {
                write!(f, "connection refused by {domain}")
            }
        }
    }
}

impl std::error::Error for DnsError {}

/// Failure model for [`SimDns`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnsPolicy {
    /// Probability that a *first-party* (ranked) site fails entirely. The
    /// paper's rate is (50,000 − 43,405) / 50,000 ≈ 13.2%.
    pub first_party_failure_rate: f64,
    /// Probability that a third-party host fails. Third parties on
    /// successfully visited pages are mostly reachable; a small rate
    /// models dead includes.
    pub third_party_failure_rate: f64,
    /// Of the failures, the fraction that are NXDOMAIN (the rest split
    /// between timeouts and refused connections).
    pub name_error_share: f64,
    /// Of the non-NXDOMAIN failures, the fraction that are timeouts.
    pub timeout_share: f64,
}

impl DnsPolicy {
    /// The paper-calibrated policy: ≈13.2% of ranked sites unreachable.
    pub fn paper() -> DnsPolicy {
        DnsPolicy {
            first_party_failure_rate: (50_000.0 - 43_405.0) / 50_000.0,
            third_party_failure_rate: 0.01,
            name_error_share: 0.55,
            timeout_share: 0.5,
        }
    }

    /// Everything resolves — useful in unit tests.
    pub fn all_healthy() -> DnsPolicy {
        DnsPolicy {
            first_party_failure_rate: 0.0,
            third_party_failure_rate: 0.0,
            name_error_share: 0.55,
            timeout_share: 0.5,
        }
    }
}

impl Default for DnsPolicy {
    fn default() -> Self {
        DnsPolicy::paper()
    }
}

/// A deterministic simulated resolver.
///
/// Whether a domain is "first party" (a ranked site, subject to the higher
/// failure rate) is decided by the caller via [`SimDns::resolve_ranked`] vs
/// [`SimDns::resolve_third_party`]; DNS itself is rank-agnostic.
#[derive(Debug, Clone)]
pub struct SimDns {
    policy: DnsPolicy,
    seed: u64,
}

impl SimDns {
    /// Build a resolver from a policy and campaign seed.
    pub fn new(policy: DnsPolicy, campaign_seed: u64) -> SimDns {
        SimDns {
            policy,
            seed: seed::derive(campaign_seed, "dns"),
        }
    }

    /// Resolve a ranked (first-party) site.
    pub fn resolve_ranked(&self, domain: &Domain) -> Result<(), DnsError> {
        self.resolve_with_rate(domain, self.policy.first_party_failure_rate)
    }

    /// Resolve a third-party host.
    pub fn resolve_third_party(&self, domain: &Domain) -> Result<(), DnsError> {
        self.resolve_with_rate(domain, self.policy.third_party_failure_rate)
    }

    fn resolve_with_rate(&self, domain: &Domain, rate: f64) -> Result<(), DnsError> {
        // Decide at registrable-domain granularity: if example.com is dead,
        // www.example.com is dead too.
        let reg = registrable_domain(domain);
        let s = seed::derive(self.seed, reg.as_str());
        if seed::unit_f64(s) >= rate {
            return Ok(());
        }
        let name = reg.as_str().to_owned();
        let kind = seed::unit_f64(seed::derive(s, "kind"));
        if kind < self.policy.name_error_share {
            Err(DnsError::NameError { domain: name })
        } else {
            let t = seed::unit_f64(seed::derive(s, "timeout"));
            if t < self.policy.timeout_share {
                Err(DnsError::Timeout { domain: name })
            } else {
                Err(DnsError::ConnectionRefused { domain: name })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn healthy_policy_never_fails() {
        let dns = SimDns::new(DnsPolicy::all_healthy(), 1);
        for i in 0..1000 {
            assert!(dns.resolve_ranked(&d(&format!("site{i}.com"))).is_ok());
        }
    }

    #[test]
    fn failure_rate_is_close_to_policy() {
        let dns = SimDns::new(DnsPolicy::paper(), 7);
        let n = 20_000;
        let fails = (0..n)
            .filter(|i| dns.resolve_ranked(&d(&format!("site{i}.com"))).is_err())
            .count();
        let rate = fails as f64 / n as f64;
        let expect = DnsPolicy::paper().first_party_failure_rate;
        assert!(
            (rate - expect).abs() < 0.01,
            "rate {rate} vs expected {expect}"
        );
    }

    #[test]
    fn decision_is_stable_and_covers_subdomains() {
        let dns = SimDns::new(DnsPolicy::paper(), 9);
        for i in 0..200 {
            let base = d(&format!("host{i}.org"));
            let www = d(&format!("www.host{i}.org"));
            assert_eq!(
                dns.resolve_ranked(&base).is_ok(),
                dns.resolve_ranked(&www).is_ok(),
                "subdomain decision must match registrable domain"
            );
            assert_eq!(dns.resolve_ranked(&base), dns.resolve_ranked(&base));
        }
    }

    #[test]
    fn failure_kinds_are_mixed() {
        let dns = SimDns::new(DnsPolicy::paper(), 3);
        let mut nx = 0;
        let mut to = 0;
        let mut cr = 0;
        for i in 0..50_000 {
            match dns.resolve_ranked(&d(&format!("k{i}.net"))) {
                Err(DnsError::NameError { .. }) => nx += 1,
                Err(DnsError::Timeout { .. }) => to += 1,
                Err(DnsError::ConnectionRefused { .. }) => cr += 1,
                Ok(()) => {}
            }
        }
        assert!(nx > 0 && to > 0 && cr > 0, "nx={nx} to={to} cr={cr}");
        assert!(
            nx > to && nx > cr,
            "NXDOMAIN should dominate: {nx}/{to}/{cr}"
        );
    }

    #[test]
    fn transience_is_informational_only() {
        assert!(DnsError::Timeout { domain: "x".into() }.is_transient());
        assert!(!DnsError::NameError { domain: "x".into() }.is_transient());
        assert!(!DnsError::ConnectionRefused { domain: "x".into() }.is_transient());
    }

    #[test]
    fn third_party_rate_is_lower() {
        let dns = SimDns::new(DnsPolicy::paper(), 11);
        let n = 20_000;
        let fails = (0..n)
            .filter(|i| dns.resolve_third_party(&d(&format!("tp{i}.io"))).is_err())
            .count();
        assert!((fails as f64 / n as f64) < 0.02);
    }
}
