//! Geographic classification of websites by top-level domain.
//!
//! Figure 6 of the paper breaks questionable Topics API calls down by the
//! visited website's TLD as a coarse country indicator: `.com`, Japan
//! (`.jp`), Russia (`.ru`), the European Union (30 TLDs where the GDPR is
//! in force), and everything else.

use crate::domain::Domain;
use crate::psl::public_suffix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The TLDs the paper counts as European Union (GDPR in force). The paper
/// says "30 TLDs for EU countries": the 27 member states plus the EEA
/// members (Iceland, Liechtenstein, Norway) where the GDPR also applies,
/// plus the `.eu` TLD itself.
pub const EU_TLDS: &[&str] = &[
    "at", "be", "bg", "hr", "cy", "cz", "dk", "ee", "fi", "fr", "de", "gr", "hu", "ie", "it", "lv",
    "lt", "lu", "mt", "nl", "pl", "pt", "ro", "sk", "si", "es", "se", // 27 member states
    "is", "li", "no", // EEA
    "eu",
];

/// The paper's Figure 6 region buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// Generic `.com` websites.
    Com,
    /// Japanese websites (`.jp` and `*.jp` suffixes).
    Japan,
    /// Russian websites (`.ru` and `*.ru` suffixes).
    Russia,
    /// EU/EEA country-code TLDs plus `.eu`.
    EuropeanUnion,
    /// Every other TLD (`.net`, `.org`, `.io`, non-EU ccTLDs, …).
    Other,
}

impl Region {
    /// All buckets in the order Figure 6 presents them.
    pub const ALL: [Region; 5] = [
        Region::Com,
        Region::Japan,
        Region::Russia,
        Region::EuropeanUnion,
        Region::Other,
    ];

    /// Classify a website domain into its Figure 6 bucket.
    pub fn of(domain: &Domain) -> Region {
        let suffix = public_suffix(domain);
        let cc = suffix.rsplit('.').next().unwrap_or(suffix);
        match cc {
            "com" => Region::Com,
            "jp" => Region::Japan,
            "ru" => Region::Russia,
            _ if EU_TLDS.contains(&cc) => Region::EuropeanUnion,
            _ => Region::Other,
        }
    }

    /// The label used in the paper's Figure 6 x-axis.
    pub fn label(self) -> &'static str {
        match self {
            Region::Com => ".com",
            Region::Japan => ".jp",
            Region::Russia => ".ru",
            Region::EuropeanUnion => "EU",
            Region::Other => "Other",
        }
    }

    /// True when the GDPR applies to websites in this bucket by TLD. Note
    /// the paper's footnote: the GDPR actually protects Europeans on *any*
    /// site; this flag only captures the coarse TLD heuristic.
    pub fn gdpr_by_tld(self) -> bool {
        self == Region::EuropeanUnion
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn classification() {
        assert_eq!(Region::of(&d("example.com")), Region::Com);
        assert_eq!(Region::of(&d("example.co.jp")), Region::Japan);
        assert_eq!(Region::of(&d("example.jp")), Region::Japan);
        assert_eq!(Region::of(&d("example.ru")), Region::Russia);
        assert_eq!(Region::of(&d("example.fr")), Region::EuropeanUnion);
        assert_eq!(Region::of(&d("example.de")), Region::EuropeanUnion);
        assert_eq!(Region::of(&d("example.eu")), Region::EuropeanUnion);
        assert_eq!(Region::of(&d("example.org")), Region::Other);
        assert_eq!(Region::of(&d("example.co.uk")), Region::Other); // post-Brexit
        assert_eq!(Region::of(&d("example.io")), Region::Other);
    }

    #[test]
    fn subdomains_do_not_change_region() {
        assert_eq!(Region::of(&d("a.b.example.ru")), Region::Russia);
        assert_eq!(Region::of(&d("shop.example.com.br")), Region::Other);
    }

    #[test]
    fn eu_list_has_30_cctlds_plus_eu() {
        assert_eq!(EU_TLDS.len(), 31);
        assert!(EU_TLDS.contains(&"eu"));
    }

    #[test]
    fn gdpr_flag() {
        assert!(Region::EuropeanUnion.gdpr_by_tld());
        assert!(!Region::Com.gdpr_by_tld());
    }
}
