//! # topics-net — simulated network substrate
//!
//! This crate provides the networking primitives on which the rest of the
//! `topics-lab` workspace is built. The original paper ("A First View of
//! Topics API Usage in the Wild", CoNEXT '24) crawled the live web; this
//! reproduction replaces the live web with a deterministic simulation, and
//! this crate is the boundary between "the world" (implemented by
//! `topics-webgen`) and "the clients" (the browser simulator and the
//! crawler).
//!
//! It contains:
//!
//! * [`domain`] / [`url`] — strict hostname and URL types used everywhere.
//! * [`psl`] — an embedded public-suffix subset and eTLD+1 (registrable
//!   domain) computation, the unit at which the Topics API and the paper's
//!   analysis operate.
//! * [`region`] — the paper's Figure 6 TLD→region mapping
//!   (`.com`, `.jp`, `.ru`, EU, other).
//! * [`dns`] — a deterministic DNS resolver with a configurable failure
//!   model (the paper successfully visits 43,405 of 50,000 sites; the rest
//!   fail with resolution/connection errors).
//! * [`http`] — request/response types, headers, status codes and the
//!   `Sec-Browsing-Topics` request header used by fetch-type Topics calls.
//! * [`service`] — the [`service::NetworkService`] trait a simulated web
//!   must implement, plus redirect-following helpers and the bounded
//!   retry/backoff layer ([`service::RetryPolicy`]).
//! * [`fault`] — seeded, deterministic fault injection
//!   ([`fault::FaultPlan`] / [`fault::FaultyService`]): DNS failures,
//!   connection resets, HTTP 5xx, slow responses, truncated attestation
//!   JSON, and corrupt-allow-list scenarios at tunable rates.
//! * [`wellknown`] — the `/.well-known/privacy-sandbox-attestations.json`
//!   file format (parsing, validation, issue dates).
//! * [`latency`] — a deterministic per-host/per-kind latency model, so
//!   page-load durations (and the paper's ≈one-day crawl span) are
//!   emergent quantities.
//! * [`metrics`] — observability hooks ([`metrics::NetMetrics`]): request
//!   counts per resource kind, exchange-latency histogram, DNS failures.
//! * [`clock`] — simulated time ([`clock::Timestamp`], [`clock::SimClock`]);
//!   no wall clock is used anywhere in the workspace.
//! * [`seed`] — seed-derivation utilities (splitmix64 / FNV-1a) so that all
//!   randomness in the workspace flows deterministically from one campaign
//!   seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod dns;
pub mod domain;
pub mod error;
pub mod fault;
pub mod http;
pub mod latency;
pub mod metrics;
pub mod psl;
pub mod region;
pub mod seed;
pub mod service;
pub mod url;
pub mod wellknown;

pub use clock::{SimClock, Timestamp};
pub use dns::{DnsError, DnsPolicy, SimDns};
pub use domain::Domain;
pub use error::NetError;
pub use fault::{FaultPlan, FaultProfile, FaultyService};
pub use http::{HttpRequest, HttpResponse, Method, StatusCode};
pub use metrics::NetMetrics;
pub use region::Region;
pub use service::NetworkService;
pub use url::Url;
