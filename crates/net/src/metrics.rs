//! Network-side observability: request counts per resource kind, a
//! latency histogram over simulated exchange times, and DNS failures.
//!
//! [`NetMetrics`] is a bundle of pre-resolved handles into a
//! [`MetricsRegistry`], so recording an exchange on the page-load hot
//! path is a couple of relaxed atomic increments — no lock, no lookup.

use crate::http::ResourceKind;
use topics_obs::{Counter, Histogram, MetricsRegistry};

/// Label value used for a resource kind in `net_requests_total{kind=…}`.
pub fn kind_label(kind: ResourceKind) -> &'static str {
    match kind {
        ResourceKind::Document => "document",
        ResourceKind::Script => "script",
        ResourceKind::Fetch => "fetch",
        ResourceKind::Image => "image",
        ResourceKind::Style => "style",
        ResourceKind::WellKnown => "wellknown",
    }
}

const KINDS: [ResourceKind; 6] = [
    ResourceKind::Document,
    ResourceKind::Script,
    ResourceKind::Fetch,
    ResourceKind::Image,
    ResourceKind::Style,
    ResourceKind::WellKnown,
];

fn kind_index(kind: ResourceKind) -> usize {
    KINDS.iter().position(|&k| k == kind).expect("known kind")
}

/// Pre-resolved handles for the network exchange hot path.
///
/// Series recorded:
/// * `net_requests_total{kind="document"|…}` — one per exchange;
/// * `net_request_latency_ms` — histogram of simulated exchange
///   latencies (deterministic: they come from the seeded latency model);
/// * `net_dns_failures_total` — failed resolutions;
/// * `net_retries_total` — retry attempts issued by the backoff layer;
/// * `net_retries_exhausted_total` — exchanges that still failed after
///   the retry budget (always ≤ `net_retries_total` when retries are
///   enabled, which the chaos suite asserts).
#[derive(Debug, Clone)]
pub struct NetMetrics {
    by_kind: [Counter; 6],
    latency: Histogram,
    dns_failures: Counter,
    retries: Counter,
    retries_exhausted: Counter,
}

impl NetMetrics {
    /// Resolve the handles in `registry`.
    pub fn new(registry: &MetricsRegistry) -> NetMetrics {
        let by_kind =
            KINDS.map(|k| registry.labeled_counter("net_requests_total", "kind", kind_label(k)));
        NetMetrics {
            by_kind,
            latency: registry.histogram("net_request_latency_ms"),
            dns_failures: registry.counter("net_dns_failures_total"),
            retries: registry.counter("net_retries_total"),
            retries_exhausted: registry.counter("net_retries_exhausted_total"),
        }
    }

    /// Record one network exchange of `kind` taking `latency_ms` of
    /// simulated time.
    pub fn record_exchange(&self, kind: ResourceKind, latency_ms: u64) {
        self.by_kind[kind_index(kind)].inc();
        self.latency.observe(latency_ms);
    }

    /// Record a failed DNS resolution.
    pub fn record_dns_failure(&self) {
        self.dns_failures.inc();
    }

    /// Record one retry attempt issued after a transient failure.
    pub fn record_retry(&self) {
        self.retries.inc();
    }

    /// Record an exchange that still failed after the retry budget.
    pub fn record_retries_exhausted(&self) {
        self.retries_exhausted.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchanges_count_per_kind_and_feed_the_histogram() {
        let registry = MetricsRegistry::new();
        let m = NetMetrics::new(&registry);
        m.record_exchange(ResourceKind::Document, 120);
        m.record_exchange(ResourceKind::Image, 30);
        m.record_exchange(ResourceKind::Image, 25);
        m.record_dns_failure();
        m.record_retry();
        m.record_retry();
        m.record_retries_exhausted();
        let s = registry.snapshot();
        assert_eq!(s.counter("net_requests_total{kind=\"document\"}"), 1);
        assert_eq!(s.counter("net_requests_total{kind=\"image\"}"), 2);
        assert_eq!(s.counter_sum("net_requests_total"), 3);
        assert_eq!(s.histograms["net_request_latency_ms"].count, 3);
        assert_eq!(s.counter("net_dns_failures_total"), 1);
        assert_eq!(s.counter("net_retries_total"), 2);
        assert_eq!(s.counter("net_retries_exhausted_total"), 1);
    }

    #[test]
    fn every_kind_has_a_distinct_label() {
        let mut labels: Vec<&str> = KINDS.iter().map(|&k| kind_label(k)).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), KINDS.len());
    }
}
