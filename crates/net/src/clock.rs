//! Simulated time.
//!
//! The paper's crawl starts on 2024-03-30 and lasts about one day; Topics
//! epochs are one week. Nothing in the workspace reads the wall clock:
//! every component takes a [`Timestamp`] produced by a [`SimClock`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;
/// Milliseconds in one week (one Topics epoch).
pub const MILLIS_PER_WEEK: u64 = 7 * MILLIS_PER_DAY;

/// A point in simulated time, in milliseconds since the simulation origin.
///
/// The origin is defined to be 2023-06-01T00:00:00Z — the month Privacy
/// Sandbox enrolments began (the first attestation is dated June 16th,
/// 2023). The paper's crawl starts on 2024-03-30, which is
/// [`CRAWL_START_DAY`] days after the origin. [`Timestamp::to_date`]
/// converts accordingly for human-readable reports.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

/// Days from the simulation origin (2023-06-01) to the paper's crawl
/// start (2024-03-30).
pub const CRAWL_START_DAY: u64 = 303;

impl Timestamp {
    /// The simulation origin (2023-06-01T00:00:00Z).
    pub const ORIGIN: Timestamp = Timestamp(0);

    /// The paper's crawl start, 2024-03-30T00:00:00Z.
    pub const CRAWL_START: Timestamp = Timestamp(CRAWL_START_DAY * MILLIS_PER_DAY);

    /// Build a timestamp a number of whole days after the origin.
    pub fn from_days(days: u64) -> Self {
        Timestamp(days * MILLIS_PER_DAY)
    }

    /// Build a timestamp a number of whole weeks after the origin.
    pub fn from_weeks(weeks: u64) -> Self {
        Timestamp(weeks * MILLIS_PER_WEEK)
    }

    /// Milliseconds since the origin.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// The Topics epoch index this timestamp falls in (one week per epoch).
    pub fn epoch(self) -> u64 {
        self.0 / MILLIS_PER_WEEK
    }

    /// Advance by `ms` milliseconds.
    #[must_use]
    pub fn plus_millis(self, ms: u64) -> Self {
        Timestamp(self.0 + ms)
    }

    /// Advance by whole days.
    #[must_use]
    pub fn plus_days(self, days: u64) -> Self {
        Timestamp(self.0 + days * MILLIS_PER_DAY)
    }

    /// Saturating difference in milliseconds (`self - earlier`).
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Convert to a `(year, month, day)` civil date, interpreting the
    /// origin as 2024-03-30 (UTC). Uses the standard days-from-civil
    /// algorithm; valid across month/year boundaries and leap years.
    pub fn to_date(self) -> (i32, u32, u32) {
        // Days since 1970-01-01 for 2023-06-01 is 19509.
        const ORIGIN_DAYS_SINCE_UNIX: i64 = 19_509;
        let days = ORIGIN_DAYS_SINCE_UNIX + (self.0 / MILLIS_PER_DAY) as i64;
        civil_from_days(days)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_date();
        let rem = self.0 % MILLIS_PER_DAY;
        let h = rem / MILLIS_PER_HOUR;
        let min = (rem % MILLIS_PER_HOUR) / MILLIS_PER_MIN;
        let s = (rem % MILLIS_PER_MIN) / MILLIS_PER_SEC;
        write!(f, "{y:04}-{m:02}-{d:02}T{h:02}:{min:02}:{s:02}Z")
    }
}

/// Civil date from days since the Unix epoch (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// A monotonically advancing simulated clock.
///
/// The crawler advances the clock by a small amount per network exchange so
/// recorded timestamps are ordered and plausible; repeated-visit experiments
/// advance it by hours or days between rounds.
#[derive(Debug, Clone)]
pub struct SimClock {
    now: Timestamp,
}

impl SimClock {
    /// A clock starting at the simulation origin.
    pub fn new() -> Self {
        SimClock {
            now: Timestamp::ORIGIN,
        }
    }

    /// A clock starting at an arbitrary timestamp.
    pub fn starting_at(at: Timestamp) -> Self {
        SimClock { now: at }
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advance the clock by `ms` milliseconds and return the new time.
    pub fn advance_millis(&mut self, ms: u64) -> Timestamp {
        self.now = self.now.plus_millis(ms);
        self.now
    }

    /// Advance the clock by whole days and return the new time.
    pub fn advance_days(&mut self, days: u64) -> Timestamp {
        self.advance_millis(days * MILLIS_PER_DAY)
    }

    /// Jump to a later timestamp. Panics if `to` is in the past — the clock
    /// is monotone by construction.
    pub fn jump_to(&mut self, to: Timestamp) {
        assert!(
            to >= self.now,
            "SimClock may only move forward ({} -> {})",
            self.now,
            to
        );
        self.now = to;
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_june_2023_and_crawl_start_is_march_2024() {
        assert_eq!(Timestamp::ORIGIN.to_string(), "2023-06-01T00:00:00Z");
        assert_eq!(Timestamp::CRAWL_START.to_string(), "2024-03-30T00:00:00Z");
    }

    #[test]
    fn day_arithmetic_crosses_month() {
        // 2023-06-01 + 30 days = 2023-07-01
        let t = Timestamp::from_days(30);
        assert_eq!(t.to_date(), (2023, 7, 1));
        // The first attestation date: day 15 = 2023-06-16.
        assert_eq!(Timestamp::from_days(15).to_date(), (2023, 6, 16));
        // The October 2024 schema update: day 504 = 2024-10-17.
        assert_eq!(Timestamp::from_days(504).to_date(), (2024, 10, 17));
    }

    #[test]
    fn week_is_one_epoch() {
        assert_eq!(Timestamp::from_weeks(3).epoch(), 3);
        assert_eq!(Timestamp::from_weeks(3).plus_millis(1).epoch(), 3);
        assert_eq!(Timestamp::from_days(6).epoch(), 0);
        assert_eq!(Timestamp::from_days(7).epoch(), 1);
    }

    #[test]
    fn display_includes_time_of_day() {
        let t = Timestamp(MILLIS_PER_HOUR * 5 + MILLIS_PER_MIN * 4 + MILLIS_PER_SEC * 3);
        assert_eq!(t.to_string(), "2023-06-01T05:04:03Z");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        let a = c.advance_millis(10);
        let b = c.advance_millis(10);
        assert!(b > a);
        assert_eq!(c.now().millis(), 20);
    }

    #[test]
    #[should_panic(expected = "only move forward")]
    fn clock_rejects_backward_jump() {
        let mut c = SimClock::starting_at(Timestamp(100));
        c.jump_to(Timestamp(50));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Timestamp(5).since(Timestamp(10)), 0);
        assert_eq!(Timestamp(10).since(Timestamp(5)), 5);
    }

    #[test]
    fn leap_year_handling() {
        // 2024 is a leap year: 2023-06-01 + 366 days lands on 2024-06-01
        // (the span contains 2024-02-29).
        let t = Timestamp::from_days(366);
        assert_eq!(t.to_date(), (2024, 6, 1));
    }
}
