//! Deterministic network-latency model.
//!
//! The paper's crawl of 50,000 sites "ends after about one day" — page
//! load time is a real resource the crawler spends. This model assigns
//! every exchange a deterministic latency from the server's registrable
//! domain (a per-host base RTT in a realistic band) plus a
//! per-resource-kind service time, so simulated page-load durations are
//! stable, plausible and reproducible.

use crate::clock::Timestamp;
use crate::domain::Domain;
use crate::http::ResourceKind;
use crate::psl::registrable_domain;
use crate::seed;

/// Latency-model parameters (milliseconds).
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Minimum per-host round-trip time.
    pub min_rtt_ms: u64,
    /// Span above the minimum over which per-host RTTs spread.
    pub rtt_span_ms: u64,
    /// Extra service time for document renders.
    pub document_ms: u64,
    /// Extra service time for scripts/fetches.
    pub script_ms: u64,
    /// Extra service time for passive objects (images, styles).
    pub passive_ms: u64,
    seed: u64,
}

impl LatencyModel {
    /// A model with broadband-like defaults: RTTs of 20–220 ms plus
    /// small service times.
    pub fn new(campaign_seed: u64) -> LatencyModel {
        LatencyModel {
            min_rtt_ms: 20,
            rtt_span_ms: 200,
            document_ms: 80,
            script_ms: 15,
            passive_ms: 5,
            seed: seed::derive(campaign_seed, "latency"),
        }
    }

    /// The stable base RTT to a host (keyed on its registrable domain —
    /// one server farm per party).
    pub fn rtt_ms(&self, host: &Domain) -> u64 {
        let reg = registrable_domain(host);
        let u = seed::unit_f64(seed::derive(self.seed, reg.as_str()));
        self.min_rtt_ms + (u * self.rtt_span_ms as f64) as u64
    }

    /// Total latency of one exchange.
    pub fn exchange_ms(&self, host: &Domain, kind: ResourceKind) -> u64 {
        let service = match kind {
            ResourceKind::Document => self.document_ms,
            ResourceKind::Script | ResourceKind::Fetch => self.script_ms,
            ResourceKind::Image | ResourceKind::Style => self.passive_ms,
            ResourceKind::WellKnown => self.script_ms,
        };
        self.rtt_ms(host) + service
    }

    /// Advance a timestamp by one exchange's latency.
    #[must_use]
    pub fn after_exchange(&self, now: Timestamp, host: &Domain, kind: ResourceKind) -> Timestamp {
        now.plus_millis(self.exchange_ms(host, kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn rtt_is_stable_and_in_band() {
        let m = LatencyModel::new(7);
        for i in 0..500 {
            let host = d(&format!("host{i}.com"));
            let rtt = m.rtt_ms(&host);
            assert_eq!(rtt, m.rtt_ms(&host), "stable");
            assert!((m.min_rtt_ms..m.min_rtt_ms + m.rtt_span_ms + 1).contains(&rtt));
        }
    }

    #[test]
    fn subdomains_share_the_server_rtt() {
        let m = LatencyModel::new(9);
        assert_eq!(m.rtt_ms(&d("cdn.foo.com")), m.rtt_ms(&d("www.foo.com")));
        assert_ne!(
            m.rtt_ms(&d("one-of-many-hosts.com")),
            m.rtt_ms(&d("another-far-host.net")),
            "different parties usually differ"
        );
    }

    #[test]
    fn documents_cost_more_than_pixels() {
        let m = LatencyModel::new(3);
        let host = d("site.com");
        assert!(
            m.exchange_ms(&host, ResourceKind::Document)
                > m.exchange_ms(&host, ResourceKind::Image)
        );
        assert!(
            m.exchange_ms(&host, ResourceKind::Script) >= m.exchange_ms(&host, ResourceKind::Style)
        );
    }

    #[test]
    fn after_exchange_advances_time() {
        let m = LatencyModel::new(3);
        let t0 = Timestamp(1_000);
        let t1 = m.after_exchange(t0, &d("site.com"), ResourceKind::Document);
        assert!(t1 > t0);
        assert_eq!(
            t1.millis() - t0.millis(),
            m.exchange_ms(&d("site.com"), ResourceKind::Document)
        );
    }

    #[test]
    fn rtt_distribution_is_spread() {
        let m = LatencyModel::new(11);
        let rtts: Vec<u64> = (0..1_000)
            .map(|i| m.rtt_ms(&d(&format!("spread{i}.org"))))
            .collect();
        let min = *rtts.iter().min().unwrap();
        let max = *rtts.iter().max().unwrap();
        assert!(
            max - min > 150,
            "RTTs should use most of the band: {min}..{max}"
        );
    }
}
