//! Error types shared across the network substrate.

use crate::dns::DnsError;
use std::fmt;

/// Any failure while fetching a resource over the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// DNS resolution failed (name error, timeout, …).
    Dns(DnsError),
    /// The TCP/TLS connection failed after resolution.
    ConnectionFailed {
        /// Host we attempted to connect to.
        host: String,
    },
    /// The connection was reset mid-exchange (injected by the fault
    /// layer; transient — a retry may succeed).
    ConnectionReset {
        /// Host whose connection was reset.
        host: String,
    },
    /// The client gave up waiting for a slow response (injected by the
    /// fault layer; transient — a retry may succeed).
    TimedOut {
        /// Requested URL, for diagnostics.
        url: String,
        /// Simulated milliseconds waited before giving up.
        after_ms: u64,
    },
    /// The server has no resource at the requested path.
    NotFound {
        /// Requested URL, for diagnostics.
        url: String,
    },
    /// Too many redirects while following a redirect chain.
    TooManyRedirects {
        /// URL where we gave up.
        url: String,
        /// Redirect hops taken before giving up.
        hops: usize,
    },
    /// A redirect response carried no (or an unparsable) `Location`.
    BadRedirect {
        /// URL that produced the bad redirect.
        url: String,
    },
    /// A URL failed to parse.
    BadUrl {
        /// The offending input.
        input: String,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Dns(e) => write!(f, "dns error: {e}"),
            NetError::ConnectionFailed { host } => write!(f, "connection to {host} failed"),
            NetError::ConnectionReset { host } => {
                write!(f, "connection to {host} reset by peer")
            }
            NetError::TimedOut { url, after_ms } => {
                write!(f, "timed out after {after_ms} ms fetching {url}")
            }
            NetError::NotFound { url } => write!(f, "no resource at {url}"),
            NetError::TooManyRedirects { url, hops } => {
                write!(f, "gave up after {hops} redirects at {url}")
            }
            NetError::BadRedirect { url } => write!(f, "bad redirect from {url}"),
            NetError::BadUrl { input, reason } => write!(f, "bad url {input:?}: {reason}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<DnsError> for NetError {
    fn from(e: DnsError) -> Self {
        NetError::Dns(e)
    }
}

impl NetError {
    /// True for errors that make the whole site visit fail (the paper's
    /// "domain name resolution or connection-related errors" causing
    /// 50,000 − 43,405 sites to be dropped).
    pub fn is_visit_fatal(&self) -> bool {
        matches!(
            self,
            NetError::Dns(_)
                | NetError::ConnectionFailed { .. }
                | NetError::ConnectionReset { .. }
                | NetError::TimedOut { .. }
        )
    }

    /// True for failures a bounded retry may fix: resets and timeouts.
    /// DNS failures are sticky in the simulation (the fault layer decides
    /// per registrable domain), so they are deliberately *not* transient.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NetError::ConnectionReset { .. } | NetError::TimedOut { .. }
        )
    }

    /// A short stable kind label (trace span fields, metrics labels).
    pub fn kind(&self) -> &'static str {
        match self {
            NetError::Dns(_) => "dns",
            NetError::ConnectionFailed { .. } => "connection-failed",
            NetError::ConnectionReset { .. } => "connection-reset",
            NetError::TimedOut { .. } => "timed-out",
            NetError::NotFound { .. } => "not-found",
            NetError::TooManyRedirects { .. } => "too-many-redirects",
            NetError::BadRedirect { .. } => "bad-redirect",
            NetError::BadUrl { .. } => "bad-url",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::NotFound {
            url: "https://a.com/x".into(),
        };
        assert!(e.to_string().contains("a.com/x"));
    }

    #[test]
    fn fatality_classification() {
        assert!(NetError::Dns(DnsError::NameError {
            domain: "x.com".into()
        })
        .is_visit_fatal());
        assert!(NetError::ConnectionFailed { host: "x".into() }.is_visit_fatal());
        assert!(!NetError::NotFound { url: "u".into() }.is_visit_fatal());
        assert!(!NetError::BadRedirect { url: "u".into() }.is_visit_fatal());
    }

    #[test]
    fn transience_classification() {
        let reset = NetError::ConnectionReset { host: "x".into() };
        let timeout = NetError::TimedOut {
            url: "https://x/y".into(),
            after_ms: 10_000,
        };
        assert!(reset.is_transient() && reset.is_visit_fatal());
        assert!(timeout.is_transient() && timeout.is_visit_fatal());
        assert!(!NetError::Dns(DnsError::Timeout { domain: "x".into() }).is_transient());
        assert!(!NetError::ConnectionFailed { host: "x".into() }.is_transient());
        assert!(timeout.to_string().contains("10000 ms"));
    }
}
