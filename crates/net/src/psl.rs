//! Public-suffix handling and registrable-domain (eTLD+1) computation.
//!
//! The Topics API identifies callers and sites by their *registrable
//! domain* (public suffix plus one label), and the paper's §4 analysis
//! compares second-level domains of calling party and visited site
//! (`www.foo.com` vs `ad.foo.net` → same party `foo`). We embed the subset
//! of the public-suffix list needed by the synthetic web: every plain TLD
//! we generate plus the multi-label suffixes in common use.

use crate::domain::Domain;

/// Multi-label public suffixes known to the simulation (a practical subset
/// of the PSL). Single-label TLDs need no table: any final label acts as a
/// suffix.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    // United Kingdom
    "co.uk", "org.uk", "ac.uk", "gov.uk", "net.uk", // Japan
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp", // Brazil
    "com.br", "net.br", "org.br", "gov.br", // Australia
    "com.au", "net.au", "org.au", // India
    "co.in", "net.in", "org.in", // Russia (historic suffixes)
    "com.ru", "net.ru", "org.ru", // China
    "com.cn", "net.cn", "org.cn", // Mexico / Argentina
    "com.mx", "com.ar", // South Korea / Taiwan
    "co.kr", "or.kr", "com.tw", // Europe misc
    "com.pl", "net.pl", "com.gr", "com.pt", "com.ro", "co.at",
    // New Zealand / South Africa
    "co.nz", "co.za", // Turkey
    "com.tr",
];

/// Is `suffix` (e.g. `co.uk`) a known public suffix?
///
/// Any single label is treated as a public suffix; multi-label suffixes
/// must appear in the embedded table.
pub fn is_public_suffix(suffix: &str) -> bool {
    if suffix.is_empty() {
        return false;
    }
    let dots = suffix.bytes().filter(|&b| b == b'.').count();
    match dots {
        0 => true,
        1 => MULTI_LABEL_SUFFIXES.contains(&suffix),
        _ => false,
    }
}

/// The public suffix of a domain: the longest known suffix.
///
/// `www.example.co.uk` → `co.uk`; `www.example.com` → `com`.
pub fn public_suffix(domain: &Domain) -> &str {
    let host = domain.as_str();
    // Try the last two labels as a multi-label suffix.
    if let Some(idx) = host.rfind('.') {
        if let Some(idx2) = host[..idx].rfind('.') {
            let two = &host[idx2 + 1..];
            if MULTI_LABEL_SUFFIXES.contains(&two) {
                return two;
            }
        } else {
            // Exactly two labels: if both labels together form a suffix the
            // whole host IS a public suffix; callers handle that case via
            // `registrable_domain` returning the host itself.
            let two = host;
            if MULTI_LABEL_SUFFIXES.contains(&two) {
                return two;
            }
        }
        &host[idx + 1..]
    } else {
        host
    }
}

/// The registrable domain (eTLD+1) of a host.
///
/// `a.b.example.co.uk` → `example.co.uk`; `www.example.com` → `example.com`.
///
/// ```
/// use topics_net::domain::Domain;
/// use topics_net::psl::registrable_domain;
///
/// let host = Domain::parse("ads.shop.example.co.uk").unwrap();
/// assert_eq!(registrable_domain(&host).as_str(), "example.co.uk");
/// ```
/// If the host itself is a bare public suffix, it is returned unchanged —
/// the synthetic web never serves pages from bare suffixes, and analysis
/// treats such hosts as their own party.
pub fn registrable_domain(domain: &Domain) -> Domain {
    let host = domain.as_str();
    let suffix = public_suffix(domain);
    if host == suffix {
        return domain.clone();
    }
    let prefix = &host[..host.len() - suffix.len() - 1];
    let last_label = prefix.rsplit('.').next().expect("non-empty prefix");
    let reg = format!("{last_label}.{suffix}");
    Domain::parse(&reg).expect("labels of a valid domain recombine validly")
}

/// Memoized [`registrable_domain`] resolution, keyed by full host.
///
/// A crawl resolves the registrable domain of the same handful of hosts
/// over and over (every object load, every Topics call). The suffix
/// scan is cheap but allocates a fresh `Domain` per call; the memo
/// returns an `Arc`-shared clone of the first resolution instead, so
/// repeated hosts cost a hash lookup and every equal registrable domain
/// within one memo's lifetime shares storage — the seed of the
/// columnar store's intern table.
#[derive(Debug, Default)]
pub struct RegDomainMemo {
    map: std::collections::HashMap<Domain, Domain>,
}

impl RegDomainMemo {
    /// An empty memo.
    pub fn new() -> RegDomainMemo {
        RegDomainMemo::default()
    }

    /// The registrable domain of `host`, computed once per distinct host.
    pub fn resolve(&mut self, host: &Domain) -> Domain {
        if let Some(reg) = self.map.get(host) {
            return reg.clone();
        }
        let reg = registrable_domain(host);
        self.map.insert(host.clone(), reg.clone());
        reg
    }

    /// Number of distinct hosts resolved so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no host has been resolved yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// True when two hosts share the same *second-level label* even across
/// different suffixes — the paper's §4 notion of "the website and CP
/// second-level domains are the same, e.g. `www.foo.com` and `ad.foo.net`".
pub fn same_second_level_label(a: &Domain, b: &Domain) -> bool {
    second_level_label(a) == second_level_label(b)
}

/// The label immediately left of the public suffix (`foo` in
/// `www.foo.com`), or the whole host when it is a bare suffix.
pub fn second_level_label(domain: &Domain) -> &str {
    let host = domain.as_str();
    let suffix = public_suffix(domain);
    if host == suffix {
        return host;
    }
    let prefix = &host[..host.len() - suffix.len() - 1];
    prefix.rsplit('.').next().expect("non-empty prefix")
}

/// True when `a` and `b` have the same registrable domain.
pub fn same_site(a: &Domain, b: &Domain) -> bool {
    registrable_domain(a) == registrable_domain(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn simple_tld() {
        assert_eq!(public_suffix(&d("www.example.com")), "com");
        assert_eq!(
            registrable_domain(&d("www.example.com")).as_str(),
            "example.com"
        );
        assert_eq!(
            registrable_domain(&d("example.com")).as_str(),
            "example.com"
        );
    }

    #[test]
    fn multi_label_suffix() {
        assert_eq!(public_suffix(&d("www.example.co.uk")), "co.uk");
        assert_eq!(
            registrable_domain(&d("a.b.example.co.uk")).as_str(),
            "example.co.uk"
        );
    }

    #[test]
    fn bare_suffix_is_its_own_registrable() {
        assert_eq!(registrable_domain(&d("co.uk")).as_str(), "co.uk");
    }

    #[test]
    fn deep_subdomains() {
        assert_eq!(
            registrable_domain(&d("x.y.z.site.ne.jp")).as_str(),
            "site.ne.jp"
        );
        assert_eq!(registrable_domain(&d("x.y.z.site.ru")).as_str(), "site.ru");
    }

    #[test]
    fn second_level_cross_suffix_match() {
        // The paper's motivating example: www.foo.com vs ad.foo.net.
        assert!(same_second_level_label(&d("www.foo.com"), &d("ad.foo.net")));
        assert!(!same_second_level_label(
            &d("www.foo.com"),
            &d("www.bar.com")
        ));
        assert_eq!(second_level_label(&d("www.foo.co.uk")), "foo");
    }

    #[test]
    fn same_site_matches_registrable() {
        assert!(same_site(&d("a.foo.com"), &d("b.foo.com")));
        assert!(!same_site(&d("a.foo.com"), &d("foo.net")));
    }

    #[test]
    fn memo_matches_direct_resolution() {
        let mut memo = RegDomainMemo::new();
        assert!(memo.is_empty());
        let hosts = ["www.example.com", "a.b.example.co.uk", "www.example.com"];
        for h in hosts {
            let host = d(h);
            assert_eq!(memo.resolve(&host), registrable_domain(&host));
        }
        assert_eq!(memo.len(), 2, "repeat hosts hit the cache");
    }

    #[test]
    fn is_public_suffix_cases() {
        assert!(is_public_suffix("com"));
        assert!(is_public_suffix("co.uk"));
        assert!(!is_public_suffix("example.com"));
        assert!(!is_public_suffix(""));
        assert!(!is_public_suffix("a.b.c"));
    }
}
