//! Deterministic seed derivation.
//!
//! All randomness in the workspace flows from a single campaign seed. Each
//! entity (site, third party, visit, …) derives its own seed by mixing the
//! parent seed with a stable label; the derived seed feeds a
//! `rand::rngs::SmallRng`. Re-running anything with the same seed and
//! configuration is bit-identical, which the integration tests rely on.

/// One round of the splitmix64 output function. Good avalanche behaviour
/// and cheap; this is the standard generator used to expand a single `u64`
/// seed into independent streams.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to turn stable labels (domain names,
/// purposes) into seed material.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Derive a child seed from a parent seed and a stable string label.
///
/// `derive(s, "a")` and `derive(s, "b")` are statistically independent, and
/// the mapping is stable across runs and platforms.
///
/// ```
/// use topics_net::seed::derive;
///
/// assert_eq!(derive(42, "dns"), derive(42, "dns"));
/// assert_ne!(derive(42, "dns"), derive(42, "http"));
/// ```
#[inline]
pub fn derive(parent: u64, label: &str) -> u64 {
    splitmix64(parent ^ fnv1a(label.as_bytes()))
}

/// Derive a child seed from a parent seed and an index.
#[inline]
pub fn derive_idx(parent: u64, index: u64) -> u64 {
    splitmix64(parent ^ splitmix64(index ^ 0xA076_1D64_78BD_642F))
}

/// Map a seed to a uniform `f64` in `[0, 1)`.
///
/// Uses the top 53 bits so every representable double in the range is
/// reachable with equal probability.
#[inline]
pub fn unit_f64(seed: u64) -> f64 {
    (splitmix64(seed) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic Bernoulli draw: returns `true` with probability `p` for
/// this `(seed, label)` pair.
#[inline]
pub fn bernoulli(seed: u64, label: &str, p: f64) -> bool {
    unit_f64(derive(seed, label)) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        // Reference values from the canonical splitmix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn derive_differs_by_label() {
        let s = 42;
        assert_ne!(derive(s, "x"), derive(s, "y"));
        assert_eq!(derive(s, "x"), derive(s, "x"));
    }

    #[test]
    fn derive_idx_differs_by_index() {
        let s = 42;
        assert_ne!(derive_idx(s, 0), derive_idx(s, 1));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..10_000u64 {
            let x = unit_f64(i);
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn bernoulli_rate_is_close() {
        let p = 0.3;
        let hits = (0..20_000u64)
            .filter(|i| bernoulli(derive_idx(7, *i), "b", p))
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - p).abs() < 0.02, "rate {rate} too far from {p}");
    }

    #[test]
    fn bernoulli_extremes() {
        assert!(!bernoulli(1, "z", 0.0));
        assert!(bernoulli(1, "z", 1.0));
    }
}
