//! The Privacy Sandbox attestation file.
//!
//! Enrolled callers must serve a JSON attestation at
//! `/.well-known/privacy-sandbox-attestations.json` declaring they will not
//! use the Topics API for re-identification. The paper labels a party
//! **Attested** when this file is present and valid, extracts issue dates
//! to chart the enrolment timeline (§3), and notes the October 2024 schema
//! update that added the `enrollment_site` field.

use crate::clock::Timestamp;
use crate::domain::Domain;
use crate::url::Url;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Well-known path for attestation files.
pub const ATTESTATION_PATH: &str = "/.well-known/privacy-sandbox-attestations.json";

/// Build the attestation probe URL for a party's domain.
pub fn attestation_url(domain: &Domain) -> Url {
    Url::https(domain.clone(), ATTESTATION_PATH)
}

/// The APIs a party can attest for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_camel_case_types)]
pub enum AttestedApi {
    /// The Topics API.
    topics_api,
    /// The Protected Audience API (present in real files; irrelevant to
    /// the paper but kept for schema fidelity).
    protected_audience_api,
    /// Attribution reporting (idem).
    attribution_reporting_api,
}

/// One platform entry inside the attestation file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformAttestation {
    /// Platform name; `chrome` on the files the paper inspects.
    pub platform: String,
    /// The APIs attested, each mapped to the declaration that usage
    /// complies (`ServiceNotUsedForIdentifyingUserAcrossSites`).
    pub attestations: Vec<ApiAttestation>,
}

/// Declaration for one API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiAttestation {
    /// Which API.
    pub api: AttestedApi,
    /// The literal compliance declaration from the real schema.
    #[serde(rename = "ServiceNotUsedForIdentifyingUserAcrossSites")]
    pub not_used_for_reidentification: bool,
}

/// A parsed `/.well-known/privacy-sandbox-attestations.json`.
///
/// `enrollment_site` was added by the October 17th, 2024 schema update the
/// paper mentions; files issued before that date omit it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttestationFile {
    /// Schema version.
    pub attestation_version: u32,
    /// The enrolled site (added October 2024; optional before).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub enrollment_site: Option<String>,
    /// Issue timestamp (simulated time; the paper extracts issue dates to
    /// chart the enrolment timeline).
    pub issued: Timestamp,
    /// Per-platform declarations.
    pub platform_attestations: Vec<PlatformAttestation>,
}

/// Why an attestation file failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestationError {
    /// The body was not valid JSON for the schema.
    Malformed,
    /// No platform entry attests the Topics API.
    NoTopicsAttestation,
    /// The compliance declaration is missing/false.
    DeclarationFalse,
}

impl fmt::Display for AttestationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttestationError::Malformed => "malformed attestation JSON",
            AttestationError::NoTopicsAttestation => "no topics_api attestation present",
            AttestationError::DeclarationFalse => "compliance declaration absent or false",
        };
        f.write_str(s)
    }
}

impl std::error::Error for AttestationError {}

impl AttestationFile {
    /// Build a valid Topics attestation issued at `issued` for `site`.
    /// Files issued on/after the October 2024 schema update carry
    /// `enrollment_site`; the flag lets world generators model both eras.
    pub fn for_topics(site: &Domain, issued: Timestamp, with_enrollment_site: bool) -> Self {
        AttestationFile {
            attestation_version: if with_enrollment_site { 2 } else { 1 },
            enrollment_site: with_enrollment_site.then(|| format!("https://{site}")),
            issued,
            platform_attestations: vec![PlatformAttestation {
                platform: "chrome".to_owned(),
                attestations: vec![ApiAttestation {
                    api: AttestedApi::topics_api,
                    not_used_for_reidentification: true,
                }],
            }],
        }
    }

    /// Serialise to the JSON served at the well-known path.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("attestation serialises")
    }

    /// Parse and validate a served body: must be schema-valid, contain a
    /// `topics_api` entry, and declare compliance.
    pub fn parse_and_validate(body: &str) -> Result<AttestationFile, AttestationError> {
        let file: AttestationFile =
            serde_json::from_str(body).map_err(|_| AttestationError::Malformed)?;
        let topics = file
            .platform_attestations
            .iter()
            .flat_map(|p| p.attestations.iter())
            .find(|a| a.api == AttestedApi::topics_api)
            .ok_or(AttestationError::NoTopicsAttestation)?;
        if !topics.not_used_for_reidentification {
            return Err(AttestationError::DeclarationFalse);
        }
        Ok(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn url_is_the_well_known_path() {
        let u = attestation_url(&d("criteo.com"));
        assert_eq!(
            u.to_string(),
            "https://criteo.com/.well-known/privacy-sandbox-attestations.json"
        );
    }

    #[test]
    fn round_trip_valid_file() {
        let f = AttestationFile::for_topics(&d("adtech.com"), Timestamp::from_days(10), true);
        let json = f.to_json();
        let back = AttestationFile::parse_and_validate(&json).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.enrollment_site.as_deref(), Some("https://adtech.com"));
    }

    #[test]
    fn pre_update_files_lack_enrollment_site() {
        let f = AttestationFile::for_topics(&d("old.com"), Timestamp::ORIGIN, false);
        let json = f.to_json();
        assert!(!json.contains("enrollment_site"));
        assert!(AttestationFile::parse_and_validate(&json).is_ok());
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(
            AttestationFile::parse_and_validate("not json"),
            Err(AttestationError::Malformed)
        );
        assert_eq!(
            AttestationFile::parse_and_validate("{}"),
            Err(AttestationError::Malformed)
        );
    }

    #[test]
    fn rejects_non_topics_attestation() {
        let mut f = AttestationFile::for_topics(&d("x.com"), Timestamp::ORIGIN, true);
        f.platform_attestations[0].attestations[0].api = AttestedApi::protected_audience_api;
        assert_eq!(
            AttestationFile::parse_and_validate(&f.to_json()),
            Err(AttestationError::NoTopicsAttestation)
        );
    }

    #[test]
    fn rejects_false_declaration() {
        let mut f = AttestationFile::for_topics(&d("x.com"), Timestamp::ORIGIN, true);
        f.platform_attestations[0].attestations[0].not_used_for_reidentification = false;
        assert_eq!(
            AttestationFile::parse_and_validate(&f.to_json()),
            Err(AttestationError::DeclarationFalse)
        );
    }
}
