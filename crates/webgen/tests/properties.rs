//! Property-based tests for the world generator: every site spec must
//! satisfy the model's structural invariants for arbitrary seeds and
//! ranks, and the rendered artefacts must always parse.

use proptest::prelude::*;
use topics_webgen::parties::build_registry;
use topics_webgen::render;
use topics_webgen::site::{generate_site, sibling_domain, SiteModelConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn site_specs_satisfy_structural_invariants(
        seed in any::<u64>(),
        rank in 0usize..30_000
    ) {
        let registry = build_registry(seed);
        let config = SiteModelConfig::default();
        let spec = generate_site(seed, rank, &registry, &config);

        prop_assert_eq!(spec.rank, rank);
        // CMP implies banner; misconfiguration implies CMP and no gating.
        if spec.cmp.is_some() {
            prop_assert!(spec.has_banner);
        }
        if spec.cmp_misconfigured {
            prop_assert!(spec.cmp.is_some());
            prop_assert!(!spec.gates_pre_consent);
        }
        // Quirky phrasing only exists on bannered sites.
        if spec.banner_quirky {
            prop_assert!(spec.has_banner);
        }
        // Sibling frames require a topics-tagged GTM container and share
        // the second-level label.
        if let Some(sib) = &spec.sibling_frame {
            let gtm = spec.gtm.as_ref().expect("sibling implies GTM");
            prop_assert!(gtm.has_topics_tag);
            prop_assert!(topics_net::psl::same_second_level_label(&spec.domain, sib));
        }
        // Parent frames only exist alongside GTM (keeps §4's 95% GTM
        // co-occurrence).
        if spec.parent_frame.is_some() {
            prop_assert!(spec.gtm.is_some());
        }
        // Platform indices are in range and unique.
        let mut seen = std::collections::BTreeSet::new();
        for (idx, gated) in &spec.platforms {
            prop_assert!(*idx < registry.len());
            prop_assert!(seen.insert(*idx), "duplicate platform index");
            prop_assert_eq!(*gated, spec.gates_pre_consent);
        }
        // Minor-party indices are unique and inside the pool.
        let mut minors = spec.minor_parties.clone();
        let before = minors.len();
        minors.sort_unstable();
        minors.dedup();
        prop_assert_eq!(minors.len(), before);
        prop_assert!(minors.iter().all(|&i| i < config.minor_pool));
        // Aliases point away from the ranked domain.
        if let Some(canon) = &spec.alias_of {
            prop_assert!(canon != &spec.domain);
        }
        // Generation is deterministic.
        let again = generate_site(seed, rank, &registry, &config);
        prop_assert_eq!(spec.domain, again.domain);
        prop_assert_eq!(spec.platforms, again.platforms);
        prop_assert_eq!(spec.gtm, again.gtm);
    }

    #[test]
    fn rendered_pages_parse_and_respect_consent(
        seed in any::<u64>(),
        rank in 0usize..5_000,
        consented in any::<bool>()
    ) {
        let registry = build_registry(seed);
        let config = SiteModelConfig::default();
        let spec = generate_site(seed, rank, &registry, &config);
        let html = render::render_page(&spec, &registry, consented, |i| {
            topics_webgen::names::minor_party_domain(seed, i)
        });
        let doc = topics_browser::html::parse(&html);
        prop_assert!(!doc.nodes.is_empty());
        // The banner is present exactly when unconsented on a bannered
        // site.
        let has_banner_markup = html.contains("consent-banner");
        prop_assert_eq!(has_banner_markup, spec.has_banner && !consented);
        // All inline scripts are valid TagScript.
        for node in &doc.nodes {
            if let topics_browser::html::Node::Script { src: None, inline, .. } = node {
                prop_assert!(topics_browser::script::parse(inline).is_ok());
            }
        }
    }

    #[test]
    fn platform_scripts_always_parse(seed in any::<u64>()) {
        let registry = build_registry(seed);
        for p in registry.iter().take(30) {
            prop_assert!(topics_browser::script::parse(&p.tag_script()).is_ok());
            let frame = topics_browser::html::parse(&p.frame_document());
            for node in &frame.nodes {
                if let topics_browser::html::Node::Script { src: None, inline, .. } = node {
                    prop_assert!(topics_browser::script::parse(inline).is_ok());
                }
            }
        }
    }

    #[test]
    fn sibling_domains_always_differ_but_share_label(label in "[a-z][a-z0-9]{0,12}") {
        for tld in ["com", "net", "org", "co.uk"] {
            let site = topics_net::domain::Domain::parse(&format!("{label}.{tld}")).unwrap();
            let sib = sibling_domain(&site);
            prop_assert!(topics_net::psl::same_second_level_label(&site, &sib));
            prop_assert!(topics_net::psl::registrable_domain(&sib) != site);
        }
    }

    #[test]
    fn full_adoption_scenario_activates_every_enrolled_platform(seed in any::<u64>()) {
        use topics_webgen::parties::{build_registry_with, RegistryScenario, Experiment};
        let paper = build_registry_with(seed, RegistryScenario::Paper2024);
        let full = build_registry_with(seed, RegistryScenario::FullAdoption);
        prop_assert_eq!(paper.len(), full.len());
        for (p, f) in paper.iter().zip(&full) {
            prop_assert_eq!(&p.domain, &f.domain);
            // Identity and consent behaviour never change with the era.
            prop_assert_eq!(p.allowed, f.allowed);
            prop_assert_eq!(p.attested, f.attested);
            prop_assert_eq!(p.respects_consent, f.respects_consent);
            if f.allowed && f.attested {
                prop_assert_eq!(f.experiment, Experiment::SiteFraction(1.0));
                prop_assert_eq!(f.activation_day, 0);
                prop_assert!(f.is_active_at(0));
            } else {
                prop_assert_eq!(f.experiment, p.experiment);
            }
        }
    }

    #[test]
    fn registry_totals_hold_for_any_seed(seed in any::<u64>()) {
        use topics_webgen::parties::totals;
        let reg = build_registry(seed);
        prop_assert_eq!(reg.iter().filter(|p| p.allowed).count(), totals::ALLOWED);
        prop_assert_eq!(
            reg.iter().filter(|p| p.allowed && !p.attested).count(),
            totals::ALLOWED_NOT_ATTESTED
        );
        let crawl = topics_net::clock::CRAWL_START_DAY;
        prop_assert_eq!(
            reg.iter()
                .filter(|p| p.allowed && p.attested && p.is_active_at(crawl))
                .count(),
            totals::ACTIVE_CALLERS
        );
        prop_assert_eq!(
            reg.iter()
                .filter(|p| p.allowed
                    && p.attested
                    && p.is_active_at(crawl)
                    && !p.respects_consent)
                .count(),
            totals::CONSENT_VIOLATORS
        );
    }
}
