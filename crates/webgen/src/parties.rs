//! The third-party ecosystem: ad platforms and their Topics strategies.
//!
//! This is the ground truth of the synthetic web. Each platform is
//! described by *behaviour* — where it is embedded, whether it is
//! enrolled/attested, whether and how often it calls the Topics API,
//! whether it respects consent — and the paper's tables and figures then
//! **emerge** from crawling the resulting web, never from these numbers
//! directly.
//!
//! The named platforms reproduce the actors of Figures 2/3/5/6:
//! `doubleclick.net` as the top caller that never calls before consent,
//! `yandex.com` as the top Before-Accept violator concentrated on `.ru`
//! sites, `criteo.com` with a worldwide footprint and a 75% site-level
//! A/B fraction, `google-analytics.com` and `bing.com` as enrolled
//! platforms that never call, `distillery.com` as the lone
//! attested-but-not-allowed party, and so on. A synthesised tail fills the
//! registry out to the paper's totals: **193 allowed domains, 12 of them
//! without a valid attestation file, 47 active callers, 28 of which call
//! before consent**.

use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::region::Region;
use topics_net::seed;

use crate::names;

/// How an active platform invokes the Topics API (§2.2: JavaScript,
/// Fetch, or IFrame call types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiStyle {
    /// The site embeds `<script src=…/tag.js>`; the tag issues
    /// `fetch(bid, {browsingTopics: true})` → Fetch-type call attributed
    /// to the platform's own domain.
    ScriptFetch,
    /// The site embeds the platform's iframe; a script inside the frame
    /// calls `document.browsingTopics()` → JavaScript-type call from the
    /// frame's (platform) origin.
    IframeJs,
    /// The site embeds `<script src=…/tag.js>`; the tag injects
    /// `<iframe browsingtopics>` → IFrame-type call.
    ScriptIframe,
}

/// How the A/B experiment is keyed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Experiment {
    /// Not calling the Topics API at all (enrolled but inactive).
    Off,
    /// Site-level assignment: the platform enables Topics on a stable
    /// fraction of the websites it appears on (Figure 3's clusters).
    SiteFraction(f64),
    /// Time-sliced assignment: ON/OFF alternating windows per
    /// (platform, website) — the §3 "repeated tests" observation. The
    /// fields are the ON probability per window and the window hours.
    TimeWindow {
        /// Probability a given window is ON.
        p: f64,
        /// Window length in hours.
        hours: u32,
    },
}

/// One ad platform.
#[derive(Debug, Clone)]
pub struct AdPlatform {
    /// The platform's registrable domain.
    pub domain: Domain,
    /// Present in the browser's attestation allow-list (the paper's
    /// **Allowed** label; 193 domains on the June 6th, 2024 file).
    pub allowed: bool,
    /// Serves a valid `/.well-known/privacy-sandbox-attestations.json`
    /// (the paper's **Attested** label; 12 Allowed parties fail this).
    pub attested: bool,
    /// For non-attested platforms: the well-known URL serves *malformed*
    /// JSON instead of 404 (a real failure mode of half-finished
    /// enrolments; the crawler's validator must reject it).
    pub attestation_malformed: bool,
    /// Day (since simulation origin, 2023-06-01) the attestation was
    /// issued — enrolments start June 16th, 2023 and trickle in at about
    /// a dozen per month (§3).
    pub enrolled_day: u64,
    /// First simulation day the platform's Topics integration is live.
    /// Enrolment (the attestation date) precedes activation: a platform
    /// can be Allowed∧Attested long before it starts calling, and the
    /// "future cohort" of the registry activates only after the paper's
    /// crawl — the behavioural root of §3's slowly-growing adoption and
    /// the longitudinal experiment.
    pub activation_day: u64,
    /// The experiment this platform runs.
    pub experiment: Experiment,
    /// How it calls the API when the experiment arm is ON.
    pub style: ApiStyle,
    /// True when the platform's tag wraps its Topics call in a consent
    /// check — such platforms never appear in the Before-Accept data
    /// (doubleclick); false for the §5 violators (yandex, criteo, …).
    pub respects_consent: bool,
    /// For violators: the (site-keyed) probability that the tag fires
    /// its Topics call even without consent, when it is loaded at all
    /// pre-consent. Yandex is the most aggressive (§5's top violator
    /// despite modest popularity); big exchanges leak on a thin slice of
    /// their footprint. Zero for consent-respecting platforms.
    pub pre_consent_rate: f64,
    /// Baseline probability a site embeds this platform.
    pub base_presence: f64,
    /// Per-region presence multipliers, indexed by [`Region::ALL`] order
    /// (.com, .jp, .ru, EU, other).
    pub region_mult: [f64; 5],
}

impl AdPlatform {
    /// Probability this platform is embedded on a site in `region`.
    pub fn presence_probability(&self, region: Region) -> f64 {
        let idx = Region::ALL
            .iter()
            .position(|r| *r == region)
            .expect("region in ALL");
        (self.base_presence * self.region_mult[idx]).clamp(0.0, 1.0)
    }

    /// True when the platform ever calls the Topics API.
    pub fn is_active(&self) -> bool {
        !matches!(self.experiment, Experiment::Off)
    }

    /// True when the platform's integration is live on simulation day
    /// `day` — the set the paper's crawl can observe calling.
    pub fn is_active_at(&self, day: u64) -> bool {
        self.is_active() && self.activation_day <= day
    }

    /// Wrap a raw Topics invocation in this platform's experiment arm.
    fn armed_call(&self, call: &str) -> String {
        match self.experiment {
            Experiment::Off => String::new(),
            Experiment::SiteFraction(f) => format!("ab {f:.4} site {{\n{call}}}\n"),
            Experiment::TimeWindow { p, hours } => {
                format!("ab {p:.4} time:{hours}h {{\n{call}}}\n")
            }
        }
    }

    /// Wrap the armed call in the platform's consent behaviour: every
    /// platform runs its experiment with consent, and violators
    /// additionally fire — with probability [`Self::pre_consent_rate`]
    /// per site — when no consent has been given (the §5 questionable
    /// calls).
    fn consent_wrapped(&self, call: &str) -> String {
        let armed = self.armed_call(call);
        if armed.is_empty() {
            return String::new();
        }
        let mut s = format!("consent {{\n{armed}}}\n");
        if !self.respects_consent && self.pre_consent_rate > 0.0 {
            s.push_str(&format!(
                "noconsent {{\nab {:.4} site {{\n{armed}}}\n}}\n",
                self.pre_consent_rate
            ));
        }
        // The whole integration only exists once the platform switches
        // it on.
        format!("after {} {{\n{s}}}\n", self.activation_day)
    }

    /// Render this platform's externally-served tag script (TagScript).
    ///
    /// Consent-respecting platforms wrap the call in `consent { }`; the
    /// experiment arm becomes an `ab` gate. Every tag also drops an
    /// identifier cookie and fires a pixel, like real ad tags.
    pub fn tag_script(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("# {} tag\n", self.domain));
        body.push_str(&format!("cookie uid {}\n", short_id(self.domain.as_str())));
        body.push_str(&format!("img https://{}/px.gif\n", self.domain));
        match self.style {
            ApiStyle::ScriptFetch => {
                let call = format!("topics fetch https://{}/bid\n", self.domain);
                body.push_str(&self.consent_wrapped(&call));
            }
            // IframeJs platforms are embedded as iframes directly; their
            // tag script (if a site uses the script variant) injects the
            // frame, and the gating lives in the frame document.
            ApiStyle::IframeJs => {
                body.push_str(&format!("iframe https://{}/frame\n", self.domain));
            }
            ApiStyle::ScriptIframe => {
                let call = format!("topics iframe https://{}/afr\n", self.domain);
                body.push_str(&self.consent_wrapped(&call));
            }
        }
        body
    }

    /// Render the document served at this platform's `/frame` path (the
    /// iframe embed used by [`ApiStyle::IframeJs`] platforms). The
    /// gating mirrors [`AdPlatform::tag_script`].
    pub fn frame_document(&self) -> String {
        let script = self.consent_wrapped("topics js\n");
        format!(
            "<html><script>\ncookie uid {}\n{script}</script></html>",
            short_id(self.domain.as_str())
        )
    }
}

/// A stable short identifier derived from a name (cookie values etc.).
fn short_id(name: &str) -> String {
    format!("{:08x}", seed::fnv1a(name.as_bytes()) as u32)
}

/// Paper totals the registry is built to.
pub mod totals {
    /// Domains on the allow-list (Table 1).
    pub const ALLOWED: usize = 193;
    /// Allowed domains without a valid attestation file (Table 1).
    pub const ALLOWED_NOT_ATTESTED: usize = 12;
    /// Active callers (all Allowed ∧ Attested; Table 1, D_AA row).
    pub const ACTIVE_CALLERS: usize = 47;
    /// Active callers that also call before consent (Table 1, D_BA row).
    pub const CONSENT_VIOLATORS: usize = 28;
}

/// Region multiplier presets.
const UNIFORM: [f64; 5] = [1.0, 1.0, 1.0, 1.0, 1.0];
/// Google-scale services: slightly thinner in Russia.
const GLOBAL_WEST: [f64; 5] = [1.0, 0.8, 0.45, 1.0, 0.9];
/// Criteo: French roots, strong in Japan, thin in Russia.
const WORLDWIDE_JP: [f64; 5] = [1.0, 1.6, 0.25, 0.45, 0.8];
/// Yandex: overwhelmingly Russian, absent from Japan.
const RUSSIA_HEAVY: [f64; 5] = [0.55, 0.0, 12.0, 0.06, 1.2];

/// Which deployment era the registry models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegistryScenario {
    /// Early 2024, as the paper measures it: 47 of 193 enrolled
    /// platforms testing the API on controlled fractions.
    #[default]
    Paper2024,
    /// The what-if the paper's conclusion speculates about: third-party
    /// cookies are gone and the Topics API is "the de facto standard" —
    /// every enrolled-and-attested platform calls wherever it is
    /// embedded, experiments over.
    FullAdoption,
}

/// Build the full platform registry for a campaign seed.
///
/// The named platforms come first (stable indices), then the synthesised
/// tail that brings the totals to the paper's 193/12/47/28.
pub fn build_registry(campaign_seed: u64) -> Vec<AdPlatform> {
    build_registry_with(campaign_seed, RegistryScenario::Paper2024)
}

/// [`build_registry`] for an explicit scenario.
pub fn build_registry_with(campaign_seed: u64, scenario: RegistryScenario) -> Vec<AdPlatform> {
    let mut registry = build_paper_registry(campaign_seed);
    if scenario == RegistryScenario::FullAdoption {
        for p in registry.iter_mut() {
            if p.allowed && p.attested {
                // Experiments are over: everyone enrolled calls
                // everywhere, immediately. Consent behaviour is
                // unchanged — violators stay violators.
                p.experiment = Experiment::SiteFraction(1.0);
                p.activation_day = 0;
            }
        }
    }
    registry
}

fn build_paper_registry(campaign_seed: u64) -> Vec<AdPlatform> {
    let mut v: Vec<AdPlatform> = Vec::with_capacity(200);
    let d = |s: &str| Domain::parse(s).expect("static platform domains are valid");
    let site = Experiment::SiteFraction;

    // ---- Named platforms (Figures 2, 3, 5, 6) ----------------------
    // Enrolled but not calling: google-analytics (not an ad service),
    // bing, and the presence-only exchanges of Figure 2's long tail.
    let mut named = vec![
        AdPlatform {
            domain: d("google-analytics.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 15,
            activation_day: 29,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.68,
            region_mult: GLOBAL_WEST,
        },
        AdPlatform {
            domain: d("doubleclick.net"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 15,
            activation_day: 29,
            experiment: site(0.33),
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.56,
            region_mult: GLOBAL_WEST,
        },
        AdPlatform {
            domain: d("bing.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 40,
            activation_day: 54,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.27,
            region_mult: GLOBAL_WEST,
        },
        AdPlatform {
            domain: d("rubiconproject.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 60,
            activation_day: 74,
            experiment: site(0.45),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.05,
            base_presence: 0.17,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("pubmatic.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 75,
            activation_day: 89,
            experiment: site(0.25),
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 0.04,
            base_presence: 0.16,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("criteo.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 30,
            activation_day: 44,
            experiment: site(0.75),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.10,
            base_presence: 0.155,
            region_mult: WORLDWIDE_JP,
        },
        AdPlatform {
            domain: d("casalemedia.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 90,
            activation_day: 104,
            experiment: Experiment::TimeWindow { p: 0.5, hours: 12 },
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.10,
            base_presence: 0.13,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("3lift.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 100,
            activation_day: 114,
            experiment: site(0.38),
            style: ApiStyle::ScriptIframe,
            respects_consent: false,
            pre_consent_rate: 0.07,
            base_presence: 0.10,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("openx.net"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 85,
            activation_day: 99,
            experiment: site(0.55),
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 0.12,
            base_presence: 0.097,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("teads.tv"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 120,
            activation_day: 134,
            experiment: site(0.40),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.08,
            base_presence: 0.081,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("taboola.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 110,
            activation_day: 124,
            experiment: Experiment::TimeWindow { p: 0.5, hours: 24 },
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 0.09,
            base_presence: 0.077,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("adform.net"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 140,
            activation_day: 154,
            experiment: site(0.10),
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.068,
            region_mult: [0.8, 0.3, 0.3, 2.2, 0.8],
        },
        AdPlatform {
            domain: d("indexww.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 150,
            activation_day: 164,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.065,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("quantserve.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 160,
            activation_day: 174,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.058,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("yahoo.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 55,
            activation_day: 69,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.054,
            region_mult: [1.0, 2.2, 0.3, 0.7, 0.9],
        },
        AdPlatform {
            domain: d("outbrain.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 130,
            activation_day: 144,
            experiment: site(0.30),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.08,
            base_presence: 0.055,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("creativecdn.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 170,
            activation_day: 184,
            experiment: site(0.34),
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 0.20,
            base_presence: 0.040,
            region_mult: [0.9, 0.4, 0.8, 1.8, 0.9],
        },
        AdPlatform {
            domain: d("postrelease.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 180,
            activation_day: 194,
            experiment: site(0.28),
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 0.18,
            base_presence: 0.042,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("authorizedvault.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 200,
            activation_day: 214,
            experiment: site(0.98),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.35,
            base_presence: 0.015,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("unrulymedia.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 190,
            activation_day: 204,
            experiment: site(0.35),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.20,
            base_presence: 0.013,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("cpx.to"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 210,
            activation_day: 224,
            experiment: site(0.75),
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.008,
            region_mult: UNIFORM,
        },
        AdPlatform {
            domain: d("yandex.com"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 95,
            activation_day: 109,
            experiment: site(0.66),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.6,
            base_presence: 0.035,
            region_mult: RUSSIA_HEAVY,
        },
        AdPlatform {
            domain: d("yandex.ru"),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 95,
            activation_day: 109,
            experiment: site(0.66),
            style: ApiStyle::IframeJs,
            respects_consent: false,
            pre_consent_rate: 0.6,
            base_presence: 0.018,
            region_mult: RUSSIA_HEAVY,
        },
        // The lone attested-but-not-allowed party (§2.4): its attestation
        // file is dated November 2023 (day ~165) yet it never completed
        // enrolment. It only ever calls on its own website, which the
        // world generator arranges by ranking distillery.com itself.
        AdPlatform {
            domain: d("distillery.com"),
            allowed: false,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 165,
            activation_day: 179,
            experiment: site(1.0),
            style: ApiStyle::ScriptFetch,
            respects_consent: false,
            pre_consent_rate: 1.0,
            base_presence: 0.0,
            region_mult: UNIFORM,
        },
    ];
    v.append(&mut named);

    // ---- Synthesised tail ------------------------------------------
    // Bring the totals to 193 allowed / 12 not attested / 47 active /
    // 28 violators. Named contributions:
    let named_allowed = v.iter().filter(|p| p.allowed).count();
    let named_active = v
        .iter()
        .filter(|p| p.allowed && p.attested && p.is_active())
        .count();
    let named_violators = v
        .iter()
        .filter(|p| p.allowed && p.attested && p.is_active() && !p.respects_consent)
        .count();

    let tail_total = totals::ALLOWED - named_allowed;
    let tail_active = totals::ACTIVE_CALLERS - named_active;
    let tail_violators = totals::CONSENT_VIOLATORS - named_violators;
    let fractions = [1.0, 0.75, 0.66, 0.5, 0.33, 0.25];

    let s = seed::derive(campaign_seed, "party-tail");
    for i in 0..tail_total {
        let domain = names::adtech_domain(campaign_seed, i as u64);
        // The first `tail_active` tail platforms are live callers at
        // crawl time (all attested); of those the first `tail_violators`
        // ignore consent. The 12 attestation-less platforms come from
        // the inactive tail, and a further FUTURE_COHORT of attested
        // platforms have an experiment configured but switch it on only
        // after the paper's crawl (the longitudinal-growth cohort).
        let active = i < tail_active;
        let future = !active
            && i >= tail_active + totals::ALLOWED_NOT_ATTESTED
            && i < tail_active + totals::ALLOWED_NOT_ATTESTED + FUTURE_COHORT;
        let violator = i < tail_violators;
        let attested = active || i >= tail_active + totals::ALLOWED_NOT_ATTESTED;
        let experiment = if active || future {
            let f = fractions[(seed::derive_idx(s, i as u64) % fractions.len() as u64) as usize];
            Experiment::SiteFraction(f)
        } else {
            Experiment::Off
        };
        let style = match seed::derive_idx(seed::derive(s, "style"), i as u64) % 3 {
            0 => ApiStyle::ScriptFetch,
            1 => ApiStyle::IframeJs,
            _ => ApiStyle::ScriptIframe,
        };
        let presence = 0.0008
            + seed::unit_f64(seed::derive_idx(seed::derive(s, "presence"), i as u64)) * 0.012;
        // Live callers must have enrolled (and activated) before the
        // crawl; everyone else enrols anywhere from June 2023 to May
        // 2024.
        let day_draw = seed::derive_idx(seed::derive(s, "day"), i as u64);
        let enrolled_day = if active {
            16 + day_draw % 250 // ≤ day 266 → activation before the crawl
        } else {
            16 + day_draw % 330 // Jun 2023 – May 2024
        };
        let activation_day = if future {
            // Switch-on dates spread across the year after the crawl.
            320 + seed::derive_idx(seed::derive(s, "future-act"), i as u64) % 160
        } else {
            enrolled_day + 14 + seed::derive_idx(seed::derive(s, "act"), i as u64) % 22
        };
        // Of the attestation-less platforms, every other one serves a
        // malformed file instead of nothing.
        let attestation_malformed = !attested && (i - tail_active) % 2 == 0;
        v.push(AdPlatform {
            domain,
            allowed: true,
            attested,
            attestation_malformed,
            enrolled_day,
            activation_day,
            experiment,
            style,
            respects_consent: !violator,
            pre_consent_rate: if violator { 0.25 } else { 0.0 },
            base_presence: presence,
            region_mult: UNIFORM,
        });
    }
    v
}

/// Number of attested platforms whose experiment activates only after
/// the crawl (observable by longitudinal re-crawls; see the
/// `longitudinal` example).
pub const FUTURE_COHORT: usize = 25;

/// Timestamp of a platform's attestation issuance.
pub fn attestation_issued(platform: &AdPlatform) -> Timestamp {
    Timestamp::from_days(platform.enrolled_day)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_totals() {
        let reg = build_registry(1);
        let allowed = reg.iter().filter(|p| p.allowed).count();
        let allowed_not_attested = reg.iter().filter(|p| p.allowed && !p.attested).count();
        let crawl = topics_net::clock::CRAWL_START_DAY;
        let active = reg
            .iter()
            .filter(|p| p.allowed && p.attested && p.is_active_at(crawl))
            .count();
        let violators = reg
            .iter()
            .filter(|p| p.allowed && p.attested && p.is_active_at(crawl) && !p.respects_consent)
            .count();
        // The future cohort is configured but not yet live.
        let future = reg
            .iter()
            .filter(|p| p.is_active() && !p.is_active_at(crawl))
            .count();
        assert_eq!(future, FUTURE_COHORT);
        assert_eq!(allowed, totals::ALLOWED);
        assert_eq!(allowed_not_attested, totals::ALLOWED_NOT_ATTESTED);
        assert_eq!(active, totals::ACTIVE_CALLERS);
        assert_eq!(violators, totals::CONSENT_VIOLATORS);
        // Exactly one attested-but-not-allowed party: distillery.com.
        let odd: Vec<_> = reg.iter().filter(|p| !p.allowed && p.attested).collect();
        assert_eq!(odd.len(), 1);
        assert_eq!(odd[0].domain.as_str(), "distillery.com");
    }

    #[test]
    fn active_callers_are_all_allowed_and_attested_except_distillery() {
        let reg = build_registry(2);
        for p in reg.iter().filter(|p| p.is_active()) {
            if p.domain.as_str() == "distillery.com" {
                continue;
            }
            assert!(p.allowed && p.attested, "{} active but not A&A", p.domain);
        }
    }

    #[test]
    fn doubleclick_respects_consent_yandex_does_not() {
        let reg = build_registry(3);
        let get = |n: &str| reg.iter().find(|p| p.domain.as_str() == n).unwrap();
        assert!(get("doubleclick.net").respects_consent);
        assert!(get("google-analytics.com").experiment == Experiment::Off);
        assert!(!get("yandex.com").respects_consent);
        assert!(!get("criteo.com").respects_consent);
    }

    #[test]
    fn yandex_is_russian_criteo_is_worldwide() {
        let reg = build_registry(4);
        let yandex = reg
            .iter()
            .find(|p| p.domain.as_str() == "yandex.com")
            .unwrap();
        assert_eq!(yandex.presence_probability(Region::Japan), 0.0);
        assert!(yandex.presence_probability(Region::Russia) > 0.3);
        assert!(
            yandex.presence_probability(Region::Russia)
                > 10.0 * yandex.presence_probability(Region::Com)
        );
        let criteo = reg
            .iter()
            .find(|p| p.domain.as_str() == "criteo.com")
            .unwrap();
        assert!(
            criteo.presence_probability(Region::Japan) > criteo.presence_probability(Region::Com)
        );
        for r in Region::ALL {
            assert!(criteo.presence_probability(r) > 0.0);
        }
    }

    #[test]
    fn presence_probability_is_clamped() {
        let p = AdPlatform {
            domain: Domain::parse("x.com").unwrap(),
            allowed: true,
            attested: true,
            attestation_malformed: false,
            enrolled_day: 0,
            activation_day: 0,
            experiment: Experiment::Off,
            style: ApiStyle::ScriptFetch,
            respects_consent: true,
            pre_consent_rate: 0.0,
            base_presence: 0.5,
            region_mult: [4.0; 5],
        };
        assert_eq!(p.presence_probability(Region::Com), 1.0);
    }

    #[test]
    fn tag_scripts_parse_and_contain_expected_calls() {
        let reg = build_registry(5);
        for p in &reg {
            let script = p.tag_script();
            let stmts = topics_browser::script::parse(&script)
                .unwrap_or_else(|e| panic!("{}: {e}\n{script}", p.domain));
            let n_topics = topics_browser::script::count_topics_statements(&stmts);
            match (p.is_active(), p.style) {
                (false, _) => assert_eq!(n_topics, 0, "{}", p.domain),
                (true, ApiStyle::IframeJs) => {
                    // The script variant injects a frame; the call lives in
                    // the frame document.
                    assert_eq!(n_topics, 0, "{}", p.domain);
                    let frame = p.frame_document();
                    assert!(frame.contains("topics js"), "{}", p.domain);
                }
                (true, _) => {
                    let expected = if p.respects_consent || p.pre_consent_rate == 0.0 {
                        1 // one call in the consent branch
                    } else {
                        2 // consent branch + noconsent violator branch
                    };
                    assert_eq!(n_topics, expected, "{}", p.domain);
                }
            }
        }
    }

    #[test]
    fn consent_wrapper_matches_behaviour() {
        let reg = build_registry(6);
        let dc = reg
            .iter()
            .find(|p| p.domain.as_str() == "doubleclick.net")
            .unwrap();
        assert!(dc.tag_script().contains("consent {"));
        assert!(!dc.tag_script().contains("noconsent {"));
        let yx = reg
            .iter()
            .find(|p| p.domain.as_str() == "yandex.com")
            .unwrap();
        assert!(
            yx.frame_document().contains("noconsent {"),
            "violators also fire without consent"
        );
    }

    #[test]
    fn enrolment_timeline_spans_june_2023_to_may_2024() {
        let reg = build_registry(7);
        let days: Vec<u64> = reg
            .iter()
            .filter(|p| p.allowed)
            .map(|p| p.enrolled_day)
            .collect();
        let min = *days.iter().min().unwrap();
        let max = *days.iter().max().unwrap();
        assert!(min >= 15, "first attestation June 16th, 2023 (day 15)");
        assert!(max < 365, "enrolment continues until May 2024");
        // Spread: roughly a dozen per month → no month empty in between.
        let mut by_month = std::collections::BTreeMap::new();
        for d in &days {
            *by_month.entry(d / 30).or_insert(0) += 1;
        }
        assert!(by_month.len() >= 10, "enrolments spread over ≥10 months");
    }

    #[test]
    fn registry_is_deterministic_per_seed() {
        let a = build_registry(9);
        let b = build_registry(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.base_presence, y.base_presence);
        }
        let c = build_registry(10);
        // Tail names differ across seeds.
        assert_ne!(a.last().unwrap().domain, c.last().unwrap().domain);
    }
}
