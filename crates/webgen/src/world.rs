//! The assembled synthetic web.
//!
//! [`World`] owns the full ground truth — the ranked site list, every
//! site's spec, the ad-platform registry — and implements
//! [`NetworkService`]: DNS with the paper's failure rates and an HTTP
//! handler that routes every URL the browser can produce: site pages
//! (rendered against the visitor's consent cookie), GTM containers, ad
//! tags and frames, CMP loaders, attestation well-known files, sibling ad
//! frames, corporate parent frames, alias redirects, and the long tail of
//! minor third parties.

use crate::names;
use crate::parties::{build_registry_with, AdPlatform, RegistryScenario};
use crate::render;
use crate::site::{generate_site, SiteModelConfig, SiteSpec};
use std::collections::HashMap;
use topics_net::clock::Timestamp;
use topics_net::dns::{DnsError, DnsPolicy, SimDns};
use topics_net::domain::Domain;
use topics_net::http::{HttpRequest, HttpResponse, OBSERVE_BROWSING_TOPICS};
use topics_net::psl::registrable_domain;
use topics_net::seed;

use topics_net::service::NetworkService;
use topics_net::url::Url;
use topics_net::wellknown::{AttestationFile, ATTESTATION_PATH};
use topics_net::NetError;

/// Simulation day on which the October 17th, 2024 attestation-schema
/// update lands (adds the `enrollment_site` field). Day 0 = 2023-06-01.
pub const ENROLLMENT_SITE_UPDATE_DAY: u64 = 504;

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Campaign seed: all ground truth derives from it.
    pub seed: u64,
    /// Number of ranked sites (the paper crawls 50,000).
    pub num_sites: usize,
    /// Site-model behaviour rates.
    pub site_model: SiteModelConfig,
    /// DNS failure model.
    pub dns_policy: DnsPolicy,
    /// Which deployment era the platform registry models.
    pub scenario: RegistryScenario,
}

impl WorldConfig {
    /// The paper's configuration at full scale.
    pub fn paper(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            num_sites: 50_000,
            site_model: SiteModelConfig::default(),
            dns_policy: DnsPolicy::paper(),
            scenario: RegistryScenario::Paper2024,
        }
    }

    /// A scaled-down configuration for tests and quick runs; behaviour
    /// rates are identical, only the population shrinks.
    pub fn scaled(seed: u64, num_sites: usize) -> WorldConfig {
        WorldConfig {
            seed,
            num_sites,
            site_model: SiteModelConfig::default(),
            dns_policy: DnsPolicy::paper(),
            scenario: RegistryScenario::Paper2024,
        }
    }
}

/// The synthetic web.
pub struct World {
    config: WorldConfig,
    registry: Vec<AdPlatform>,
    sites: Vec<SiteSpec>,
    site_by_domain: HashMap<Domain, usize>,
    canonical_by_domain: HashMap<Domain, usize>,
    sibling_by_domain: HashMap<Domain, usize>,
    parent_calls: HashMap<Domain, bool>,
    party_by_domain: HashMap<Domain, usize>,
    dns: SimDns,
}

impl World {
    /// Build the world: generate the registry and every site spec.
    pub fn generate(config: WorldConfig) -> World {
        let registry = build_registry_with(config.seed, config.scenario);
        let mut sites = Vec::with_capacity(config.num_sites);
        let mut site_by_domain = HashMap::with_capacity(config.num_sites);
        let mut canonical_by_domain = HashMap::new();
        let mut sibling_by_domain = HashMap::new();
        let mut parent_calls = HashMap::new();
        for rank in 0..config.num_sites {
            let spec = generate_site(config.seed, rank, &registry, &config.site_model);
            site_by_domain.insert(spec.domain.clone(), rank);
            if let Some(canonical) = &spec.alias_of {
                canonical_by_domain.insert(canonical.clone(), rank);
            }
            if let Some(sibling) = &spec.sibling_frame {
                sibling_by_domain.insert(registrable_domain(sibling), rank);
            }
            if let Some((parent, calls)) = &spec.parent_frame {
                parent_calls.insert(parent.clone(), *calls);
            }
            sites.push(spec);
        }
        let party_by_domain = registry
            .iter()
            .enumerate()
            .map(|(i, p)| (p.domain.clone(), i))
            .collect();
        let dns = SimDns::new(config.dns_policy.clone(), config.seed);
        World {
            config,
            registry,
            sites,
            site_by_domain,
            canonical_by_domain,
            sibling_by_domain,
            parent_calls,
            party_by_domain,
            dns,
        }
    }

    /// The campaign seed.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    /// A stable hash of the full construction config. Two worlds with
    /// equal fingerprints serve identical content for the same request
    /// and timestamp, so the value is safe to use as a memo-cache key.
    pub fn fingerprint(&self) -> u64 {
        seed::fnv1a(format!("{:?}", self.config).as_bytes())
    }

    /// The ranked site list, in rank order — the crawl targets.
    pub fn tranco_list(&self) -> Vec<Url> {
        self.sites
            .iter()
            .map(|s| Url::https(s.domain.clone(), "/"))
            .collect()
    }

    /// All site specs (ground truth, used by tests and ablations).
    pub fn sites(&self) -> &[SiteSpec] {
        &self.sites
    }

    /// The ad-platform registry (ground truth).
    pub fn registry(&self) -> &[AdPlatform] {
        &self.registry
    }

    /// The allow-list the browser's attestation component would download
    /// — every `allowed` platform's domain (193 at paper scale).
    pub fn allow_list(&self) -> Vec<Domain> {
        self.registry
            .iter()
            .filter(|p| p.allowed)
            .map(|p| p.domain.clone())
            .collect()
    }

    /// The minor-party domain for a pool index.
    fn minor_domain(&self, idx: u64) -> Domain {
        names::minor_party_domain(self.config.seed, idx)
    }

    /// Whether the request carries the consent cookie for any site.
    fn request_consented(req: &HttpRequest) -> bool {
        req.headers
            .get("Cookie")
            .is_some_and(|c| c.contains("euconsent=granted"))
    }

    /// Serve a ranked site's own paths.
    fn serve_site(&self, spec: &SiteSpec, req: &HttpRequest) -> HttpResponse {
        match req.url.path() {
            "/" => {
                // Pathological sites (≈0.3% of the ranked web) exercise
                // the crawler's failure handling.
                match spec.pathology {
                    Some(crate::site::Pathology::RedirectLoop) => {
                        return HttpResponse::redirect(&Url::https(spec.domain.clone(), "/"));
                    }
                    Some(crate::site::Pathology::ServerError) => {
                        let mut r = HttpResponse::not_found();
                        r.status = topics_net::http::StatusCode::InternalServerError;
                        return r;
                    }
                    Some(crate::site::Pathology::EmptyPage) => {
                        return HttpResponse::ok("text/html", "");
                    }
                    None => {}
                }
                if let Some(canonical) = &spec.alias_of {
                    // §4 case (ii): the ranked entry redirects to the
                    // canonical corporate domain.
                    return HttpResponse::redirect(&Url::https(canonical.clone(), "/"));
                }
                let consented = Self::request_consented(req);
                let visitor_is_eu = req.vantage == topics_net::http::Vantage::Europe;
                let html =
                    render::render_page_for(spec, &self.registry, consented, visitor_is_eu, |i| {
                        self.minor_domain(i)
                    });
                HttpResponse::ok("text/html", html)
            }
            "/main.css" => HttpResponse::ok("text/css", "body { margin: 0 }"),
            "/hero.jpg" => HttpResponse::ok("image/jpeg", "\u{1}JPG"),
            _ => HttpResponse::not_found(),
        }
    }

    /// Serve an ad platform's paths.
    fn serve_party(&self, party: &AdPlatform, req: &HttpRequest) -> HttpResponse {
        match req.url.path() {
            "/tag.js" => HttpResponse::ok("text/javascript", party.tag_script()),
            "/frame" => HttpResponse::ok("text/html", party.frame_document()),
            "/afr" => HttpResponse::ok("text/html", "<html><div>ad</div></html>"),
            "/bid" => {
                // Ad servers read the Sec-Browsing-Topics request header
                // (the fetch-type call's payload) and use it to pick a
                // creative; the response marks the caller as observing.
                let topics = req
                    .headers
                    .get(topics_net::http::SEC_BROWSING_TOPICS)
                    .and_then(topics_net::http::parse_topics_header)
                    .filter(|h| !h.topics.is_empty());
                let body = match topics {
                    Some(h) => format!(
                        "{{\"ad\":\"personalised-creative\",\"topics_used\":true,\"topic_count\":{}}}",
                        h.topics.len()
                    ),
                    None => "{\"ad\":\"contextual-creative\",\"topics_used\":false}".to_owned(),
                };
                let mut r = HttpResponse::ok("application/json", body);
                r.headers.set(OBSERVE_BROWSING_TOPICS, "?1");
                r
            }
            "/px.gif" | "/p.gif" => HttpResponse::ok("image/gif", "GIF89a"),
            "/analytics.js" => HttpResponse::ok(
                "text/javascript",
                format!("# analytics\nimg https://{}/px.gif\n", party.domain),
            ),
            _ => HttpResponse::not_found(),
        }
    }

    /// Serve the attestation well-known file for a registrable domain.
    /// A file only exists from its issue date onwards — probing before a
    /// platform enrolled returns 404, which the longitudinal experiment
    /// relies on.
    fn serve_attestation(&self, reg: &Domain, now: Timestamp) -> HttpResponse {
        match self.party_by_domain.get(reg) {
            Some(&i) if self.registry[i].attested => {
                let p = &self.registry[i];
                let issued = Timestamp::from_days(p.enrolled_day);
                if now < issued {
                    return HttpResponse::not_found();
                }
                // Files re-issued after the October 2024 schema update
                // carry the `enrollment_site` field (§3).
                let with_site =
                    now.millis() / topics_net::clock::MILLIS_PER_DAY >= ENROLLMENT_SITE_UPDATE_DAY;
                let file = AttestationFile::for_topics(&p.domain, issued, with_site);
                HttpResponse::ok("application/json", file.to_json())
            }
            Some(&i) if self.registry[i].attestation_malformed => {
                // A half-finished enrolment: the URL answers, but with
                // JSON the validator must reject.
                HttpResponse::ok(
                    "application/json",
                    "{\"attestation_version\": \"not-a-number\", \"oops\": [",
                )
            }
            _ => HttpResponse::not_found(),
        }
    }
}

impl NetworkService for World {
    fn resolve_ranked(&self, domain: &Domain) -> Result<(), DnsError> {
        // Pinned real-world domains (distillery.com) always resolve: the
        // paper positively observed them, so the ≈13% random failure
        // model must not erase them.
        if crate::site::special_domain_ranks()
            .iter()
            .any(|(_, d)| d == &registrable_domain(domain))
        {
            return Ok(());
        }
        self.dns.resolve_ranked(domain)
    }

    fn resolve_third_party(&self, domain: &Domain) -> Result<(), DnsError> {
        self.dns.resolve_third_party(domain)
    }

    fn fetch(&self, req: &HttpRequest, now: Timestamp) -> Result<HttpResponse, NetError> {
        let host = req.url.host();
        let reg = registrable_domain(host);
        let path = req.url.path();

        // Attestation probes work against any host.
        if path == ATTESTATION_PATH {
            return Ok(self.serve_attestation(&reg, now));
        }

        // GTM containers.
        if host.as_str() == render::GTM_HOST {
            if path == "/gtm.js" {
                if let Some(gtm) = req
                    .url
                    .query()
                    .and_then(|q| q.strip_prefix("id=GTM-"))
                    .and_then(|id| id.parse::<usize>().ok())
                    .and_then(|rank| self.sites.get(rank))
                    .and_then(|s| s.gtm.as_ref())
                {
                    return Ok(HttpResponse::ok(
                        "text/javascript",
                        render::render_gtm_container(gtm),
                    ));
                }
            }
            return Ok(HttpResponse::not_found());
        }

        // The secondary analytics library.
        if host.as_str() == render::EXTRA_LIB_HOST {
            return Ok(match path {
                "/stats.js" => HttpResponse::ok("text/javascript", render::render_extra_lib()),
                "/c.gif" => HttpResponse::ok("image/gif", "GIF89a"),
                _ => HttpResponse::not_found(),
            });
        }

        // Sibling ad frames (ad.<label>.net).
        if let Some(&rank) = self.sibling_by_domain.get(&reg) {
            if path == "/adframe" {
                if let Some(gtm) = self.sites[rank].gtm.as_ref() {
                    return Ok(HttpResponse::ok(
                        "text/html",
                        render::render_sibling_frame(&gtm.container_id),
                    ));
                }
            }
            return Ok(HttpResponse::not_found());
        }

        // Corporate parent frames.
        if let Some(&calls) = self.parent_calls.get(&reg) {
            if path == "/pframe" {
                return Ok(HttpResponse::ok(
                    "text/html",
                    render::render_parent_frame(calls),
                ));
            }
            return Ok(HttpResponse::not_found());
        }

        // Ranked sites — checked before parties so that distillery.com's
        // page wins over its party paths, which are disjoint anyway.
        if let Some(&rank) = self.site_by_domain.get(&reg) {
            let spec = &self.sites[rank];
            if let Some(&i) = self.party_by_domain.get(&reg) {
                // A domain that is both a ranked site and a platform
                // (distillery.com): party paths take precedence for
                // non-page requests.
                if path != "/" && path != "/main.css" && path != "/hero.jpg" {
                    return Ok(self.serve_party(&self.registry[i], req));
                }
            }
            return Ok(self.serve_site(spec, req));
        }

        // Canonical domains of alias sites.
        if let Some(&rank) = self.canonical_by_domain.get(&reg) {
            let spec = &self.sites[rank];
            if path == "/" {
                let consented = Self::request_consented(req);
                let visitor_is_eu = req.vantage == topics_net::http::Vantage::Europe;
                let html =
                    render::render_page_for(spec, &self.registry, consented, visitor_is_eu, |i| {
                        self.minor_domain(i)
                    });
                return Ok(HttpResponse::ok("text/html", html));
            }
            return Ok(match path {
                "/main.css" => HttpResponse::ok("text/css", "body { margin: 0 }"),
                "/hero.jpg" => HttpResponse::ok("image/jpeg", "\u{1}JPG"),
                _ => HttpResponse::not_found(),
            });
        }

        // Ad platforms.
        if let Some(&i) = self.party_by_domain.get(&reg) {
            return Ok(self.serve_party(&self.registry[i], req));
        }

        // CMP loaders.
        if let Some(cmp) = crate::cmp::cmp_by_domain(&reg) {
            return Ok(match path {
                "/cmp.js" => HttpResponse::ok(
                    "text/javascript",
                    render::render_cmp_script(cmp.spec().domain),
                ),
                "/px.gif" => HttpResponse::ok("image/gif", "GIF89a"),
                _ => HttpResponse::not_found(),
            });
        }

        // Minor third parties (cdn-*): inert scripts and pixels.
        if reg.as_str().starts_with("cdn-") {
            return Ok(match path {
                "/lib.js" => HttpResponse::ok("text/javascript", render::render_minor_script(&reg)),
                "/p.gif" | "/b.gif" => HttpResponse::ok("image/gif", "GIF89a"),
                _ => HttpResponse::not_found(),
            });
        }

        Ok(HttpResponse::not_found())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_net::http::{Method, ResourceKind, StatusCode};

    fn world(n: usize) -> World {
        World::generate(WorldConfig::scaled(31, n))
    }

    fn get(w: &World, url: &str) -> HttpResponse {
        let req = HttpRequest::get(Url::parse(url).unwrap(), ResourceKind::Document);
        w.fetch(&req, Timestamp::from_days(302)).unwrap()
    }

    fn get_consented(w: &World, url: &str) -> HttpResponse {
        let mut req = HttpRequest::get(Url::parse(url).unwrap(), ResourceKind::Document);
        req.headers.set("Cookie", "euconsent=granted");
        w.fetch(&req, Timestamp::from_days(302)).unwrap()
    }

    #[test]
    fn serves_site_pages() {
        let w = world(100);
        let first = &w.sites()[0];
        if first.alias_of.is_none() {
            let r = get(&w, &format!("https://{}/", first.domain));
            assert_eq!(r.status, StatusCode::Ok);
            assert!(r.body.contains("<html>"));
        }
        let r = get(&w, &format!("https://{}/main.css", first.domain));
        assert_eq!(r.status, StatusCode::Ok);
    }

    #[test]
    fn alias_sites_redirect_to_canonical_which_serves() {
        let w = world(3_000);
        let alias = w
            .sites()
            .iter()
            .find(|s| s.alias_of.is_some() && s.gtm.is_some())
            .expect("some alias site with GTM in 3k");
        let r = get(&w, &format!("https://{}/", alias.domain));
        assert!(r.status.is_redirect());
        let loc = r.location().unwrap().to_owned();
        assert!(loc.contains(alias.alias_of.as_ref().unwrap().as_str()));
        let r2 = get(&w, &loc);
        assert_eq!(r2.status, StatusCode::Ok);
        assert!(
            r2.body.contains("gtm.js"),
            "alias canonicals carry GTM+topics"
        );
    }

    #[test]
    fn gtm_container_served_per_site() {
        let w = world(2_000);
        let with_gtm = w
            .sites()
            .iter()
            .find(|s| s.gtm.as_ref().is_some_and(|g| g.has_topics_tag))
            .expect("some topics-tagged GTM site");
        let id = &with_gtm.gtm.as_ref().unwrap().container_id;
        let r = get(
            &w,
            &format!("https://www.googletagmanager.com/gtm.js?id={id}"),
        );
        assert_eq!(r.status, StatusCode::Ok);
        assert!(r.body.contains("topics js"));
        // Unknown container 404s.
        let r = get(&w, "https://www.googletagmanager.com/gtm.js?id=GTM-999999");
        assert_eq!(r.status, StatusCode::NotFound);
    }

    #[test]
    fn party_endpoints_serve() {
        let w = world(100);
        let r = get(&w, "https://static.doubleclick.net/tag.js");
        assert_eq!(r.status, StatusCode::Ok);
        assert!(r.body.contains("consent {"), "doubleclick gates on consent");
        let r = get(&w, "https://ads.criteo.com/frame");
        assert!(r.body.contains("topics js"));
        let r = get(&w, "https://doubleclick.net/bid");
        assert!(r.observes_topics());
    }

    #[test]
    fn attestation_files_follow_ground_truth() {
        let w = world(100);
        // An attested platform serves a valid file.
        let r = get(
            &w,
            "https://criteo.com/.well-known/privacy-sandbox-attestations.json",
        );
        assert_eq!(r.status, StatusCode::Ok);
        let file = AttestationFile::parse_and_validate(&r.body).unwrap();
        // During the crawl (before October 2024), no enrollment_site.
        assert!(file.enrollment_site.is_none());
        // A non-attested allowed platform either 404s or serves a file
        // the validator rejects — never a valid attestation.
        let mut saw_404 = false;
        let mut saw_malformed = false;
        for p in w.registry().iter().filter(|p| p.allowed && !p.attested) {
            let r = get(&w, &format!("https://{}{ATTESTATION_PATH}", p.domain));
            if r.status == StatusCode::NotFound {
                saw_404 = true;
            } else {
                assert!(
                    AttestationFile::parse_and_validate(&r.body).is_err(),
                    "{} served a VALID file while marked !attested",
                    p.domain
                );
                saw_malformed = true;
            }
        }
        assert!(saw_404, "some non-attested platforms 404");
        assert!(saw_malformed, "some serve malformed JSON");
        // distillery.com is attested despite not being allowed.
        let r = get(&w, &format!("https://distillery.com{ATTESTATION_PATH}"));
        assert_eq!(r.status, StatusCode::Ok);
        // Random sites 404.
        let site0 = w.sites()[0].domain.clone();
        if site0.as_str() != "distillery.com" {
            let r = get(&w, &format!("https://{site0}{ATTESTATION_PATH}"));
            assert_eq!(r.status, StatusCode::NotFound);
        }
    }

    #[test]
    fn attestation_files_gain_enrollment_site_after_october_2024() {
        let w = world(50);
        let req = HttpRequest::get(
            Url::parse("https://criteo.com/.well-known/privacy-sandbox-attestations.json").unwrap(),
            ResourceKind::WellKnown,
        );
        let late = Timestamp::from_days(ENROLLMENT_SITE_UPDATE_DAY + 1);
        let r = w.fetch(&req, late).unwrap();
        let file = AttestationFile::parse_and_validate(&r.body).unwrap();
        assert_eq!(file.enrollment_site.as_deref(), Some("https://criteo.com"));
    }

    #[test]
    fn consent_cookie_changes_the_page() {
        let w = world(4_000);
        let gating = w
            .sites()
            .iter()
            .find(|s| s.gates_pre_consent && !s.platforms.is_empty() && s.alias_of.is_none())
            .expect("a gating site with platforms");
        let before = get(&w, &format!("https://{}/", gating.domain));
        let after = get_consented(&w, &format!("https://{}/", gating.domain));
        let party = &w.registry()[gating.platforms[0].0].domain;
        assert!(!before.body.contains(party.as_str()));
        assert!(after.body.contains(party.as_str()));
        assert!(before.body.contains("consent-banner"));
        assert!(!after.body.contains("consent-banner"));
    }

    #[test]
    fn sibling_frames_serve_gtm_wrapper() {
        let w = world(6_000);
        let with_sibling = w
            .sites()
            .iter()
            .find(|s| s.sibling_frame.is_some())
            .expect("a sibling-frame site in 6k");
        let sib = with_sibling.sibling_frame.as_ref().unwrap();
        let id = &with_sibling.gtm.as_ref().unwrap().container_id;
        let r = get(&w, &format!("https://{sib}/adframe?id={id}"));
        assert_eq!(r.status, StatusCode::Ok);
        assert!(r.body.contains("gtm.js"));
    }

    #[test]
    fn minor_parties_and_cmps_serve() {
        let w = world(100);
        let minor = names::minor_party_domain(31, 5);
        let r = get(&w, &format!("https://{minor}/lib.js"));
        assert_eq!(r.status, StatusCode::Ok);
        let r = get(&w, "https://cdn.onetrust.com/cmp.js");
        assert_eq!(r.status, StatusCode::Ok);
        assert!(r.body.contains("cookie"));
    }

    #[test]
    fn pathological_sites_fail_in_their_own_way() {
        use crate::site::Pathology;
        let w = world(20_000);
        let mut seen = std::collections::BTreeSet::new();
        for spec in w.sites().iter().filter(|s| s.pathology.is_some()) {
            let r = get(&w, &format!("https://{}/", spec.domain));
            match spec.pathology.unwrap() {
                Pathology::RedirectLoop => {
                    assert!(r.status.is_redirect());
                    assert!(r.location().unwrap().contains(spec.domain.as_str()));
                }
                Pathology::ServerError => {
                    assert_eq!(r.status, StatusCode::InternalServerError);
                }
                Pathology::EmptyPage => {
                    assert_eq!(r.status, StatusCode::Ok);
                    assert!(r.body.is_empty());
                }
            }
            seen.insert(format!("{:?}", spec.pathology.unwrap()));
        }
        assert_eq!(seen.len(), 3, "all three pathologies occur in 20k sites");
    }

    #[test]
    fn bid_endpoint_reads_the_topics_header() {
        let w = world(10);
        let mut req = HttpRequest::get(
            Url::parse("https://doubleclick.net/bid").unwrap(),
            ResourceKind::Fetch,
        );
        let plain = w.fetch(&req, Timestamp::ORIGIN).unwrap();
        assert!(plain.body.contains("\"topics_used\":false"));
        req.headers.set(
            topics_net::http::SEC_BROWSING_TOPICS,
            "(123 45);v=chrome.1:2",
        );
        let personalised = w.fetch(&req, Timestamp::ORIGIN).unwrap();
        assert!(personalised.body.contains("\"topics_used\":true"));
        assert!(personalised.observes_topics());
    }

    #[test]
    fn unknown_hosts_404() {
        let w = world(10);
        let r = get(&w, "https://completely-unknown-host.zz/");
        assert_eq!(r.status, StatusCode::NotFound);
    }

    #[test]
    fn post_requests_to_bid_endpoints_work() {
        let w = world(10);
        let mut req = HttpRequest::post(
            Url::parse("https://doubleclick.net/bid").unwrap(),
            ResourceKind::Fetch,
            "{\"topics\":[1,2,3]}".to_owned(),
        );
        req.headers.set("Content-Type", "application/json");
        assert_eq!(req.method, Method::Post);
        let r = w.fetch(&req, Timestamp::ORIGIN).unwrap();
        assert_eq!(r.status, StatusCode::Ok);
    }

    #[test]
    fn tranco_list_has_requested_size_and_order() {
        let w = world(500);
        let list = w.tranco_list();
        assert_eq!(list.len(), 500);
        assert_eq!(list[0].host(), &w.sites()[0].domain);
    }

    #[test]
    fn allow_list_matches_registry() {
        let w = world(10);
        let allow = w.allow_list();
        assert_eq!(allow.len(), crate::parties::totals::ALLOWED);
        assert!(allow.iter().any(|d| d.as_str() == "doubleclick.net"));
        assert!(!allow.iter().any(|d| d.as_str() == "distillery.com"));
    }
}
