//! Per-site ground truth: banners, CMPs, GTM containers, embeds.
//!
//! A [`SiteSpec`] is everything the world needs to render one ranked
//! website: its consent setup (banner? CMP? correctly configured?), its
//! Google-Tag-Manager container (the §4 anomalous-call engine), its
//! embedded ad platforms (gated on consent or not), the long tail of
//! minor third parties, and the structural quirks behind the paper's §4
//! taxonomy — sibling-domain ad frames (same second-level label),
//! corporate parent frames, and alias domains that redirect to a
//! canonical site.

use crate::cmp::{sample_cmp, CmpId};
use crate::lang::{site_language, Language};
use crate::names;
use crate::parties::AdPlatform;
use topics_net::domain::Domain;
use topics_net::psl::{public_suffix, second_level_label};
use topics_net::region::Region;
use topics_net::seed;

/// Tunable parameters of the site model. The defaults are calibrated to
/// the paper's aggregates (≈30% After-Accept rate, ≈45% of sites with a
/// Topics call, ≈2.6k anomalous CPs, ≈1.3k Before-Accept callers, …);
/// every number is a *behavioural* rate, never a measured output.
#[derive(Debug, Clone)]
pub struct SiteModelConfig {
    /// Privacy-banner presence per region (.com, .jp, .ru, EU, other).
    pub banner_rate: [f64; 5],
    /// Of bannered sites, the share using a commercial CMP (§5); the
    /// rest run homegrown banners.
    pub cmp_given_banner: f64,
    /// Probability a homegrown banner actually gates third parties
    /// before consent (most do not — the paper's "shallow-but-in-good-
    /// faith behaviour").
    pub homegrown_gates: f64,
    /// Probability a banner uses quirky phrasing that keyword matching
    /// misses (drives Priv-Accept's 92–95% accuracy).
    pub quirky_phrase_rate: f64,
    /// Google Tag Manager presence per region.
    pub gtm_rate: [f64; 5],
    /// Of GTM containers, the share with the `browsingTopics()`-calling
    /// tag (the §4 mystery call).
    pub gtm_topics_tag_rate: f64,
    /// Of topics-tagged containers, the share correctly gated on consent
    /// (Google Consent Mode configured).
    pub gtm_consent_gated_rate: f64,
    /// The same share on sites whose CMP breaks Consent-Mode integration
    /// (HubSpot/LiveRamp — the Figure 7 anomaly).
    pub gtm_consent_gated_rate_leaky_cmp: f64,
    /// Of topics-tagged containers, the share that fire the call twice
    /// per page (drives the calls > callers multiplicity in §4).
    pub gtm_double_fire_rate: f64,
    /// Of topics-tagged GTM sites, the share loading GTM inside an
    /// iframe on a *sibling domain* (`ad.<label>.net`) — same
    /// second-level label, different suffix (the `www.foo.com` /
    /// `ad.foo.net` case).
    pub sibling_frame_rate: f64,
    /// Share of sites embedding a corporate-parent iframe whose content
    /// calls the API (the `windows.com` / `microsoft.com` case).
    pub parent_frame_rate: f64,
    /// Of parent frames, the share whose content actually calls.
    pub parent_frame_topics_rate: f64,
    /// Share of ranked entries that are alias domains 302-redirecting to
    /// a canonical domain owned by the same company (§4 case ii).
    pub alias_rate: f64,
    /// Share of sites embedding the secondary analytics library that
    /// also calls `browsingTopics()` (the ≈5% of anomalous pages
    /// without GTM).
    pub extra_lib_rate: f64,
    /// Pool size for long-tail minor third parties.
    pub minor_pool: u64,
    /// Minimum minor parties per site.
    pub minor_min: u64,
    /// Maximum additional minor parties per site.
    pub minor_span: u64,
}

impl Default for SiteModelConfig {
    fn default() -> Self {
        SiteModelConfig {
            banner_rate: [0.45, 0.30, 0.13, 0.78, 0.34],
            cmp_given_banner: 0.55,
            homegrown_gates: 0.55,
            quirky_phrase_rate: 0.06,
            gtm_rate: [0.65, 0.50, 0.35, 0.60, 0.55],
            gtm_topics_tag_rate: 0.22,
            gtm_consent_gated_rate: 0.83,
            gtm_consent_gated_rate_leaky_cmp: 0.05,
            gtm_double_fire_rate: 0.30,
            sibling_frame_rate: 0.08,
            parent_frame_rate: 0.12,
            parent_frame_topics_rate: 0.50,
            alias_rate: 0.03,
            extra_lib_rate: 0.02,
            minor_pool: 18_000,
            minor_min: 3,
            minor_span: 12,
        }
    }
}

/// Server-side failure modes a small share of real sites exhibit; the
/// crawler must survive all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pathology {
    /// `/` redirects to itself forever.
    RedirectLoop,
    /// `/` answers 500.
    ServerError,
    /// `/` serves an empty body.
    EmptyPage,
}

/// A site's Google Tag Manager container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GtmContainer {
    /// Container id embedded in the `gtm.js?id=…` URL.
    pub container_id: String,
    /// The container includes the tag that calls `browsingTopics()`.
    pub has_topics_tag: bool,
    /// The tag is gated on consent (Google Consent Mode).
    pub consent_gated: bool,
    /// The tag fires twice per page.
    pub double_fire: bool,
}

/// Ground truth for one ranked website.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// 0-based Tranco rank.
    pub rank: usize,
    /// The ranked (registrable) domain.
    pub domain: Domain,
    /// Figure 6 region bucket.
    pub region: Region,
    /// Site language (drives banner text).
    pub language: Language,
    /// The site shows a privacy banner.
    pub has_banner: bool,
    /// The banner is served only to European visitors; clients from
    /// elsewhere get the page in its implied-consent form (common on
    /// `.com` properties, rare on EU-TLD sites).
    pub banner_geo_targeted: bool,
    /// The banner's accept button uses quirky phrasing.
    pub banner_quirky: bool,
    /// The CMP in use, if any.
    pub cmp: Option<CmpId>,
    /// The CMP is misconfigured (third parties run before consent).
    pub cmp_misconfigured: bool,
    /// Derived: ad-platform tags are withheld until consent.
    pub gates_pre_consent: bool,
    /// The GTM container, if the site uses GTM.
    pub gtm: Option<GtmContainer>,
    /// GTM is loaded inside an iframe on this sibling domain instead of
    /// the page itself.
    pub sibling_frame: Option<Domain>,
    /// A corporate-parent iframe embedded on the page, with a flag for
    /// whether its content calls the API.
    pub parent_frame: Option<(Domain, bool)>,
    /// This ranked entry redirects to a canonical domain; the canonical
    /// serves the actual page.
    pub alias_of: Option<Domain>,
    /// Embedded ad platforms: registry index + whether the embed is
    /// consent-gated on this site.
    pub platforms: Vec<(usize, bool)>,
    /// Long-tail minor third parties (indices into the minor-name pool).
    pub minor_parties: Vec<u64>,
    /// The secondary topics-calling analytics library is embedded.
    pub extra_lib: bool,
    /// Server-side failure mode, if any (≈0.3% of sites).
    pub pathology: Option<Pathology>,
}

impl SiteSpec {
    /// The domain that actually serves the page content (canonical for
    /// aliases, the ranked domain otherwise).
    pub fn content_domain(&self) -> &Domain {
        self.alias_of.as_ref().unwrap_or(&self.domain)
    }

    /// True when, pre-consent, this site's anomalous GTM tag would fire
    /// (used by world-level sanity tests).
    pub fn gtm_fires_pre_consent(&self) -> bool {
        self.gtm
            .as_ref()
            .is_some_and(|g| g.has_topics_tag && !g.consent_gated)
    }
}

fn region_index(region: Region) -> usize {
    Region::ALL
        .iter()
        .position(|r| *r == region)
        .expect("region")
}

/// Generate the spec of ranked site `rank`.
pub fn generate_site(
    campaign_seed: u64,
    rank: usize,
    registry: &[AdPlatform],
    config: &SiteModelConfig,
) -> SiteSpec {
    let domain =
        special_domain(rank).unwrap_or_else(|| names::site_domain(campaign_seed, rank as u64));
    let region = Region::of(&domain);
    let ridx = region_index(region);
    let s = seed::derive(seed::derive(campaign_seed, "site-spec"), domain.as_str());
    let language = site_language(&domain, seed::derive(campaign_seed, "lang"));

    let has_banner = seed::bernoulli(s, "banner", config.banner_rate[ridx]);
    // EU-TLD sites show their banner to everyone; elsewhere, a sizeable
    // share geo-target it at European visitors only.
    let geo_target_rate = if region == Region::EuropeanUnion {
        0.05
    } else {
        0.45
    };
    let banner_geo_targeted = has_banner && seed::bernoulli(s, "banner-geo", geo_target_rate);
    let banner_quirky = has_banner && seed::bernoulli(s, "quirky", config.quirky_phrase_rate);
    let cmp = (has_banner && seed::bernoulli(s, "cmp?", config.cmp_given_banner))
        .then(|| sample_cmp(seed::unit_f64(seed::derive(s, "cmp-pick"))));
    let cmp_misconfigured = cmp
        .map(|c| seed::bernoulli(s, "cmp-misconfig", c.spec().misconfiguration_rate))
        .unwrap_or(false);
    let gates_pre_consent = match cmp {
        Some(_) => !cmp_misconfigured,
        None => has_banner && seed::bernoulli(s, "homegrown-gates", config.homegrown_gates),
    };

    let alias_of = seed::bernoulli(s, "alias", config.alias_rate)
        .then(|| canonical_domain(campaign_seed, rank as u64));

    let has_gtm = seed::bernoulli(s, "gtm", config.gtm_rate[ridx]);
    let gtm = has_gtm.then(|| {
        // Alias sites always carry the topics tag so the §4 case-(ii)
        // redirect scenario materialises.
        let has_topics_tag =
            alias_of.is_some() || seed::bernoulli(s, "gtm-topics", config.gtm_topics_tag_rate);
        // Consent-Mode integration works less often on sites using the
        // leaky CMPs (the Figure 7 HubSpot/LiveRamp anomaly).
        let gated_rate = if cmp.is_some_and(|c| c.spec().breaks_consent_mode) {
            config.gtm_consent_gated_rate_leaky_cmp
        } else {
            config.gtm_consent_gated_rate
        };
        GtmContainer {
            container_id: format!("GTM-{rank}"),
            has_topics_tag,
            consent_gated: seed::bernoulli(s, "gtm-gated", gated_rate),
            double_fire: seed::bernoulli(s, "gtm-double", config.gtm_double_fire_rate),
        }
    });

    let sibling_frame = gtm
        .as_ref()
        .filter(|g| g.has_topics_tag && seed::bernoulli(s, "sibling", config.sibling_frame_rate))
        .map(|_| sibling_domain(&domain));

    // Corporate-parent frames are a big-site pattern and co-occur with
    // GTM (the paper sees GTM on ~95% of anomalous pages, so the non-GTM
    // anomalous sources must stay rare).
    let parent_frame =
        (has_gtm && seed::bernoulli(s, "parent", config.parent_frame_rate)).then(|| {
            let idx = seed::derive(s, "parent-pick") % 400;
            // The "does the parent's frame call the API" flag is a property
            // of the parent company, so it must be derived per parent index —
            // every site embedding the same parent sees the same behaviour.
            let calls = seed::bernoulli(
                seed::derive_idx(seed::derive(campaign_seed, "parent-frame-calls"), idx),
                "calls",
                config.parent_frame_topics_rate,
            );
            (parent_company_domain(campaign_seed, idx), calls)
        });

    // Ad-platform embedding: one Bernoulli per registry entry, with a
    // rank-dependent density multiplier (popular sites carry more ads).
    let density = if rank < 5_000 {
        1.3
    } else if rank < 30_000 {
        1.0
    } else {
        0.75
    };
    let mut platforms = Vec::new();
    for (i, p) in registry.iter().enumerate() {
        if p.base_presence <= 0.0 {
            continue; // first-party-only platforms (distillery)
        }
        let prob = (p.presence_probability(region) * density).clamp(0.0, 1.0);
        if seed::bernoulli(seed::derive(s, p.domain.as_str()), "embed", prob) {
            // A gated embed is withheld from the pre-consent page.
            platforms.push((i, gates_pre_consent));
        }
    }

    // Long-tail minor parties: a power-law draw over the pool so that a
    // few CDNs are everywhere and the tail is huge.
    let count = config.minor_min + seed::derive(s, "minor-count") % (config.minor_span + 1);
    let mut minor_parties = Vec::with_capacity(count as usize);
    for k in 0..count {
        let u = seed::unit_f64(seed::derive_idx(seed::derive(s, "minor"), k));
        let idx = ((config.minor_pool as f64) * u.powf(2.2)) as u64;
        let idx = idx.min(config.minor_pool - 1);
        if !minor_parties.contains(&idx) {
            minor_parties.push(idx);
        }
    }

    let extra_lib = seed::bernoulli(s, "extra-lib", config.extra_lib_rate);

    let pathology = if seed::bernoulli(s, "pathology", 0.003) {
        Some(match seed::derive(s, "pathology-kind") % 3 {
            0 => Pathology::RedirectLoop,
            1 => Pathology::ServerError,
            _ => Pathology::EmptyPage,
        })
    } else {
        None
    };

    let mut spec = SiteSpec {
        rank,
        domain,
        region,
        language,
        has_banner,
        banner_geo_targeted,
        banner_quirky,
        cmp,
        cmp_misconfigured,
        gates_pre_consent,
        gtm,
        sibling_frame,
        parent_frame,
        alias_of,
        platforms,
        minor_parties,
        extra_lib,
        pathology,
    };

    // distillery.com is pinned: the paper *observed* its first-party
    // Topics usage after consent, so its banner must be detectable and
    // its page must not hide behind an alias.
    if spec.domain.as_str() == "distillery.com" {
        spec.has_banner = true;
        spec.banner_geo_targeted = false;
        spec.banner_quirky = false;
        spec.language = Language::English;
        spec.alias_of = None;
        spec.pathology = None;
    }
    spec
}

/// Ranks that carry real-world domains instead of generated names.
/// `distillery.com` must exist as a ranked site: the paper observes it
/// using the Topics API "on the distillery.com website only".
pub fn special_domain(rank: usize) -> Option<Domain> {
    special_domain_ranks()
        .iter()
        .find(|(r, _)| *r == rank)
        .map(|(_, d)| d.clone())
}

/// All pinned `(rank, domain)` pairs. These domains also bypass the
/// random DNS-failure model, since the paper positively observed them.
pub fn special_domain_ranks() -> &'static [(usize, Domain)] {
    use std::sync::OnceLock;
    static PINNED: OnceLock<Vec<(usize, Domain)>> = OnceLock::new();
    PINNED.get_or_init(|| vec![(1_200, Domain::parse("distillery.com").expect("valid"))])
}

/// The sibling ad domain for a site: same second-level label, different
/// suffix (`www.foo.com` → `ad.foo.net`).
pub fn sibling_domain(site: &Domain) -> Domain {
    let label = second_level_label(site);
    let alt = if public_suffix(site) == "net" {
        "org"
    } else {
        "net"
    };
    Domain::parse(&format!("ad.{label}.{alt}")).expect("derived sibling is valid")
}

/// The canonical domain an alias redirects to.
pub fn canonical_domain(campaign_seed: u64, rank: u64) -> Domain {
    let s = seed::derive(campaign_seed, "canonical");
    let h = seed::derive_idx(s, rank);
    Domain::parse(&format!("corpsite{rank}x{:04x}.com", h as u16)).expect("valid")
}

/// A shared corporate-parent domain (several brands embed the same
/// parent).
pub fn parent_company_domain(campaign_seed: u64, idx: u64) -> Domain {
    let s = seed::derive(campaign_seed, "parentco");
    let h = seed::derive_idx(s, idx);
    Domain::parse(&format!("holdinggroup{idx}x{:03x}.com", (h as u16) & 0xfff)).expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parties::build_registry;

    fn world(n: usize) -> (Vec<AdPlatform>, Vec<SiteSpec>) {
        let reg = build_registry(11);
        let cfg = SiteModelConfig::default();
        let sites = (0..n).map(|r| generate_site(11, r, &reg, &cfg)).collect();
        (reg, sites)
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, a) = world(50);
        let (_, b) = world(50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.platforms, y.platforms);
            assert_eq!(x.minor_parties, y.minor_parties);
        }
    }

    #[test]
    fn banner_rates_follow_region() {
        let (_, sites) = world(8_000);
        let rate = |r: Region| {
            let of_region: Vec<_> = sites.iter().filter(|s| s.region == r).collect();
            of_region.iter().filter(|s| s.has_banner).count() as f64 / of_region.len() as f64
        };
        assert!(rate(Region::EuropeanUnion) > 0.70);
        assert!(rate(Region::Russia) < 0.20);
        assert!((rate(Region::Com) - 0.45).abs() < 0.06);
    }

    #[test]
    fn cmp_only_on_bannered_sites() {
        let (_, sites) = world(3_000);
        for s in &sites {
            if s.cmp.is_some() {
                assert!(s.has_banner);
            }
            if s.cmp_misconfigured {
                assert!(s.cmp.is_some());
                assert!(!s.gates_pre_consent, "misconfigured CMPs do not gate");
            }
        }
    }

    #[test]
    fn distillery_is_ranked() {
        let (_, sites) = world(1_201);
        assert_eq!(sites[1_200].domain.as_str(), "distillery.com");
    }

    #[test]
    fn sibling_domains_share_second_level_label() {
        let (_, sites) = world(6_000);
        let mut seen = 0;
        for s in &sites {
            if let Some(sib) = &s.sibling_frame {
                seen += 1;
                assert!(topics_net::psl::same_second_level_label(&s.domain, sib));
                assert_ne!(topics_net::psl::registrable_domain(sib), s.domain);
                // Sibling frames only exist alongside a topics-tagged GTM.
                assert!(s.gtm.as_ref().unwrap().has_topics_tag);
            }
        }
        assert!(seen > 0, "some sibling frames generated");
    }

    #[test]
    fn alias_sites_have_canonical_and_topics_gtm() {
        let (_, sites) = world(10_000);
        let aliases: Vec<_> = sites.iter().filter(|s| s.alias_of.is_some()).collect();
        assert!(
            aliases.len() > 100 && aliases.len() < 350,
            "~2% of 10k, got {}",
            aliases.len()
        );
        for a in &aliases {
            assert_ne!(a.content_domain(), &a.domain);
            if let Some(gtm) = &a.gtm {
                assert!(gtm.has_topics_tag);
            }
        }
    }

    #[test]
    fn platform_presence_tracks_ground_truth() {
        let (reg, sites) = world(8_000);
        let dc = reg
            .iter()
            .position(|p| p.domain.as_str() == "doubleclick.net")
            .unwrap();
        let present = sites
            .iter()
            .filter(|s| s.platforms.iter().any(|(i, _)| *i == dc))
            .count() as f64
            / sites.len() as f64;
        assert!((present - 0.56).abs() < 0.07, "doubleclick at {present}");

        // Yandex concentrates on .ru sites.
        let yx = reg
            .iter()
            .position(|p| p.domain.as_str() == "yandex.com")
            .unwrap();
        let ru_sites: Vec<_> = sites
            .iter()
            .filter(|s| s.region == Region::Russia)
            .collect();
        let jp_sites: Vec<_> = sites.iter().filter(|s| s.region == Region::Japan).collect();
        let yx_ru = ru_sites
            .iter()
            .filter(|s| s.platforms.iter().any(|(i, _)| *i == yx))
            .count() as f64
            / ru_sites.len() as f64;
        assert!(yx_ru > 0.3, "yandex on .ru at {yx_ru}");
        assert!(jp_sites
            .iter()
            .all(|s| !s.platforms.iter().any(|(i, _)| *i == yx)));
    }

    #[test]
    fn gated_embeds_follow_site_gating() {
        let (_, sites) = world(2_000);
        for s in &sites {
            for (_, gated) in &s.platforms {
                assert_eq!(*gated, s.gates_pre_consent);
            }
        }
    }

    #[test]
    fn minor_party_counts_are_bounded_and_unique() {
        let cfg = SiteModelConfig::default();
        let (_, sites) = world(1_000);
        for s in &sites {
            assert!(s.minor_parties.len() as u64 <= cfg.minor_min + cfg.minor_span);
            let mut sorted = s.minor_parties.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), s.minor_parties.len());
            for &i in &s.minor_parties {
                assert!(i < cfg.minor_pool);
            }
        }
    }

    #[test]
    fn gtm_pre_consent_fire_rate_is_a_few_percent() {
        let (_, sites) = world(12_000);
        let firing =
            sites.iter().filter(|s| s.gtm_fires_pre_consent()).count() as f64 / sites.len() as f64;
        assert!(
            (0.015..0.06).contains(&firing),
            "pre-consent GTM fire rate {firing}"
        );
    }
}
