//! Deterministic domain-name generation for the synthetic web.
//!
//! Fifty thousand ranked sites plus tens of thousands of long-tail third
//! parties need plausible, unique, reproducible hostnames. Names are built
//! from word stems mixed with a seeded hash, so `site_domain(seed, 17)` is
//! stable forever and never collides with `site_domain(seed, 18)`.

use topics_net::domain::Domain;
use topics_net::region::EU_TLDS;
use topics_net::seed;

/// Word stems used to build names (two stems + optional digit = ~4M
/// combinations before the disambiguating index is even considered).
const STEMS: [&str; 48] = [
    "news", "daily", "web", "cloud", "shop", "media", "tech", "play", "data", "live", "smart",
    "home", "city", "travel", "food", "sport", "game", "star", "blue", "green", "alpha", "nova",
    "prime", "meta", "micro", "macro", "hyper", "ultra", "info", "zone", "hub", "base", "link",
    "net", "gate", "port", "stream", "wave", "spark", "pulse", "grid", "core", "path", "view",
    "max", "pro", "go", "top",
];

/// TLD pools per coarse region with sampling weights. The mix is chosen so
/// the 50k-site population matches the paper's Figure 6 buckets: `.com`
/// dominates, followed by "other", the EU, then `.ru` and `.jp`.
const TLD_WEIGHTS: &[(&str, u32)] = &[
    // .com bucket (45%)
    ("com", 4500),
    // Japan (4.5%)
    ("jp", 250),
    ("co.jp", 150),
    ("ne.jp", 50),
    // Russia (6%)
    ("ru", 500),
    ("com.ru", 100),
    // EU (15%)
    ("de", 250),
    ("fr", 230),
    ("it", 180),
    ("es", 160),
    ("pl", 140),
    ("nl", 140),
    ("se", 80),
    ("cz", 70),
    ("ro", 60),
    ("pt", 50),
    ("gr", 40),
    ("hu", 40),
    ("at", 30),
    ("be", 30),
    // Other (29.5%)
    ("net", 600),
    ("org", 550),
    ("io", 300),
    ("co", 200),
    ("co.uk", 350),
    ("com.br", 250),
    ("in", 200),
    ("com.au", 150),
    ("ca", 150),
    ("ch", 50),
    ("kr", 50),
    ("tr", 50),
    ("mx", 50),
    ("info", 50),
    ("biz", 45),
];

/// Sample a TLD for a ranked site.
pub fn site_tld(seed_val: u64) -> &'static str {
    let total: u32 = TLD_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut pick = (seed::splitmix64(seed_val) % u64::from(total)) as u32;
    for (tld, w) in TLD_WEIGHTS {
        if pick < *w {
            return tld;
        }
        pick -= w;
    }
    "com"
}

/// Build a unique name label from a seed and index.
fn label(seed_val: u64, index: u64) -> String {
    let h = seed::derive_idx(seed_val, index);
    let a = STEMS[(h % STEMS.len() as u64) as usize];
    let b = STEMS[((h >> 8) % STEMS.len() as u64) as usize];
    // The index keeps labels globally unique even when stems collide.
    format!("{a}{b}{index}")
}

/// The registrable domain of ranked site number `index` (0-based rank).
pub fn site_domain(campaign_seed: u64, index: u64) -> Domain {
    let s = seed::derive(campaign_seed, "site-name");
    let tld = site_tld(seed::derive_idx(seed::derive(s, "tld"), index));
    Domain::parse(&format!("{}.{}", label(s, index), tld)).expect("generated labels are valid")
}

/// The registrable domain of long-tail third party number `index`.
pub fn minor_party_domain(campaign_seed: u64, index: u64) -> Domain {
    let s = seed::derive(campaign_seed, "minor-party");
    // Third-party infrastructure skews heavily to gTLDs.
    let tld = match seed::derive_idx(seed::derive(s, "tld"), index) % 10 {
        0..=5 => "com",
        6..=7 => "net",
        8 => "io",
        _ => "org",
    };
    Domain::parse(&format!("cdn-{}.{}", label(s, index), tld)).expect("valid")
}

/// The synthesised domain of a long-tail *allowed* ad platform.
pub fn adtech_domain(campaign_seed: u64, index: u64) -> Domain {
    let s = seed::derive(campaign_seed, "adtech-name");
    let tld = if seed::derive_idx(s, index) % 4 == 0 {
        "net"
    } else {
        "com"
    };
    Domain::parse(&format!("adtech-{}.{}", label(s, index), tld)).expect("valid")
}

/// True when the TLD string belongs to the EU bucket — used by tests to
/// sanity-check the sampling table.
pub fn tld_is_eu(tld: &str) -> bool {
    let cc = tld.rsplit('.').next().unwrap_or(tld);
    EU_TLDS.contains(&cc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use topics_net::region::Region;

    #[test]
    fn site_domains_are_unique_and_stable() {
        let mut seen = HashSet::new();
        for i in 0..5_000 {
            let d = site_domain(42, i);
            assert!(seen.insert(d.clone()), "collision at {i}: {d}");
            assert_eq!(d, site_domain(42, i), "stability");
        }
    }

    #[test]
    fn different_seeds_give_different_webs() {
        assert_ne!(site_domain(1, 0), site_domain(2, 0));
    }

    #[test]
    fn region_mix_matches_targets() {
        let n = 20_000u64;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            let d = site_domain(7, i);
            *counts.entry(Region::of(&d)).or_insert(0u64) += 1;
        }
        let frac = |r: Region| *counts.get(&r).unwrap_or(&0) as f64 / n as f64;
        assert!(
            (frac(Region::Com) - 0.45).abs() < 0.02,
            "com {}",
            frac(Region::Com)
        );
        assert!(
            (frac(Region::Russia) - 0.06).abs() < 0.01,
            "ru {}",
            frac(Region::Russia)
        );
        assert!(
            (frac(Region::Japan) - 0.045).abs() < 0.01,
            "jp {}",
            frac(Region::Japan)
        );
        assert!(
            (frac(Region::EuropeanUnion) - 0.15).abs() < 0.02,
            "eu {}",
            frac(Region::EuropeanUnion)
        );
    }

    #[test]
    fn minor_and_adtech_pools_do_not_collide_with_sites() {
        let sites: HashSet<_> = (0..2000).map(|i| site_domain(3, i)).collect();
        for i in 0..2000 {
            assert!(!sites.contains(&minor_party_domain(3, i)));
            assert!(!sites.contains(&adtech_domain(3, i)));
        }
    }

    #[test]
    fn multi_label_suffix_sites_parse_correctly() {
        // Force many samples; at least some must land on co.uk / co.jp and
        // still be valid registrable domains.
        let mut multi = 0;
        for i in 0..5_000 {
            let d = site_domain(11, i);
            if d.as_str().ends_with(".co.uk") || d.as_str().ends_with(".co.jp") {
                multi += 1;
                assert_eq!(topics_net::psl::registrable_domain(&d), d);
            }
        }
        assert!(multi > 0, "expected some multi-label-suffix sites");
    }

    #[test]
    fn eu_helper_agrees_with_region() {
        assert!(tld_is_eu("de"));
        assert!(tld_is_eu("fr"));
        assert!(!tld_is_eu("co.uk"));
        assert!(!tld_is_eu("com"));
    }
}
