//! Page and script rendering.
//!
//! Turns a [`SiteSpec`] plus the visitor's consent state into the HTML
//! the browser parses, and renders the auxiliary documents: GTM
//! containers, CMP loaders, sibling ad frames, corporate parent frames,
//! and the secondary analytics library. Consent gating is applied here,
//! server-side: pre-consent requests from a gating site simply do not
//! contain the gated ad tags — which is how CMP-managed sites behave.

use crate::parties::{AdPlatform, ApiStyle};
use crate::site::{GtmContainer, SiteSpec};
use topics_net::domain::Domain;

/// The host serving GTM containers.
pub const GTM_HOST: &str = "www.googletagmanager.com";
/// The host of the secondary topics-calling library (the ≈5% of §4
/// anomalous pages without GTM).
pub const EXTRA_LIB_HOST: &str = "webstats-metrics.com";

/// Render a site's page HTML.
///
/// `consented` is derived by the server from the consent cookie: a gating
/// site withholds its gated ad tags until consent, and the banner markup
/// disappears once consent is given.
pub fn render_page(
    spec: &SiteSpec,
    registry: &[AdPlatform],
    consented: bool,
    minor_domain: impl Fn(u64) -> Domain,
) -> String {
    render_page_for(spec, registry, consented, true, minor_domain)
}

/// [`render_page`] with an explicit visitor geography. Non-European
/// visitors to a geo-targeted site get no banner and the implied-consent
/// page (tags ungated) — the behaviour behind the paper's §6 remark that
/// "websites may exhibit different behavior based on a user's location".
pub fn render_page_for(
    spec: &SiteSpec,
    registry: &[AdPlatform],
    consented: bool,
    visitor_is_eu: bool,
    minor_domain: impl Fn(u64) -> Domain,
) -> String {
    // Geo-targeted sites treat non-EU traffic as an implied-consent
    // regime: no banner, nothing withheld.
    let banner_applies = !spec.banner_geo_targeted || visitor_is_eu;
    let effective_consented = consented || !banner_applies;
    let mut html = String::with_capacity(2048);
    let content = spec.content_domain();
    html.push_str("<html><head>\n");
    html.push_str(&format!(
        "<title>{} — {}</title>\n",
        content,
        spec.language.banner_prose()
    ));
    html.push_str("<link rel=\"stylesheet\" href=\"/main.css\">\n");

    // CMP loader: present whenever the site uses a CMP (that is what the
    // Wappalyzer-style detection keys on), consent or not.
    if let Some(cmp) = spec.cmp {
        html.push_str(&format!(
            "<script src=\"https://cdn.{}/cmp.js\"></script>\n",
            cmp.spec().domain
        ));
    }
    html.push_str("</head><body>\n");

    // Privacy banner, shown until consent is granted.
    if spec.has_banner && banner_applies && !consented {
        let phrase = if spec.banner_quirky {
            spec.language.quirky_accept_phrase()
        } else {
            spec.language.standard_accept_phrase()
        };
        html.push_str(&format!(
            "<div class=\"consent-banner\" id=\"privacy-banner\">\n<p>{}</p>\n\
             <button id=\"accept-btn\" class=\"accept\">{}</button>\n\
             <button id=\"reject-btn\" class=\"reject\">{}</button>\n</div>\n",
            spec.language.banner_prose(),
            phrase,
            spec.language.standard_reject_phrase()
        ));
    }

    // GTM: either directly in the page (root context — the Figure 4
    // mechanism) or inside a sibling-domain iframe.
    if let Some(gtm) = &spec.gtm {
        match &spec.sibling_frame {
            Some(sibling) => {
                html.push_str(&format!(
                    "<iframe src=\"https://{}/adframe?id={}\"></iframe>\n",
                    sibling, gtm.container_id
                ));
            }
            None => {
                html.push_str(&format!(
                    "<script src=\"https://{}/gtm.js?id={}\"></script>\n",
                    GTM_HOST, gtm.container_id
                ));
            }
        }
    }

    // Corporate parent frame.
    if let Some((parent, _)) = &spec.parent_frame {
        html.push_str(&format!(
            "<iframe src=\"https://{}/pframe?brand={}\"></iframe>\n",
            parent, content
        ));
    }

    // Ad platforms. A gated embed is withheld pre-consent.
    for (idx, gated) in &spec.platforms {
        if *gated && !effective_consented {
            continue;
        }
        let p = &registry[*idx];
        match p.style {
            ApiStyle::IframeJs => {
                html.push_str(&format!(
                    "<iframe src=\"https://ads.{}/frame\"></iframe>\n",
                    p.domain
                ));
            }
            ApiStyle::ScriptFetch | ApiStyle::ScriptIframe => {
                html.push_str(&format!(
                    "<script src=\"https://static.{}/tag.js\"></script>\n",
                    p.domain
                ));
            }
        }
    }

    // Secondary analytics library.
    if spec.extra_lib {
        html.push_str(&format!(
            "<script src=\"https://{EXTRA_LIB_HOST}/stats.js\"></script>\n"
        ));
    }

    // distillery.com's own first-party integration (§2.4: "we observe it
    // using the Topics API on the distillery.com website only").
    if content.as_str() == "distillery.com" {
        html.push_str("<script src=\"https://distillery.com/tag.js\"></script>\n");
    }

    // Long-tail minor third parties: inert scripts and pixels.
    for (k, &idx) in spec.minor_parties.iter().enumerate() {
        let d = minor_domain(idx);
        if k % 2 == 0 {
            html.push_str(&format!("<script src=\"https://{d}/lib.js\"></script>\n"));
        } else {
            html.push_str(&format!("<img src=\"https://{d}/p.gif\">\n"));
        }
    }

    // First-party content: navigation, article body, footer — markup
    // noise the parser and banner detector must see through, like any
    // real page.
    html.push_str(
        "<div class=\"navbar\"><a href=\"/\">Home</a> <a href=\"/about\">About</a> \
         <a href=\"/contact\">Contact</a></div>\n",
    );
    html.push_str(&format!("<img src=\"https://{content}/hero.jpg\">\n"));
    html.push_str(
        "<div class=\"content\"><p>Lorem ipsum dolor sit amet, consectetur \
         adipiscing elit.</p><p>Sed do eiusmod tempor incididunt ut labore.</p>\
         <button class=\"cta\">Subscribe to our newsletter</button></div>\n",
    );
    html.push_str(&format!(
        "<div class=\"footer\"><a href=\"https://{content}/privacy\">Privacy policy</a> \
         <a href=\"https://{content}/terms\">Terms</a></div>\n"
    ));
    html.push_str("</body></html>\n");
    html
}

/// Render a GTM container script. The container is per-site
/// configuration: some include the tag that calls `browsingTopics()`
/// (gated on consent when Consent Mode is set up, firing twice when the
/// trigger is duplicated), and every container loads the inert
/// analytics library — which is why GA appears on nearly every GTM page.
pub fn render_gtm_container(gtm: &GtmContainer) -> String {
    let mut s = String::new();
    s.push_str(&format!("# GTM container {}\n", gtm.container_id));
    s.push_str("script https://www.google-analytics.com/analytics.js\n");
    if gtm.has_topics_tag {
        let mut call = String::from("topics js\n");
        if gtm.double_fire {
            call.push_str("topics js\n");
        }
        if gtm.consent_gated {
            s.push_str(&format!("consent {{\n{call}}}\n"));
        } else {
            s.push_str(&call);
        }
    }
    s
}

/// Render a sibling-domain ad frame: a document that loads the site's GTM
/// container inside the sibling's browsing context, so the call is
/// attributed to `ad.<label>.net` instead of the page.
pub fn render_sibling_frame(container_id: &str) -> String {
    format!("<html><script src=\"https://{GTM_HOST}/gtm.js?id={container_id}\"></script></html>")
}

/// Render a corporate-parent frame document. When `calls_topics`, the
/// inline script invokes the API from the parent's own context —
/// gated on consent, so parent frames show up in §4 (After-Accept) but
/// not in the §5 Before-Accept data.
pub fn render_parent_frame(calls_topics: bool) -> String {
    if calls_topics {
        "<html><script>\nconsent {\ntopics js\n}\n</script></html>".to_owned()
    } else {
        "<html><div class=\"brandbar\">group navigation</div></html>".to_owned()
    }
}

/// Render the CMP loader script (inert: a pixel plus a preference
/// cookie; the consent *decision* is modelled by the consent cookie the
/// browser sets on accept).
pub fn render_cmp_script(cmp_domain: &str) -> String {
    format!("# CMP loader\ncookie cmp-pref 1\nimg https://cdn.{cmp_domain}/px.gif\n")
}

/// Render the secondary analytics library (the non-GTM anomalous
/// caller): it invokes the API on half of the sites embedding it,
/// after consent only.
pub fn render_extra_lib() -> String {
    "# site analytics\nimg https://webstats-metrics.com/c.gif\nconsent {\nab 0.5 site {\ntopics js\n}\n}\n"
        .to_owned()
}

/// Render an inert minor-party library.
pub fn render_minor_script(domain: &Domain) -> String {
    format!("# {domain} utility\nimg https://{domain}/b.gif\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::names;
    use crate::parties::build_registry;
    use crate::site::{generate_site, SiteModelConfig};

    fn spec_with(f: impl Fn(&mut SiteSpec)) -> (Vec<AdPlatform>, SiteSpec) {
        let reg = build_registry(21);
        let cfg = SiteModelConfig::default();
        let mut spec = generate_site(21, 3, &reg, &cfg);
        f(&mut spec);
        (reg, spec)
    }

    fn render(reg: &[AdPlatform], spec: &SiteSpec, consented: bool) -> String {
        render_page(spec, reg, consented, |i| names::minor_party_domain(21, i))
    }

    #[test]
    fn banner_disappears_after_consent() {
        let (reg, spec) = spec_with(|s| {
            s.has_banner = true;
            s.banner_quirky = false;
        });
        let before = render(&reg, &spec, false);
        let after = render(&reg, &spec, true);
        assert!(before.contains("consent-banner"));
        assert!(before.contains(spec.language.standard_accept_phrase()));
        assert!(!after.contains("consent-banner"));
    }

    #[test]
    fn gated_tags_are_withheld_pre_consent() {
        let (reg, spec) = spec_with(|s| {
            s.gates_pre_consent = true;
            s.platforms = vec![(1, true)]; // doubleclick, gated
            s.gtm = None;
            s.extra_lib = false;
            s.parent_frame = None;
        });
        let before = render(&reg, &spec, false);
        let after = render(&reg, &spec, true);
        assert!(!before.contains("doubleclick.net"));
        assert!(after.contains("doubleclick.net"));
    }

    #[test]
    fn ungated_tags_render_pre_consent() {
        let (reg, spec) = spec_with(|s| {
            s.gates_pre_consent = false;
            s.platforms = vec![(1, false)];
        });
        assert!(render(&reg, &spec, false).contains("doubleclick.net"));
    }

    #[test]
    fn gtm_renders_in_root_or_sibling_frame() {
        let (reg, mut spec) = spec_with(|s| {
            s.gtm = Some(GtmContainer {
                container_id: "GTM-3".into(),
                has_topics_tag: true,
                consent_gated: false,
                double_fire: false,
            });
            s.sibling_frame = None;
        });
        let html = render(&reg, &spec, false);
        assert!(html.contains("googletagmanager.com/gtm.js?id=GTM-3"));
        assert!(!html.contains("adframe"));

        spec.sibling_frame = Some(crate::site::sibling_domain(&spec.domain));
        let html = render(&reg, &spec, false);
        assert!(!html.contains("gtm.js"), "GTM moved into the sibling frame");
        assert!(html.contains("/adframe?id=GTM-3"));
    }

    #[test]
    fn gtm_container_respects_gating_and_double_fire() {
        let gated = render_gtm_container(&GtmContainer {
            container_id: "GTM-1".into(),
            has_topics_tag: true,
            consent_gated: true,
            double_fire: false,
        });
        assert!(gated.contains("consent {"));
        assert_eq!(gated.matches("topics js").count(), 1);

        let double = render_gtm_container(&GtmContainer {
            container_id: "GTM-2".into(),
            has_topics_tag: true,
            consent_gated: false,
            double_fire: true,
        });
        assert!(!double.contains("consent {"));
        assert_eq!(double.matches("topics js").count(), 2);

        let inert = render_gtm_container(&GtmContainer {
            container_id: "GTM-3".into(),
            has_topics_tag: false,
            consent_gated: true,
            double_fire: false,
        });
        assert!(!inert.contains("topics"));
        assert!(inert.contains("analytics.js"), "GTM always loads GA");
    }

    #[test]
    fn rendered_scripts_parse_as_tagscript() {
        for script in [
            render_gtm_container(&GtmContainer {
                container_id: "GTM-9".into(),
                has_topics_tag: true,
                consent_gated: true,
                double_fire: true,
            }),
            render_cmp_script("onetrust.com"),
            render_extra_lib(),
            render_minor_script(&Domain::parse("cdn-x.com").unwrap()),
        ] {
            topics_browser::script::parse(&script).unwrap_or_else(|e| panic!("{e}\n{script}"));
        }
    }

    #[test]
    fn cmp_script_tag_identifies_the_cmp() {
        let (reg, spec) = spec_with(|s| {
            s.has_banner = true;
            s.cmp = Some(crate::cmp::CmpId(0)); // OneTrust
        });
        let html = render(&reg, &spec, false);
        assert!(html.contains("onetrust.com/cmp.js"));
    }

    #[test]
    fn distillery_page_embeds_its_own_tag() {
        let reg = build_registry(21);
        let cfg = SiteModelConfig::default();
        let spec = generate_site(21, 1_200, &reg, &cfg);
        assert_eq!(spec.domain.as_str(), "distillery.com");
        let html = render(&reg, &spec, true);
        assert!(html.contains("https://distillery.com/tag.js"));
    }

    #[test]
    fn parent_frame_documents() {
        assert!(render_parent_frame(true).contains("topics js"));
        assert!(!render_parent_frame(false).contains("topics"));
    }
}
