//! Consent Management Platforms.
//!
//! CMPs are the commercial products websites embed to run their privacy
//! banner and gate third parties on consent (§5). The paper identifies a
//! site's CMP Wappalyzer-style — by the CMP's domain appearing among the
//! page's objects — and shows (Figure 7) that questionable Before-Accept
//! Topics calls are roughly independent of the CMP in use, *except* that
//! HubSpot (and to a lesser degree LiveRamp) sites are ~2–3× more likely
//! to leak calls, i.e. those CMPs do a worse job of gating the Topics API.
//!
//! Each CMP here has a market share (driving which sites use it) and a
//! `misconfiguration_rate`: the probability that a site using it fails to
//! gate its third parties before consent. The Figure 7 anomaly is encoded
//! as ground-truth *behaviour* (worse gating), and the measured
//! conditional probabilities then emerge from the crawl.

use topics_net::domain::Domain;

/// Identifier of a CMP in the registry (index into [`CMPS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmpId(pub usize);

/// Static description of one CMP product.
#[derive(Debug, Clone)]
pub struct CmpSpec {
    /// Product name as shown in Figure 7.
    pub name: &'static str,
    /// The domain whose presence identifies the CMP (Wappalyzer-style).
    pub domain: &'static str,
    /// Share of *CMP-using* sites that pick this CMP (weights; they are
    /// normalised at sampling time).
    pub market_weight: u32,
    /// Probability that a site using this CMP fails to gate third
    /// parties before consent. The fleet average is ≈6%; HubSpot ≈12%
    /// and LiveRamp ≈11% reproduce the paper's outliers.
    pub misconfiguration_rate: f64,
    /// True for CMPs whose Google-Consent-Mode integration is broken on
    /// a large share of sites, so GTM's consent-gated tags (including
    /// the Topics-calling one) fire before consent. This is the
    /// behavioural root of Figure 7's HubSpot/LiveRamp anomaly.
    pub breaks_consent_mode: bool,
}

/// The fifteen CMPs of Figure 7, with OneTrust the clear market leader.
pub const CMPS: [CmpSpec; 15] = [
    CmpSpec {
        name: "OneTrust",
        domain: "onetrust.com",
        market_weight: 300,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "HubSpot",
        domain: "hubspot.com",
        market_weight: 95,
        misconfiguration_rate: 0.12,
        breaks_consent_mode: true,
    },
    CmpSpec {
        name: "LiveRamp",
        domain: "liveramp.com",
        market_weight: 55,
        misconfiguration_rate: 0.11,
        breaks_consent_mode: true,
    },
    CmpSpec {
        name: "Cookiebot",
        domain: "cookiebot.com",
        market_weight: 140,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "TrustArc",
        domain: "trustarc.com",
        market_weight: 90,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Didomi",
        domain: "didomi.io",
        market_weight: 85,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Sourcepoint",
        domain: "sourcepoint.com",
        market_weight: 70,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Osano",
        domain: "osano.com",
        market_weight: 55,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Iubenda",
        domain: "iubenda.com",
        market_weight: 55,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "CookieYes",
        domain: "cookieyes.com",
        market_weight: 50,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Usercentrics",
        domain: "usercentrics.eu",
        market_weight: 45,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "CookieScript",
        domain: "cookie-script.com",
        market_weight: 35,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Civic",
        domain: "civiccomputing.com",
        market_weight: 30,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "Cookie Information",
        domain: "cookieinformation.com",
        market_weight: 25,
        misconfiguration_rate: 0.055,
        breaks_consent_mode: false,
    },
    CmpSpec {
        name: "SFBX",
        domain: "sfbx.io",
        market_weight: 20,
        misconfiguration_rate: 0.05,
        breaks_consent_mode: false,
    },
];

impl CmpId {
    /// The spec for this id.
    pub fn spec(self) -> &'static CmpSpec {
        &CMPS[self.0]
    }

    /// The CMP's identifying domain, parsed.
    pub fn domain(self) -> Domain {
        Domain::parse(self.spec().domain).expect("static CMP domains are valid")
    }
}

/// Sample a CMP by market weight from a uniform draw in `[0, 1)`.
pub fn sample_cmp(unit: f64) -> CmpId {
    let total: u32 = CMPS.iter().map(|c| c.market_weight).sum();
    let mut pick = (unit * f64::from(total)) as u32;
    for (i, c) in CMPS.iter().enumerate() {
        if pick < c.market_weight {
            return CmpId(i);
        }
        pick -= c.market_weight;
    }
    CmpId(0)
}

/// Find a CMP by its identifying domain (registrable-domain match) —
/// how the analysis side recognises a CMP among loaded objects.
pub fn cmp_by_domain(domain: &Domain) -> Option<CmpId> {
    let reg = topics_net::psl::registrable_domain(domain);
    CMPS.iter()
        .position(|c| c.domain == reg.as_str())
        .map(CmpId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_cmps_match_figure_7() {
        assert_eq!(CMPS.len(), 15);
        assert_eq!(CMPS[0].name, "OneTrust");
        // OneTrust has the largest market weight.
        assert!(CMPS
            .iter()
            .all(|c| c.market_weight <= CMPS[0].market_weight));
    }

    #[test]
    fn hubspot_and_liveramp_are_the_misconfiguration_outliers() {
        let avg: f64 = CMPS.iter().map(|c| c.misconfiguration_rate).sum::<f64>() / 15.0;
        let hubspot = CMPS.iter().find(|c| c.name == "HubSpot").unwrap();
        let liveramp = CMPS.iter().find(|c| c.name == "LiveRamp").unwrap();
        assert!(hubspot.misconfiguration_rate > 1.8 * avg);
        assert!(liveramp.misconfiguration_rate > 1.6 * avg);
        for c in &CMPS {
            if c.name != "HubSpot" && c.name != "LiveRamp" {
                assert!(c.misconfiguration_rate < 0.07, "{} too leaky", c.name);
            }
        }
    }

    #[test]
    fn sampling_covers_all_and_respects_weights() {
        let mut counts = [0u32; 15];
        let n = 50_000;
        for i in 0..n {
            let u = (i as f64 + 0.5) / n as f64;
            counts[sample_cmp(u).0] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "every CMP sampled");
        let total: u32 = CMPS.iter().map(|c| c.market_weight).sum();
        for (i, c) in CMPS.iter().enumerate() {
            let expected = f64::from(c.market_weight) / f64::from(total);
            let got = f64::from(counts[i]) / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "{}: {got} vs {expected}",
                c.name
            );
        }
    }

    #[test]
    fn domain_lookup_roundtrip() {
        for (i, spec) in CMPS.iter().enumerate() {
            let id = CmpId(i);
            assert_eq!(cmp_by_domain(&id.domain()), Some(id));
            // Subdomains also identify the CMP (cdn.onetrust.com etc.).
            let sub = Domain::parse(&format!("cdn.{}", spec.domain)).unwrap();
            assert_eq!(cmp_by_domain(&sub), Some(id));
        }
        assert_eq!(
            cmp_by_domain(&Domain::parse("unrelated.com").unwrap()),
            None
        );
    }
}
