//! Site languages and consent-banner phrasing.
//!
//! Priv-Accept (the consent-clicking tool the paper builds on) matches
//! accept-button keywords in five languages — English, French, Spanish,
//! German and Italian — with 92–95% reported accuracy. The synthetic web
//! therefore writes its banners in a *language determined by the site's
//! TLD*, using standard phrasing most of the time and quirky phrasing on a
//! small fraction of sites, so the crawler's detection accuracy emerges
//! from the text rather than being stipulated.

use topics_net::domain::Domain;
use topics_net::psl::public_suffix;
use topics_net::seed;

/// Site languages present in the synthetic web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// English — supported by Priv-Accept.
    English,
    /// French — supported.
    French,
    /// Spanish — supported.
    Spanish,
    /// German — supported.
    German,
    /// Italian — supported.
    Italian,
    /// Russian — NOT supported by Priv-Accept.
    Russian,
    /// Japanese — not supported.
    Japanese,
    /// Polish — not supported.
    Polish,
    /// Dutch — not supported.
    Dutch,
    /// Portuguese — not supported.
    Portuguese,
    /// Anything else — not supported.
    OtherLanguage,
}

impl Language {
    /// True for the five languages Priv-Accept's keyword lists cover.
    pub fn priv_accept_supported(self) -> bool {
        matches!(
            self,
            Language::English
                | Language::French
                | Language::Spanish
                | Language::German
                | Language::Italian
        )
    }

    /// The standard accept-button phrase for the language (the text most
    /// real banners use, which keyword matching is tuned for).
    pub fn standard_accept_phrase(self) -> &'static str {
        match self {
            Language::English => "Accept all cookies",
            Language::French => "Tout accepter",
            Language::Spanish => "Aceptar todo",
            Language::German => "Alle akzeptieren",
            Language::Italian => "Accetta tutti",
            Language::Russian => "Принять все",
            Language::Japanese => "すべて同意する",
            Language::Polish => "Zaakceptuj wszystkie",
            Language::Dutch => "Alles accepteren",
            Language::Portuguese => "Aceitar tudo",
            Language::OtherLanguage => "Continue with all features",
        }
    }

    /// A quirky accept phrase that evades keyword matching even in
    /// supported languages (the 5–8% Priv-Accept misses).
    pub fn quirky_accept_phrase(self) -> &'static str {
        match self {
            Language::English => "Sounds good!",
            Language::French => "C'est parti",
            Language::Spanish => "¡Vale, adelante!",
            Language::German => "Weiter geht's",
            Language::Italian => "Va bene così",
            _ => "OK →",
        }
    }

    /// The standard reject-button phrase for the language.
    pub fn standard_reject_phrase(self) -> &'static str {
        match self {
            Language::English => "Reject all",
            Language::French => "Tout refuser",
            Language::Spanish => "Rechazar todo",
            Language::German => "Alle ablehnen",
            Language::Italian => "Rifiuta tutto",
            Language::Russian => "Отклонить все",
            Language::Japanese => "すべて拒否する",
            Language::Polish => "Odrzuć wszystkie",
            Language::Dutch => "Alles weigeren",
            Language::Portuguese => "Rejeitar tudo",
            Language::OtherLanguage => "No thanks",
        }
    }

    /// A banner prose snippet in the language (used for container text).
    pub fn banner_prose(self) -> &'static str {
        match self {
            Language::English => "We and our partners use cookies to personalise ads.",
            Language::French => "Nous utilisons des cookies pour personnaliser les annonces.",
            Language::Spanish => "Usamos cookies para personalizar los anuncios.",
            Language::German => "Wir verwenden Cookies, um Anzeigen zu personalisieren.",
            Language::Italian => "Utilizziamo i cookie per personalizzare gli annunci.",
            Language::Russian => "Мы используем файлы cookie для персонализации рекламы.",
            Language::Japanese => "広告をパーソナライズするためにクッキーを使用します。",
            Language::Polish => "Używamy plików cookie do personalizacji reklam.",
            Language::Dutch => "Wij gebruiken cookies om advertenties te personaliseren.",
            Language::Portuguese => "Usamos cookies para personalizar anúncios.",
            Language::OtherLanguage => "This site uses cookies.",
        }
    }
}

/// Determine a site's language from its TLD plus a per-site draw (a `.com`
/// site is usually — but not always — English).
pub fn site_language(domain: &Domain, seed_val: u64) -> Language {
    let suffix = public_suffix(domain);
    let cc = suffix.rsplit('.').next().unwrap_or(suffix);
    let roll = seed::unit_f64(seed::derive(seed_val, domain.as_str()));
    match cc {
        "com" | "io" | "co" | "info" | "biz" | "org" | "net" => {
            if roll < 0.85 {
                Language::English
            } else if roll < 0.90 {
                Language::Spanish
            } else if roll < 0.93 {
                Language::German
            } else {
                Language::OtherLanguage
            }
        }
        "uk" | "au" | "ca" | "in" => Language::English,
        "fr" => Language::French,
        "de" | "at" | "ch" => Language::German,
        "es" | "mx" => Language::Spanish,
        "it" => Language::Italian,
        "ru" => Language::Russian,
        "jp" => Language::Japanese,
        "pl" => Language::Polish,
        "nl" | "be" => Language::Dutch,
        "br" | "pt" => Language::Portuguese,
        _ => {
            if roll < 0.5 {
                Language::English
            } else {
                Language::OtherLanguage
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn cc_tlds_map_to_their_language() {
        assert_eq!(site_language(&d("journal.fr"), 1), Language::French);
        assert_eq!(site_language(&d("zeitung.de"), 1), Language::German);
        assert_eq!(site_language(&d("diario.es"), 1), Language::Spanish);
        assert_eq!(site_language(&d("giornale.it"), 1), Language::Italian);
        assert_eq!(site_language(&d("gazeta.ru"), 1), Language::Russian);
        assert_eq!(site_language(&d("shinbun.co.jp"), 1), Language::Japanese);
        assert_eq!(site_language(&d("loja.com.br"), 1), Language::Portuguese);
    }

    #[test]
    fn com_sites_are_mostly_english() {
        let english = (0..2000)
            .filter(|i| site_language(&d(&format!("s{i}.com")), 9) == Language::English)
            .count();
        assert!(
            (1550..1950).contains(&english),
            "expected ~85% English, got {english}/2000"
        );
    }

    #[test]
    fn supported_set_is_the_priv_accept_five() {
        let supported = [
            Language::English,
            Language::French,
            Language::Spanish,
            Language::German,
            Language::Italian,
        ];
        for l in supported {
            assert!(l.priv_accept_supported());
        }
        for l in [
            Language::Russian,
            Language::Japanese,
            Language::Polish,
            Language::Dutch,
            Language::Portuguese,
            Language::OtherLanguage,
        ] {
            assert!(!l.priv_accept_supported());
        }
    }

    #[test]
    fn phrases_are_language_distinct() {
        assert_ne!(
            Language::German.standard_accept_phrase(),
            Language::English.standard_accept_phrase()
        );
        assert_ne!(
            Language::English.standard_accept_phrase(),
            Language::English.quirky_accept_phrase()
        );
    }

    #[test]
    fn language_assignment_is_deterministic() {
        for i in 0..100 {
            let dom = d(&format!("x{i}.com"));
            assert_eq!(site_language(&dom, 5), site_language(&dom, 5));
        }
    }
}
