//! # topics-webgen — the synthetic web ecosystem
//!
//! The paper crawls the live top-50,000 websites; this crate generates a
//! deterministic stand-in. The design rule, documented in DESIGN.md, is
//! that the generator encodes deployment **behaviour** (who embeds whom,
//! who calls the Topics API under what gates, how consent is handled) and
//! never measured outputs: every table and figure of the paper must
//! *emerge* from crawling this world.
//!
//! * [`names`] — deterministic domain names and the TLD mix behind the
//!   paper's Figure 6 region buckets.
//! * [`lang`] — site languages and banner phrasing (driving Priv-Accept's
//!   92–95% detection accuracy).
//! * [`cmp`] — the fifteen Consent Management Platforms of Figure 7, with
//!   HubSpot/LiveRamp as the misconfiguration outliers.
//! * [`parties`] — the ad-platform registry: 193 allowed domains, 12
//!   without attestation, 47 active callers (28 ignoring consent), the
//!   named actors of Figures 2/3/5/6, and `distillery.com`.
//! * [`site`] — per-site ground truth: banners, CMPs, GTM containers
//!   (the §4 anomalous-call engine), sibling ad frames, parent frames,
//!   alias redirects, platform embeds, minor third parties.
//! * [`render`] — page/script rendering with server-side consent gating.
//! * [`world`] — the assembled [`world::World`], a
//!   [`topics_net::NetworkService`] the browser can crawl.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cmp;
pub mod lang;
pub mod names;
pub mod parties;
pub mod render;
pub mod site;
pub mod world;

pub use cmp::{CmpId, CmpSpec, CMPS};
pub use parties::{AdPlatform, ApiStyle, Experiment, RegistryScenario};
pub use site::{SiteModelConfig, SiteSpec};
pub use world::{World, WorldConfig};
