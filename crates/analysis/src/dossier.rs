//! Per-CP dossier — everything the campaign knows about one calling
//! party.
//!
//! The paper's stated goal includes "improv[ing] practitioners'
//! awareness"; this is the tool for it: given a calling party's domain,
//! assemble its classification, presence, per-dataset calling behaviour,
//! experiment-arm fit, call types, regional footprint and attestation
//! details into one report.

use crate::abtest::fit_fraction;
use crate::dataset::{DatasetId, Datasets};
use crate::report::{pct, Table};
use std::collections::BTreeSet;
use topics_browser::observer::CallType;
use topics_net::domain::Domain;
use topics_net::psl::registrable_domain;
use topics_net::region::Region;

/// Behaviour of one CP in one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DatasetBehaviour {
    /// Websites where the CP was present.
    pub present: usize,
    /// Websites where it called.
    pub calling_sites: usize,
    /// Total executed calls.
    pub calls: usize,
    /// Calls by type (JavaScript, Fetch, IFrame).
    pub by_type: [usize; 3],
}

/// The assembled dossier.
#[derive(Debug, Clone)]
pub struct Dossier {
    /// The CP (registrable domain).
    pub cp: Domain,
    /// On the allow-list?
    pub allowed: bool,
    /// Valid attestation served?
    pub attested: bool,
    /// Attestation issue date, when attested.
    pub attestation_issued: Option<topics_net::clock::Timestamp>,
    /// Behaviour per dataset, in `[BeforeAccept, AfterAccept,
    /// AfterReject]` order.
    pub behaviour: [DatasetBehaviour; 3],
    /// Presence per region over D_BA ([`Region::ALL`] order).
    pub presence_by_region: [usize; 5],
    /// Calling sites per region over D_BA.
    pub calling_by_region: [usize; 5],
    /// Websites on which the CP called in D_AA (sample, ≤10).
    pub example_sites: Vec<Domain>,
}

const DATASETS: [DatasetId; 3] = [
    DatasetId::BeforeAccept,
    DatasetId::AfterAccept,
    DatasetId::AfterReject,
];

/// Build the dossier for one CP (the domain is normalised to its
/// registrable form).
pub fn dossier(ds: &Datasets<'_>, cp: &Domain) -> Dossier {
    let cp = registrable_domain(cp);
    let class = ds.classify(&cp);
    let attestation_issued = ds
        .outcome()
        .attestation_probes
        .iter()
        .find(|p| p.domain == cp)
        .and_then(|p| p.valid.as_ref())
        .map(|v| v.issued);

    let mut behaviour = [DatasetBehaviour::default(); 3];
    let mut example_sites: Vec<Domain> = Vec::new();
    let mut presence_by_region = [0usize; 5];
    let mut calling_by_region = [0usize; 5];

    for (slot, id) in DATASETS.into_iter().enumerate() {
        let mut calling_sites: BTreeSet<&Domain> = BTreeSet::new();
        for v in ds.visits(id) {
            let present = v.has_party(&cp) || v.website == cp;
            if !present {
                continue;
            }
            behaviour[slot].present += 1;
            let mut called_here = false;
            for c in v.topics_calls.iter().filter(|c| c.permitted()) {
                if c.caller_site == cp {
                    called_here = true;
                    behaviour[slot].calls += 1;
                    let t = match c.call_type {
                        CallType::JavaScript => 0,
                        CallType::Fetch => 1,
                        CallType::Iframe => 2,
                    };
                    behaviour[slot].by_type[t] += 1;
                }
            }
            if called_here {
                calling_sites.insert(&v.website);
                if id == DatasetId::AfterAccept && example_sites.len() < 10 {
                    example_sites.push(v.website.clone());
                }
            }
            if id == DatasetId::BeforeAccept {
                let ridx = Region::ALL
                    .iter()
                    .position(|r| *r == Region::of(&v.website))
                    .expect("region");
                presence_by_region[ridx] += 1;
                if called_here {
                    calling_by_region[ridx] += 1;
                }
            }
        }
        behaviour[slot].calling_sites = calling_sites.len();
    }

    Dossier {
        cp,
        allowed: class.allowed,
        attested: class.attested,
        attestation_issued,
        behaviour,
        presence_by_region,
        calling_by_region,
        example_sites,
    }
}

impl Dossier {
    /// Enabled fraction over D_AA (the Figure 3 notion).
    pub fn enabled_fraction_aa(&self) -> f64 {
        let b = &self.behaviour[1];
        if b.present == 0 {
            0.0
        } else {
            b.calling_sites as f64 / b.present as f64
        }
    }

    /// Render the dossier as text.
    pub fn render(&self) -> String {
        let mut out = format!("== Dossier: {} ==\n", self.cp);
        out.push_str(&format!(
            "allowed: {}   attested: {}   attestation issued: {}\n",
            self.allowed,
            self.attested,
            self.attestation_issued
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
        let mut t = Table::new([
            "dataset",
            "present",
            "calling sites",
            "calls",
            "JS",
            "Fetch",
            "IFrame",
        ]);
        for (label, b) in [
            ("Before-Accept", &self.behaviour[0]),
            ("After-Accept", &self.behaviour[1]),
            ("After-Reject", &self.behaviour[2]),
        ] {
            t.row(vec![
                label.to_owned(),
                b.present.to_string(),
                b.calling_sites.to_string(),
                b.calls.to_string(),
                b.by_type[0].to_string(),
                b.by_type[1].to_string(),
                b.by_type[2].to_string(),
            ]);
        }
        out.push_str(&t.render());

        let f = self.enabled_fraction_aa();
        if self.behaviour[1].calling_sites > 0 {
            let fit = fit_fraction(f);
            out.push_str(&format!(
                "enabled fraction (D_AA): {} — nearest experiment arm {:.0}% (Δ {:.3})\n",
                pct(f),
                fit.nearest * 100.0,
                fit.distance
            ));
        }

        let mut geo = Table::new(["region", "present (D_BA)", "calling", "enabled"]);
        for (i, region) in Region::ALL.iter().enumerate() {
            let present = self.presence_by_region[i];
            let calling = self.calling_by_region[i];
            geo.row(vec![
                region.label().to_owned(),
                present.to_string(),
                calling.to_string(),
                if present == 0 {
                    "-".into()
                } else {
                    pct(calling as f64 / present as f64)
                },
            ]);
        }
        out.push_str(&geo.render());

        if !self.example_sites.is_empty() {
            out.push_str("example calling sites (D_AA): ");
            out.push_str(
                &self
                    .example_sites
                    .iter()
                    .map(|d| d.as_str())
                    .collect::<Vec<_>>()
                    .join(", "),
            );
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{d, tiny_outcome};

    #[test]
    fn dossier_for_a_legitimate_platform() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let dos = dossier(&ds, &d("goodads.com"));
        assert!(dos.allowed);
        assert!(dos.attested);
        assert!(dos.attestation_issued.is_some());
        // goodads: present on site-c in D_BA (never calls), on site-a and
        // site-c in D_AA, calling on both via Fetch.
        assert_eq!(dos.behaviour[0].present, 1);
        assert_eq!(dos.behaviour[0].calls, 0);
        assert_eq!(dos.behaviour[1].present, 2);
        assert_eq!(dos.behaviour[1].calling_sites, 2);
        assert_eq!(dos.behaviour[1].by_type, [0, 2, 0]);
        assert_eq!(dos.enabled_fraction_aa(), 1.0);
        let text = dos.render();
        assert!(text.contains("goodads.com"));
        assert!(text.contains("After-Accept"));
    }

    #[test]
    fn dossier_for_a_violator() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let dos = dossier(&ds, &d("frame.violator.com"));
        assert_eq!(dos.cp.as_str(), "violator.com", "normalised to eTLD+1");
        // Calls on both D_BA sites, JavaScript type.
        assert_eq!(dos.behaviour[0].calling_sites, 2);
        assert_eq!(dos.behaviour[0].by_type[0], 2);
        // Regional split: one .com site, one .ru site.
        let com = Region::ALL.iter().position(|r| *r == Region::Com).unwrap();
        let ru = Region::ALL
            .iter()
            .position(|r| *r == Region::Russia)
            .unwrap();
        assert_eq!(dos.presence_by_region[com], 1);
        assert_eq!(dos.calling_by_region[ru], 1);
    }

    #[test]
    fn dossier_for_an_unknown_party_is_empty() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let dos = dossier(&ds, &d("never-seen.example.com"));
        assert!(!dos.allowed);
        assert!(!dos.attested);
        assert_eq!(dos.behaviour[0].present, 0);
        assert_eq!(dos.enabled_fraction_aa(), 0.0);
        let _ = dos.render();
    }
}
