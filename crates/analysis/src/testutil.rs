//! Hand-built miniature campaign outcomes for unit tests.
//!
//! Integration tests exercise the real crawl pipeline; these fixtures
//! keep the per-module unit tests fast and targeted.

use topics_browser::attestation::AllowDecision;
use topics_browser::observer::CallType;
use topics_crawler::record::{
    AttestationInfo, AttestationProbe, CampaignOutcome, FaultStats, Phase, SiteOutcome,
    TopicsCallRecord, VisitRecord, CAMPAIGN_SCHEMA_VERSION,
};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;

pub(crate) fn d(s: &str) -> Domain {
    Domain::parse(s).unwrap()
}

pub(crate) fn call(
    caller: &str,
    call_type: CallType,
    decision: AllowDecision,
    root: bool,
    script_source: Option<&str>,
) -> TopicsCallRecord {
    TopicsCallRecord {
        caller: d(caller),
        caller_site: topics_net::psl::registrable_domain(&d(caller)),
        call_type,
        root_context: root,
        script_source: script_source.map(d),
        decision,
        topics_returned: 0,
        timestamp: Timestamp(1),
    }
}

pub(crate) fn visit(
    phase: Phase,
    website: &str,
    final_website: &str,
    parties: &[&str],
    calls: Vec<TopicsCallRecord>,
    banner: bool,
) -> VisitRecord {
    let mut party_domains = vec![d(website)];
    if final_website != website {
        party_domains.push(d(final_website));
    }
    party_domains.extend(parties.iter().map(|p| d(p)));
    VisitRecord {
        phase,
        website: d(website),
        final_website: d(final_website),
        party_domains,
        object_count: parties.len() + 1,
        failed_objects: 0,
        topics_calls: calls,
        banner_found: banner,
        started: Timestamp(0),
        duration_ms: 700,
    }
}

/// Three sites:
/// * `site-a.com` — HubSpot CMP, GTM anomalous caller (root JS from the
///   site's own origin), a questionable Before-Accept call by
///   `violator.com`, and legit After-Accept calls by `goodads.com`
///   (plus one blocked rogue call).
/// * `site-b.ru` — no banner; `violator.com` calls Before-Accept.
/// * `site-c.de` — OneTrust CMP, clean; After-Accept call by
///   `goodads.com`.
pub(crate) fn tiny_outcome() -> CampaignOutcome {
    let goodads_aa = || {
        call(
            "ads.goodads.com",
            CallType::Fetch,
            AllowDecision::AllowedFailOpen,
            true,
            Some("static.goodads.com"),
        )
    };
    let gtm_anomalous = |site: &str| {
        call(
            site,
            CallType::JavaScript,
            AllowDecision::AllowedFailOpen,
            true,
            Some("www.googletagmanager.com"),
        )
    };
    let violator_ba = || {
        call(
            "frame.violator.com",
            CallType::JavaScript,
            AllowDecision::AllowedFailOpen,
            false,
            None,
        )
    };
    let blocked = || {
        call(
            "rogue.net",
            CallType::JavaScript,
            AllowDecision::BlockedNotEnrolled,
            true,
            None,
        )
    };

    let sites = vec![
        SiteOutcome {
            rank: 0,
            website: d("site-a.com"),
            before: Some(visit(
                Phase::BeforeAccept,
                "site-a.com",
                "site-a.com",
                &["hubspot.com", "googletagmanager.com", "violator.com"],
                vec![violator_ba(), gtm_anomalous("www.site-a.com")],
                true,
            )),
            after: Some(visit(
                Phase::AfterAccept,
                "site-a.com",
                "site-a.com",
                &[
                    "hubspot.com",
                    "googletagmanager.com",
                    "goodads.com",
                    "violator.com",
                ],
                vec![goodads_aa(), gtm_anomalous("www.site-a.com"), blocked()],
                false,
            )),
            error: None,
            faults: FaultStats::default(),
        },
        SiteOutcome {
            rank: 1,
            website: d("site-b.ru"),
            before: Some(visit(
                Phase::BeforeAccept,
                "site-b.ru",
                "site-b.ru",
                &["violator.com"],
                vec![violator_ba()],
                false,
            )),
            after: None,
            error: None,
            // Exercises the degraded-coverage path: the site stays in
            // D_BA even though its exchanges needed retries.
            faults: FaultStats {
                retries: 2,
                ..FaultStats::default()
            },
        },
        SiteOutcome {
            rank: 2,
            website: d("site-c.de"),
            before: Some(visit(
                Phase::BeforeAccept,
                "site-c.de",
                "site-c.de",
                &["onetrust.com", "goodads.com"],
                vec![],
                true,
            )),
            after: Some(visit(
                Phase::AfterAccept,
                "site-c.de",
                "site-c.de",
                &["onetrust.com", "goodads.com"],
                vec![goodads_aa()],
                false,
            )),
            error: None,
            faults: FaultStats::default(),
        },
        SiteOutcome {
            rank: 3,
            website: d("dead-site.com"),
            before: None,
            after: None,
            error: Some("NXDOMAIN".into()),
            faults: FaultStats::default(),
        },
    ];

    CampaignOutcome {
        schema_version: CAMPAIGN_SCHEMA_VERSION,
        sites,
        allow_list: vec![d("goodads.com"), d("violator.com"), d("unattested-ads.com")],
        attestation_probes: vec![
            AttestationProbe {
                domain: d("goodads.com"),
                valid: Some(AttestationInfo {
                    issued: Timestamp::from_days(20),
                    has_enrollment_site: false,
                }),
            },
            AttestationProbe {
                domain: d("violator.com"),
                valid: Some(AttestationInfo {
                    issued: Timestamp::from_days(120),
                    has_enrollment_site: false,
                }),
            },
            AttestationProbe {
                domain: d("unattested-ads.com"),
                valid: None,
            },
            AttestationProbe {
                domain: d("lonely-attested.org"),
                valid: Some(AttestationInfo {
                    issued: Timestamp::from_days(160),
                    has_enrollment_site: false,
                }),
            },
        ],
        started: Timestamp::from_days(302),
    }
}
