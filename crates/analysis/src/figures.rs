//! Figures 2, 3, 5 and 6 — per-CP presence, enablement, questionable
//! calls, and the geographic breakdown.

use crate::dataset::{DatasetId, Datasets};
use crate::report::{bar_series, pct, Table};
use topics_net::domain::Domain;
use topics_net::region::Region;

/// One row of Figure 2: websites where a CP is present, and the subset
/// where it calls the Topics API (D_AA, Allowed∧Attested CPs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PresenceRow {
    /// The calling party (registrable domain).
    pub cp: Domain,
    /// Websites where the CP is present.
    pub present: usize,
    /// Websites where it called the API.
    pub called: usize,
}

impl PresenceRow {
    /// Fraction of presence sites with a call (Figure 3's "Enabled %").
    pub fn enabled_fraction(&self) -> f64 {
        if self.present == 0 {
            0.0
        } else {
            self.called as f64 / self.present as f64
        }
    }
}

/// Presence/called counts for every Allowed∧Attested CP in a dataset.
///
/// Presence means any object of the CP's registrable domain was loaded on
/// the page; called means an executed Topics call attributed to it.
pub fn presence_rows(ds: &Datasets<'_>, id: DatasetId) -> Vec<PresenceRow> {
    let idx = ds.index();
    let counts = idx.presence(id);
    let mut rows: Vec<PresenceRow> = idx
        .candidates()
        .iter()
        .map(|cp| {
            let c = counts.get(*cp).copied().unwrap_or_default();
            PresenceRow {
                cp: (*cp).clone(),
                present: c.present,
                called: c.called,
            }
        })
        .filter(|r| r.present > 0)
        .collect();
    rows.sort_by(|a, b| b.present.cmp(&a.present).then(a.cp.cmp(&b.cp)));
    rows
}

/// Figure 2: the top-N most pervasive Allowed∧Attested CPs in D_AA.
pub fn fig2(ds: &Datasets<'_>, top: usize) -> Vec<PresenceRow> {
    presence_rows(ds, DatasetId::AfterAccept)
        .into_iter()
        .take(top)
        .collect()
}

/// Figure 3: CPs ranked by enabled fraction (among those that call at
/// all), with their presence counts — the A/B-test fractions.
pub fn fig3(ds: &Datasets<'_>, top: usize) -> Vec<PresenceRow> {
    let mut rows: Vec<PresenceRow> = presence_rows(ds, DatasetId::AfterAccept)
        .into_iter()
        .filter(|r| r.called > 0 && r.present >= 20) // small-sample noise guard
        .collect();
    rows.sort_by(|a, b| {
        b.enabled_fraction()
            .partial_cmp(&a.enabled_fraction())
            .expect("fractions are finite")
            .then(a.cp.cmp(&b.cp))
    });
    rows.truncate(top);
    rows
}

/// Render Figure 2 as text.
pub fn render_fig2(rows: &[PresenceRow]) -> String {
    let mut t = Table::new(["CP", "present", "called", "enabled"]);
    for r in rows {
        t.row(vec![
            r.cp.as_str().to_owned(),
            r.present.to_string(),
            r.called.to_string(),
            pct(r.enabled_fraction()),
        ]);
    }
    format!(
        "Figure 2 — websites where a CP is present vs. calling (D_AA)\n{}",
        t.render()
    )
}

/// Render Figure 3 as text.
pub fn render_fig3(rows: &[PresenceRow]) -> String {
    let series: Vec<(&str, f64)> = rows
        .iter()
        .map(|r| (r.cp.as_str(), r.enabled_fraction() * 100.0))
        .collect();
    let mut out = bar_series(
        "Figure 3 — enabled % per CP (D_AA); top row = presence count",
        series.iter().map(|(l, v)| (*l, *v)),
        40,
    );
    out.push_str("presence: ");
    out.push_str(
        &rows
            .iter()
            .map(|r| format!("{}={}", r.cp, r.present))
            .collect::<Vec<_>>()
            .join(" "),
    );
    out.push('\n');
    out
}

/// One row of Figure 5: questionable Before-Accept calls per
/// Allowed∧Attested CP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuestionableRow {
    /// The CP.
    pub cp: Domain,
    /// Websites with at least one Before-Accept call by this CP.
    pub websites: usize,
}

/// Figure 5: Allowed∧Attested CPs calling in D_BA, by website count.
pub fn fig5(ds: &Datasets<'_>, top: usize) -> Vec<QuestionableRow> {
    let idx = ds.index();
    let mut rows: Vec<QuestionableRow> = idx
        .calling_sites(DatasetId::BeforeAccept)
        .iter()
        .filter(|(cp, _)| {
            let class = idx.classify(cp);
            class.allowed && class.attested
        })
        .map(|(cp, sites)| QuestionableRow {
            cp: (**cp).clone(),
            websites: sites.len(),
        })
        .collect();
    rows.sort_by(|a, b| b.websites.cmp(&a.websites).then(a.cp.cmp(&b.cp)));
    rows.truncate(top);
    rows
}

/// Render Figure 5 as text.
pub fn render_fig5(rows: &[QuestionableRow]) -> String {
    let series: Vec<(&str, f64)> = rows
        .iter()
        .map(|r| (r.cp.as_str(), r.websites as f64))
        .collect();
    bar_series(
        "Figure 5 — questionable Before-Accept calls by Allowed & Attested CPs (D_BA)",
        series.iter().map(|(l, v)| (*l, *v)),
        40,
    )
}

/// Figure 6: for selected CPs, presence and enabled % per website region.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoRow {
    /// The CP.
    pub cp: Domain,
    /// Per-region `(present, called)` counts, [`Region::ALL`] order.
    pub by_region: [(usize, usize); 5],
}

impl GeoRow {
    /// Enabled fraction in one region.
    pub fn enabled(&self, region: Region) -> f64 {
        let idx = Region::ALL
            .iter()
            .position(|r| *r == region)
            .expect("region");
        let (present, called) = self.by_region[idx];
        if present == 0 {
            0.0
        } else {
            called as f64 / present as f64
        }
    }
}

/// Figure 6 over D_BA for the given CPs (the paper uses the top-4
/// questionable CPs).
pub fn fig6(ds: &Datasets<'_>, cps: &[Domain]) -> Vec<GeoRow> {
    let mut rows: Vec<GeoRow> = cps
        .iter()
        .map(|cp| GeoRow {
            cp: cp.clone(),
            by_region: [(0, 0); 5],
        })
        .collect();
    let index = ds.index();
    for (v, tags) in index
        .visits(DatasetId::BeforeAccept)
        .iter()
        .zip(index.ba_tags())
    {
        let idx = Region::ALL
            .iter()
            .position(|r| *r == tags.region)
            .expect("region");
        for row in rows.iter_mut() {
            if v.has_party(&row.cp) {
                row.by_region[idx].0 += 1;
                if v.topics_calls
                    .iter()
                    .any(|c| c.permitted() && c.caller_site == row.cp)
                {
                    row.by_region[idx].1 += 1;
                }
            }
        }
    }
    rows
}

/// Render Figure 6 as text.
pub fn render_fig6(rows: &[GeoRow]) -> String {
    let mut t = Table::new(["CP", ".com", ".jp", ".ru", "EU", "Other"]);
    for r in rows {
        let mut cells = vec![r.cp.as_str().to_owned()];
        for (i, region) in Region::ALL.iter().enumerate() {
            let (present, _) = r.by_region[i];
            cells.push(format!("{} ({present})", pct(r.enabled(*region))));
        }
        t.row(cells);
    }
    format!(
        "Figure 6 — enabled % (presence) per website region (D_BA)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{d, tiny_outcome};

    #[test]
    fn fig2_counts_presence_and_calls() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let rows = fig2(&ds, 10);
        // goodads.com present on site-a and site-c in D_AA, calling on both.
        let goodads = rows
            .iter()
            .find(|r| r.cp.as_str() == "goodads.com")
            .unwrap();
        assert_eq!(goodads.present, 2);
        assert_eq!(goodads.called, 2);
        assert_eq!(goodads.enabled_fraction(), 1.0);
        // violator.com present on site-a in D_AA but never calls there.
        let violator = rows
            .iter()
            .find(|r| r.cp.as_str() == "violator.com")
            .unwrap();
        assert_eq!(violator.present, 1);
        assert_eq!(violator.called, 0);
    }

    #[test]
    fn fig3_filters_small_samples() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        // presence counts are tiny (<20), so fig3 is empty on the fixture.
        assert!(fig3(&ds, 10).is_empty());
    }

    #[test]
    fn fig5_ranks_questionable_cps() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let rows = fig5(&ds, 10);
        assert_eq!(rows.len(), 1, "only violator.com is Allowed∧Attested");
        assert_eq!(rows[0].cp.as_str(), "violator.com");
        assert_eq!(rows[0].websites, 2, "site-a and site-b");
    }

    #[test]
    fn fig6_buckets_by_region() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let rows = fig6(&ds, &[d("violator.com")]);
        let row = &rows[0];
        let idx = |r: Region| Region::ALL.iter().position(|x| *x == r).unwrap();
        assert_eq!(row.by_region[idx(Region::Com)], (1, 1)); // site-a.com
        assert_eq!(row.by_region[idx(Region::Russia)], (1, 1)); // site-b.ru
        assert_eq!(row.by_region[idx(Region::Japan)], (0, 0));
        assert_eq!(row.enabled(Region::Com), 1.0);
        assert_eq!(row.enabled(Region::Japan), 0.0);
    }

    #[test]
    fn renders_do_not_panic_and_mention_cps() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let f2 = render_fig2(&fig2(&ds, 5));
        assert!(f2.contains("goodads.com"));
        let f5 = render_fig5(&fig5(&ds, 5));
        assert!(f5.contains("violator.com"));
        let f6 = render_fig6(&fig6(&ds, &[d("violator.com")]));
        assert!(f6.contains(".ru"));
        let _ = render_fig3(&fig3(&ds, 5));
    }
}
