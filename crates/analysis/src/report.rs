//! Plain-text rendering of tables and bar series.
//!
//! The benchmark harness and the examples print every reproduced table
//! and figure with these helpers, so the output can be compared
//! side-by-side with the paper.

/// A simple column-aligned text table.
///
/// ```
/// use topics_analysis::report::Table;
///
/// let mut t = Table::new(["cp", "calls"]);
/// t.row(vec!["criteo.com".into(), "1387".into()]);
/// assert!(t.render().contains("criteo.com"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header count).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }
}

/// Render a horizontal bar for a value within `[0, max]`.
pub fn hbar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 || width == 0 {
        return String::new();
    }
    let filled = ((value / max) * width as f64).round() as usize;
    let filled = filled.min(width);
    let mut s = String::with_capacity(width);
    for _ in 0..filled {
        s.push('█');
    }
    for _ in filled..width {
        s.push('·');
    }
    s
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Render a labelled bar series (a text "figure").
pub fn bar_series<'a, I>(title: &str, rows: I, width: usize) -> String
where
    I: IntoIterator<Item = (&'a str, f64)>,
{
    let rows: Vec<(&str, f64)> = rows.into_iter().collect();
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        let pad = " ".repeat(label_w - label.chars().count());
        out.push_str(&format!(
            "{label}{pad}  {}  {value:.1}\n",
            hbar(value, max, width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(["name", "count"]);
        t.row(vec!["a-long-name".into(), "5".into()]);
        t.row(vec!["x".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "count" column starts at the same offset.
        let col = lines[0].find("count").unwrap();
        assert_eq!(&lines[2][col..col + 1], "5");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn hbar_bounds() {
        assert_eq!(hbar(0.0, 10.0, 4), "····");
        assert_eq!(hbar(10.0, 10.0, 4), "████");
        assert_eq!(hbar(5.0, 10.0, 4), "██··");
        assert_eq!(hbar(20.0, 10.0, 4), "████", "clamped");
        assert_eq!(hbar(1.0, 0.0, 4), "", "degenerate max");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.4567), "45.7%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn bar_series_renders_each_row() {
        let s = bar_series("Figure X", [("alpha", 10.0), ("beta", 5.0)], 10);
        assert!(s.starts_with("Figure X\n"));
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
        assert_eq!(s.lines().count(), 3);
    }
}
