//! Dataset views over a campaign outcome.
//!
//! The paper works with two datasets: **D_BA** (every successfully
//! visited site's Before-Accept visit; 43,405 sites at paper scale) and
//! **D_AA** (the After-Accept visits of the ~30% of sites whose banner
//! Priv-Accept accepted; 14,719 sites). This module provides iteration
//! over both, the Allowed/Attested classification of calling parties, and
//! the aggregate counts quoted in §2.4.

use crate::index::CampaignIndex;
use std::collections::BTreeSet;
use topics_crawler::record::{
    CampaignOutcome, OutcomeCounts, TopicsCallRecord, VisitOutcome, VisitRecord,
};
use topics_net::domain::Domain;

/// Which dataset a query runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// Before-Accept visits of all visited sites.
    BeforeAccept,
    /// After-Accept visits of consented sites.
    AfterAccept,
    /// After-Reject visits of the opt-out experiment (an extension
    /// beyond the paper's protocol).
    AfterReject,
}

/// The paper's two-axis classification of a calling party.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpClass {
    /// On the attestation allow-list.
    pub allowed: bool,
    /// Serves a valid attestation file.
    pub attested: bool,
}

/// Analysis wrapper around a campaign outcome.
///
/// Construction builds a [`CampaignIndex`] in one pass, so every query
/// (and every figure/table module consuming the wrapper) reads the
/// shared index instead of re-scanning the outcome.
pub struct Datasets<'a> {
    outcome: &'a CampaignOutcome,
    index: CampaignIndex<'a>,
    index_alloc: topics_obs::AllocDelta,
}

impl<'a> Datasets<'a> {
    /// Wrap a campaign outcome (builds the one-pass index).
    pub fn new(outcome: &'a CampaignOutcome) -> Datasets<'a> {
        // Measure what the one-pass index costs in heap — the number the
        // columnar-store roadmap item has to beat. Zero unless the
        // counting allocator is enabled.
        let aspan = topics_obs::AllocSpan::start();
        let index = CampaignIndex::new(outcome);
        Datasets {
            outcome,
            index,
            index_alloc: aspan.finish(),
        }
    }

    /// Heap allocated while building the one-pass index (all-zero
    /// unless the counting allocator was enabled during construction).
    pub fn index_alloc(&self) -> topics_obs::AllocDelta {
        self.index_alloc
    }

    /// The underlying outcome.
    pub fn outcome(&self) -> &'a CampaignOutcome {
        self.outcome
    }

    /// The shared one-pass index.
    pub fn index(&self) -> &CampaignIndex<'a> {
        &self.index
    }

    /// Iterate over the visits of a dataset, with the ranked website.
    pub fn visits(&self, id: DatasetId) -> impl Iterator<Item = &'a VisitRecord> + '_ {
        self.index.visits(id).iter().copied()
    }

    /// Number of sites in a dataset.
    pub fn len(&self, id: DatasetId) -> usize {
        self.index.visits(id).len()
    }

    /// True when the dataset has no visits.
    pub fn is_empty(&self, id: DatasetId) -> bool {
        self.index.visits(id).is_empty()
    }

    /// All *executed* Topics calls of a dataset, paired with the website
    /// they happened on. Blocked calls (healthy allow-list setups) are
    /// excluded: the paper's instrumentation only sees executed calls.
    pub fn calls(
        &self,
        id: DatasetId,
    ) -> impl Iterator<Item = (&'a Domain, &'a TopicsCallRecord)> + '_ {
        self.index.calls(id).iter().copied()
    }

    /// Classify a calling party (registrable domain).
    pub fn classify(&self, cp: &Domain) -> CpClass {
        self.index.classify(cp)
    }

    /// Distinct calling parties (registrable domains) of a dataset.
    pub fn calling_parties(&self, id: DatasetId) -> BTreeSet<Domain> {
        self.index
            .calling_parties(id)
            .iter()
            .map(|d| (*d).clone())
            .collect()
    }

    /// Distinct third parties across D_BA (§2.4 quotes 19,534 in
    /// addition to the 43,405 first parties).
    pub fn unique_third_parties(&self) -> usize {
        self.index.unique_third_parties()
    }

    /// Median simulated page-load duration of a dataset, in ms.
    pub fn median_visit_duration_ms(&self, id: DatasetId) -> u64 {
        let mut d: Vec<u64> = self.visits(id).map(|v| v.duration_ms).collect();
        if d.is_empty() {
            return 0;
        }
        d.sort_unstable();
        d[d.len() / 2]
    }

    /// Per-outcome site counts (complete / degraded / failed). The
    /// analysis keeps degraded sites — partial data beats no data, as in
    /// the paper's own lossy crawl — but reports surface the count so
    /// rate-style results can be read with the right error bars.
    pub fn outcome_counts(&self) -> OutcomeCounts {
        self.outcome.outcome_counts()
    }

    /// Sites that entered the dataset despite fault-layer intervention
    /// (retries, a per-visit timeout, or a lost second visit).
    pub fn degraded_site_count(&self) -> usize {
        self.outcome
            .sites
            .iter()
            .filter(|s| s.outcome() == VisitOutcome::Degraded)
            .count()
    }

    /// Fraction of *visited* sites whose records are degraded — the
    /// number a report quotes next to any rate computed from D_BA/D_AA
    /// under fault injection.
    pub fn degraded_share(&self) -> f64 {
        let visited = self.outcome.visited_count();
        if visited == 0 {
            return 0.0;
        }
        self.degraded_site_count() as f64 / visited as f64
    }

    /// Share of a dataset's websites with at least one executed call
    /// from an Allowed∧Attested CP (§3: ≈45% for D_AA).
    pub fn legitimate_coverage(&self, id: DatasetId) -> f64 {
        let total = self.len(id);
        if total == 0 {
            return 0.0;
        }
        let covered = self
            .visits(id)
            .filter(|v| {
                v.topics_calls.iter().any(|c| {
                    c.permitted() && {
                        let class = self.classify(&c.caller_site);
                        class.allowed && class.attested
                    }
                })
            })
            .count();
        covered as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn datasets_split_visits_by_phase() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        assert_eq!(ds.len(DatasetId::BeforeAccept), 3);
        assert_eq!(ds.len(DatasetId::AfterAccept), 2);
        assert!(!ds.is_empty(DatasetId::BeforeAccept));
    }

    #[test]
    fn calls_are_filtered_to_permitted() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        // tiny_outcome has one blocked call in D_AA that must not count.
        let aa: Vec<_> = ds.calls(DatasetId::AfterAccept).collect();
        assert!(aa.iter().all(|(_, c)| c.permitted()));
    }

    #[test]
    fn classification_follows_outcome_labels() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let allowed = Domain::parse("goodads.com").unwrap();
        assert_eq!(
            ds.classify(&allowed),
            CpClass {
                allowed: true,
                attested: true
            }
        );
        let rogue = Domain::parse("site-a.com").unwrap();
        assert_eq!(
            ds.classify(&rogue),
            CpClass {
                allowed: false,
                attested: false
            }
        );
    }

    #[test]
    fn degraded_sites_stay_in_the_dataset_but_are_counted() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        // site-b.ru carries retry stats: still a D_BA member…
        assert_eq!(ds.len(DatasetId::BeforeAccept), 3);
        // …but surfaced as degraded coverage.
        assert_eq!(ds.degraded_site_count(), 1);
        let counts = ds.outcome_counts();
        assert_eq!(counts.degraded, 1);
        assert_eq!(counts.failed, 1);
        assert_eq!(counts.total(), outcome.sites.len());
        let share = ds.degraded_share();
        assert!((share - 1.0 / 3.0).abs() < 1e-9, "{share}");
    }

    #[test]
    fn third_party_universe_counts_distinct_domains() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        assert!(ds.unique_third_parties() >= 2);
    }

    #[test]
    fn legitimate_coverage_counts_aa_sites_with_legit_calls() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let cov = ds.legitimate_coverage(DatasetId::AfterAccept);
        assert!(cov > 0.0 && cov <= 1.0);
    }
}
