//! Typed per-figure queries over a [`ColumnIndex`] — the live-serving
//! counterpart of [`figures`](crate::figures).
//!
//! The batch path materialises row structs (`Datasets` → `CampaignIndex`)
//! and computes each figure from them. A long-running query service
//! holds only the columnar store and its scanned [`ColumnIndex`]; this
//! module answers the column-computable figures (2, 3 and 5) straight
//! from those aggregates, with **zero row-struct materialisation per
//! query**. Each function replicates its `figures` twin exactly —
//! same filters, same sort keys, same tie-breaks — and the tests prove
//! row-for-row equality against the batch path, so a server using
//! these queries serves bytes identical to the offline CSVs.

use crate::dataset::DatasetId;
use crate::figures::{PresenceRow, QuestionableRow};
use crate::ColumnIndex;

/// Per-figure query handles over one scanned column index.
///
/// Construction is free (the index is moved in, not copied); every
/// query allocates only its result rows — domains are `Arc` clones out
/// of the store's interned arena.
#[derive(Debug, Clone)]
pub struct ColumnQueries {
    index: ColumnIndex,
}

/// Dataset → slot mapping shared with `colscan` (D_BA, D_AA, D_AR).
fn slot(id: DatasetId) -> usize {
    match id {
        DatasetId::BeforeAccept => 0,
        DatasetId::AfterAccept => 1,
        DatasetId::AfterReject => 2,
    }
}

impl ColumnQueries {
    /// Wrap a scanned index.
    pub fn new(index: ColumnIndex) -> ColumnQueries {
        ColumnQueries { index }
    }

    /// The underlying index (summary counts, candidate set, …).
    pub fn index(&self) -> &ColumnIndex {
        &self.index
    }

    /// Presence/called counts for every Allowed∧Attested CP in one
    /// dataset — the column twin of `figures::presence_rows`: same
    /// `present > 0` filter, same presence-desc-then-domain sort.
    pub fn presence_rows(&self, id: DatasetId) -> Vec<PresenceRow> {
        let counts = &self.index.presence[slot(id)];
        let mut rows: Vec<PresenceRow> = self
            .index
            .candidates
            .iter()
            .map(|cp| {
                let c = counts.get(cp).copied().unwrap_or_default();
                PresenceRow {
                    cp: cp.clone(),
                    present: c.present,
                    called: c.called,
                }
            })
            .filter(|r| r.present > 0)
            .collect();
        rows.sort_by(|a, b| b.present.cmp(&a.present).then(a.cp.cmp(&b.cp)));
        rows
    }

    /// Figure 2 off the columns: top-N most pervasive Allowed∧Attested
    /// CPs in D_AA.
    pub fn fig2(&self, top: usize) -> Vec<PresenceRow> {
        self.presence_rows(DatasetId::AfterAccept)
            .into_iter()
            .take(top)
            .collect()
    }

    /// Figure 3 off the columns: CPs ranked by enabled fraction, same
    /// `called > 0 && present >= 20` noise guard as the batch path.
    pub fn fig3(&self, top: usize) -> Vec<PresenceRow> {
        let mut rows: Vec<PresenceRow> = self
            .presence_rows(DatasetId::AfterAccept)
            .into_iter()
            .filter(|r| r.called > 0 && r.present >= 20)
            .collect();
        rows.sort_by(|a, b| {
            b.enabled_fraction()
                .partial_cmp(&a.enabled_fraction())
                .expect("fractions are finite")
                .then(a.cp.cmp(&b.cp))
        });
        rows.truncate(top);
        rows
    }

    /// Figure 5 off the columns: Allowed∧Attested CPs calling in D_BA
    /// by distinct-website count. The batch path filters
    /// `classify(cp).allowed && .attested`; in id space that predicate
    /// is exactly membership in the candidate set.
    pub fn fig5(&self, top: usize) -> Vec<QuestionableRow> {
        let mut rows: Vec<QuestionableRow> = self.index.calling_sites
            [slot(DatasetId::BeforeAccept)]
        .iter()
        .filter(|(cp, _)| self.index.candidates.contains(cp))
        .map(|(cp, sites)| QuestionableRow {
            cp: cp.clone(),
            websites: sites.len(),
        })
        .collect();
        rows.sort_by(|a, b| b.websites.cmp(&a.websites).then(a.cp.cmp(&b.cp)));
        rows.truncate(top);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Datasets;
    use crate::testutil::tiny_outcome;
    use crate::{colscan, figures};
    use topics_crawler::columnar::ColumnarCampaign;

    fn queries() -> (ColumnQueries, topics_crawler::record::CampaignOutcome) {
        let outcome = tiny_outcome();
        let store = ColumnarCampaign::from_outcome(&outcome);
        let q = ColumnQueries::new(colscan::scan(&store).unwrap());
        (q, outcome)
    }

    #[test]
    fn column_figures_equal_the_batch_path_row_for_row() {
        let (q, outcome) = queries();
        let ds = Datasets::new(&outcome);
        for id in [
            DatasetId::BeforeAccept,
            DatasetId::AfterAccept,
            DatasetId::AfterReject,
        ] {
            assert_eq!(
                q.presence_rows(id),
                figures::presence_rows(&ds, id),
                "{id:?} presence rows"
            );
        }
        for top in [0, 1, 2, 15] {
            assert_eq!(q.fig2(top), figures::fig2(&ds, top), "fig2 top={top}");
            assert_eq!(q.fig3(top), figures::fig3(&ds, top), "fig3 top={top}");
            assert_eq!(q.fig5(top), figures::fig5(&ds, top), "fig5 top={top}");
        }
    }

    #[test]
    fn fig5_candidate_filter_matches_classification() {
        // The fixture's unattested-ads.com calls in D_BA but fails
        // attestation — it must be filtered out, same as the batch
        // path's allowed∧attested classification.
        let (q, _) = queries();
        let rows = q.fig5(10);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cp.as_str(), "violator.com");
        assert_eq!(rows[0].websites, 2);
    }

    #[test]
    fn queries_expose_the_index_summary() {
        let (q, _) = queries();
        assert_eq!(q.index().visit_counts, [3, 2, 0]);
        assert_eq!(q.index().candidates.len(), 2);
    }
}
