//! One-pass index over a campaign outcome.
//!
//! Every figure/table module used to re-scan all visits and re-derive
//! the Allowed/Attested classification with linear probes into
//! `allow_list` / `attestation_probes`. [`CampaignIndex`] materialises
//! all of that once — per-CP class sets, per-dataset visit and call
//! slices, per-CP presence/calling-site aggregates, and per-site CMP /
//! TLD-region tags — so `report` pays a single pass instead of a dozen.
//!
//! The index borrows from the outcome; every aggregate is defined to
//! reproduce the direct computation bit for bit (see the
//! `index_equivalence` integration suite).

use std::collections::{BTreeMap, BTreeSet};
use topics_crawler::record::{CampaignOutcome, Phase, TopicsCallRecord, VisitRecord};
use topics_net::domain::Domain;
use topics_net::region::Region;
use topics_webgen::cmp::{cmp_by_domain, CmpId};

use crate::dataset::{CpClass, DatasetId};

/// Presence aggregate of one Allowed∧Attested CP in one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresenceCount {
    /// Websites where the CP was present (the Figure 2 notion).
    pub present: usize,
    /// Of those, websites where it also called the API.
    pub called: usize,
}

/// Per-visit tags of a Before-Accept visit (aligned with
/// [`CampaignIndex::visits`] for [`DatasetId::BeforeAccept`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisitTags {
    /// First CMP domain among the page objects, Wappalyzer-style.
    pub cmp: Option<CmpId>,
    /// TLD-derived website region.
    pub region: Region,
    /// At least one executed Topics call on the visit.
    pub questionable: bool,
}

fn dataset_slot(id: DatasetId) -> usize {
    match id {
        DatasetId::BeforeAccept => 0,
        DatasetId::AfterAccept => 1,
        DatasetId::AfterReject => 2,
    }
}

/// The one-pass index. Borrows the outcome; build it once per analysis
/// session (``Datasets::new`` does) and let every consumer share it.
pub struct CampaignIndex<'a> {
    outcome: &'a CampaignOutcome,
    allowed: BTreeSet<&'a Domain>,
    attested: BTreeSet<&'a Domain>,
    /// Allowed∧Attested domains in allow-list order (the Figure 2
    /// candidate set).
    candidates: Vec<&'a Domain>,
    visits: [Vec<&'a VisitRecord>; 3],
    calls: [Vec<(&'a Domain, &'a TopicsCallRecord)>; 3],
    calling_parties: [BTreeSet<&'a Domain>; 3],
    presence: [BTreeMap<&'a Domain, PresenceCount>; 3],
    calling_sites: [BTreeMap<&'a Domain, BTreeSet<&'a Domain>>; 3],
    ba_tags: Vec<VisitTags>,
    unique_third_parties: usize,
}

impl<'a> CampaignIndex<'a> {
    /// Build the index in one pass over the outcome.
    pub fn new(outcome: &'a CampaignOutcome) -> CampaignIndex<'a> {
        let allowed: BTreeSet<&Domain> = outcome.allow_list.iter().collect();
        let attested: BTreeSet<&Domain> = outcome
            .attestation_probes
            .iter()
            .filter(|p| p.valid.is_some())
            .map(|p| &p.domain)
            .collect();
        let candidates: Vec<&Domain> = outcome
            .allow_list
            .iter()
            .filter(|d| attested.contains(d))
            .collect();
        let candidate_set: BTreeSet<&Domain> = candidates.iter().copied().collect();

        let mut visits: [Vec<&VisitRecord>; 3] = Default::default();
        let mut calls: [Vec<(&Domain, &TopicsCallRecord)>; 3] = Default::default();
        let mut calling_parties: [BTreeSet<&Domain>; 3] = Default::default();
        let mut presence: [BTreeMap<&Domain, PresenceCount>; 3] = Default::default();
        let mut calling_sites: [BTreeMap<&Domain, BTreeSet<&Domain>>; 3] = Default::default();
        let mut ba_tags: Vec<VisitTags> = Vec::new();
        let mut third_parties: BTreeSet<&Domain> = BTreeSet::new();

        for site in &outcome.sites {
            let classified =
                site.before
                    .iter()
                    .map(|v| (v, 0usize))
                    .chain(site.after.iter().filter_map(|v| match v.phase {
                        Phase::AfterAccept => Some((v, 1)),
                        Phase::AfterReject => Some((v, 2)),
                        Phase::BeforeAccept => None,
                    }));
            for (v, slot) in classified {
                visits[slot].push(v);
                // Permitted callers of this visit, deduplicated — both
                // the presence `called` notion and the calling-site sets
                // count a CP once per visit.
                let mut visit_callers: BTreeSet<&Domain> = BTreeSet::new();
                for c in &v.topics_calls {
                    if c.permitted() {
                        calls[slot].push((&v.website, c));
                        calling_parties[slot].insert(&c.caller_site);
                        visit_callers.insert(&c.caller_site);
                        calling_sites[slot]
                            .entry(&c.caller_site)
                            .or_default()
                            .insert(&v.website);
                    }
                }
                // Presence of the Allowed∧Attested candidates: invert
                // the legacy candidates×visits scan — walk the page's
                // (deduplicated) party domains and count candidates.
                let page_parties: BTreeSet<&Domain> = v.party_domains.iter().collect();
                for p in &page_parties {
                    if candidate_set.contains(p) {
                        let e = presence[slot].entry(p).or_default();
                        e.present += 1;
                        if visit_callers.contains(p) {
                            e.called += 1;
                        }
                    }
                }
                if slot == 0 {
                    for d in v.third_parties() {
                        third_parties.insert(d);
                    }
                    ba_tags.push(VisitTags {
                        cmp: v.party_domains.iter().find_map(cmp_by_domain),
                        region: Region::of(&v.website),
                        questionable: !visit_callers.is_empty(),
                    });
                }
            }
        }

        CampaignIndex {
            outcome,
            allowed,
            attested,
            candidates,
            visits,
            calls,
            calling_parties,
            presence,
            calling_sites,
            ba_tags,
            unique_third_parties: third_parties.len(),
        }
    }

    /// The underlying outcome.
    pub fn outcome(&self) -> &'a CampaignOutcome {
        self.outcome
    }

    /// Whether a domain is on the allow-list.
    pub fn is_allowed(&self, d: &Domain) -> bool {
        self.allowed.contains(d)
    }

    /// Whether a domain served a valid attestation.
    pub fn is_attested(&self, d: &Domain) -> bool {
        self.attested.contains(d)
    }

    /// Two-axis CP classification, O(log n).
    pub fn classify(&self, d: &Domain) -> CpClass {
        CpClass {
            allowed: self.is_allowed(d),
            attested: self.is_attested(d),
        }
    }

    /// Allowed∧Attested domains in allow-list order — Figure 2's
    /// candidate CPs.
    pub fn candidates(&self) -> &[&'a Domain] {
        &self.candidates
    }

    /// The visits of one dataset, in site-rank order.
    pub fn visits(&self, id: DatasetId) -> &[&'a VisitRecord] {
        &self.visits[dataset_slot(id)]
    }

    /// Every executed call of one dataset with its website, in visit
    /// order.
    pub fn calls(&self, id: DatasetId) -> &[(&'a Domain, &'a TopicsCallRecord)] {
        &self.calls[dataset_slot(id)]
    }

    /// Distinct calling parties of one dataset.
    pub fn calling_parties(&self, id: DatasetId) -> &BTreeSet<&'a Domain> {
        &self.calling_parties[dataset_slot(id)]
    }

    /// Per-candidate presence/called counts of one dataset.
    pub fn presence(&self, id: DatasetId) -> &BTreeMap<&'a Domain, PresenceCount> {
        &self.presence[dataset_slot(id)]
    }

    /// Per-CP distinct websites with an executed call, one dataset.
    pub fn calling_sites(&self, id: DatasetId) -> &BTreeMap<&'a Domain, BTreeSet<&'a Domain>> {
        &self.calling_sites[dataset_slot(id)]
    }

    /// Per-visit CMP/region/questionable tags of the Before-Accept
    /// dataset, aligned with `visits(BeforeAccept)`.
    pub fn ba_tags(&self) -> &[VisitTags] {
        &self.ba_tags
    }

    /// Distinct third parties across D_BA.
    pub fn unique_third_parties(&self) -> usize {
        self.unique_third_parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{d, tiny_outcome};

    #[test]
    fn class_sets_match_linear_scans() {
        let outcome = tiny_outcome();
        let idx = CampaignIndex::new(&outcome);
        let mut everyone: BTreeSet<Domain> = outcome.allow_list.iter().cloned().collect();
        everyone.extend(outcome.attestation_probes.iter().map(|p| p.domain.clone()));
        everyone.insert(d("site-a.com"));
        for domain in &everyone {
            assert_eq!(idx.is_allowed(domain), outcome.is_allowed(domain));
            assert_eq!(idx.is_attested(domain), outcome.is_attested(domain));
        }
    }

    #[test]
    fn visit_and_call_slices_follow_site_order() {
        let outcome = tiny_outcome();
        let idx = CampaignIndex::new(&outcome);
        assert_eq!(idx.visits(DatasetId::BeforeAccept).len(), 3);
        assert_eq!(idx.visits(DatasetId::AfterAccept).len(), 2);
        assert!(idx.visits(DatasetId::AfterReject).is_empty());
        assert!(idx
            .calls(DatasetId::AfterAccept)
            .iter()
            .all(|(_, c)| c.permitted()));
    }

    #[test]
    fn presence_counts_match_has_party() {
        let outcome = tiny_outcome();
        let idx = CampaignIndex::new(&outcome);
        let goodads = d("goodads.com");
        let aa = idx.presence(DatasetId::AfterAccept);
        let counts = aa[&goodads];
        let mut present = 0;
        let mut called = 0;
        for v in idx.visits(DatasetId::AfterAccept) {
            if v.has_party(&goodads) {
                present += 1;
                if v.topics_calls
                    .iter()
                    .any(|c| c.permitted() && c.caller_site == goodads)
                {
                    called += 1;
                }
            }
        }
        assert_eq!(counts.present, present);
        assert_eq!(counts.called, called);
    }

    #[test]
    fn ba_tags_align_with_visits() {
        let outcome = tiny_outcome();
        let idx = CampaignIndex::new(&outcome);
        let visits = idx.visits(DatasetId::BeforeAccept);
        let tags = idx.ba_tags();
        assert_eq!(visits.len(), tags.len());
        for (v, t) in visits.iter().zip(tags) {
            assert_eq!(t.region, Region::of(&v.website));
            assert_eq!(t.cmp, v.party_domains.iter().find_map(cmp_by_domain));
            assert_eq!(t.questionable, v.topics_calls.iter().any(|c| c.permitted()));
        }
    }
}
