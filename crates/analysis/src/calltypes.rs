//! Call-type distribution (§2.2).
//!
//! The paper's modified handler logs the API call type — JavaScript,
//! Fetch or IFrame. This module breaks executed calls down by type and
//! by caller class, which supports the §4 observation that anomalous
//! calls are *all* JavaScript while legitimate platforms use the full
//! integration menu.

use crate::dataset::{DatasetId, Datasets};
use crate::report::{pct, Table};
use topics_browser::observer::CallType;

/// Call counts by type for one caller class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeCounts {
    /// `document.browsingTopics()` calls.
    pub javascript: usize,
    /// `fetch(…, {browsingTopics: true})` calls.
    pub fetch: usize,
    /// `<iframe browsingtopics>` calls.
    pub iframe: usize,
}

impl TypeCounts {
    fn bump(&mut self, t: CallType) {
        match t {
            CallType::JavaScript => self.javascript += 1,
            CallType::Fetch => self.fetch += 1,
            CallType::Iframe => self.iframe += 1,
        }
    }

    /// Total calls.
    pub fn total(&self) -> usize {
        self.javascript + self.fetch + self.iframe
    }

    /// Fraction of one type.
    pub fn fraction(&self, t: CallType) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let k = match t {
            CallType::JavaScript => self.javascript,
            CallType::Fetch => self.fetch,
            CallType::Iframe => self.iframe,
        };
        k as f64 / n as f64
    }
}

/// The full call-type breakdown of one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallTypeMix {
    /// Calls by Allowed∧Attested platforms.
    pub legitimate: TypeCounts,
    /// Calls by non-Allowed, non-Attested callers (§4 anomalous).
    pub anomalous: TypeCounts,
    /// Calls by the remaining class (¬Allowed∧Attested — distillery).
    pub other: TypeCounts,
}

/// Compute the call-type mix of a dataset (executed calls only).
pub fn call_type_mix(ds: &Datasets<'_>, id: DatasetId) -> CallTypeMix {
    let idx = ds.index();
    let mut mix = CallTypeMix::default();
    for (_, c) in idx.calls(id) {
        let class = idx.classify(&c.caller_site);
        let bucket = match (class.allowed, class.attested) {
            (true, true) => &mut mix.legitimate,
            (false, false) => &mut mix.anomalous,
            _ => &mut mix.other,
        };
        bucket.bump(c.call_type);
    }
    mix
}

/// Render the mix as text.
pub fn render_call_types(mix: &CallTypeMix) -> String {
    let mut t = Table::new(["caller class", "JavaScript", "Fetch", "IFrame", "total"]);
    for (label, c) in [
        ("Allowed & Attested", &mix.legitimate),
        ("anomalous (!Allowed)", &mix.anomalous),
        ("other (!Allowed & Attested)", &mix.other),
    ] {
        t.row(vec![
            label.to_owned(),
            format!(
                "{} ({})",
                c.javascript,
                pct(c.fraction(CallType::JavaScript))
            ),
            format!("{} ({})", c.fetch, pct(c.fraction(CallType::Fetch))),
            format!("{} ({})", c.iframe, pct(c.fraction(CallType::Iframe))),
            c.total().to_string(),
        ]);
    }
    format!("Call types by caller class (§2.2)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn buckets_split_by_class_and_type() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let mix = call_type_mix(&ds, DatasetId::AfterAccept);
        // goodads.com (allowed & attested) calls via Fetch, twice.
        assert_eq!(mix.legitimate.fetch, 2);
        assert_eq!(mix.legitimate.javascript, 0);
        // The GTM anomalous call is JavaScript.
        assert_eq!(mix.anomalous.javascript, 1);
        assert_eq!(mix.anomalous.total(), 1);
        assert_eq!(mix.anomalous.fraction(CallType::JavaScript), 1.0);
        // No distillery-class call in the fixture.
        assert_eq!(mix.other.total(), 0);
        assert_eq!(mix.other.fraction(CallType::Fetch), 0.0);
    }

    #[test]
    fn render_contains_classes() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let text = render_call_types(&call_type_mix(&ds, DatasetId::AfterAccept));
        assert!(text.contains("Allowed & Attested"));
        assert!(text.contains("anomalous"));
        assert!(text.contains("JavaScript"));
    }
}
