//! §3 — A/B-test analysis.
//!
//! Two observations in the paper point at controlled experiments:
//!
//! 1. **Fraction clustering** (Figure 3): per-CP enabled fractions sit
//!    near round experiment arms — ~100%, 75%, 66%, 50%, 33%, 25% —
//!    "percentages that look predetermined".
//! 2. **Temporal alternation**: repeated visits to the same (CP,
//!    website) show consistent ON periods followed by OFF periods —
//!    time-sliced A/B tests over the same population.

use crate::figures::PresenceRow;
use std::collections::{BTreeMap, BTreeSet};
use topics_crawler::record::SiteOutcome;
use topics_net::domain::Domain;

/// The canonical experiment arms the paper highlights on Figure 3's
/// y-axis.
pub const CANONICAL_FRACTIONS: [f64; 6] = [1.0, 0.75, 0.66, 0.50, 0.33, 0.25];

/// The nearest canonical fraction and its distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionFit {
    /// Observed enabled fraction.
    pub observed: f64,
    /// Closest canonical arm.
    pub nearest: f64,
    /// |observed − nearest|.
    pub distance: f64,
}

/// Fit an observed fraction against the canonical arms.
///
/// ```
/// use topics_analysis::abtest::fit_fraction;
///
/// let fit = fit_fraction(0.74);
/// assert_eq!(fit.nearest, 0.75);
/// assert!(fit.distance < 0.02);
/// ```
pub fn fit_fraction(observed: f64) -> FractionFit {
    let nearest = CANONICAL_FRACTIONS
        .iter()
        .copied()
        .min_by(|a, b| {
            (observed - a)
                .abs()
                .partial_cmp(&(observed - b).abs())
                .expect("finite")
        })
        .expect("non-empty arms");
    FractionFit {
        observed,
        nearest,
        distance: (observed - nearest).abs(),
    }
}

/// Share of CPs whose enabled fraction lies within `tolerance` of a
/// canonical arm — the clustering evidence.
pub fn clustering_share(rows: &[PresenceRow], tolerance: f64) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    let close = rows
        .iter()
        .filter(|r| fit_fraction(r.enabled_fraction()).distance <= tolerance)
        .count();
    close as f64 / rows.len() as f64
}

/// One (CP, website) ON/OFF time series from repeated visits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlternationSeries {
    /// The calling party.
    pub cp: Domain,
    /// The website.
    pub website: Domain,
    /// Per-round: did the CP call on this site?
    pub on: Vec<bool>,
}

impl AlternationSeries {
    /// Number of ON↔OFF transitions.
    pub fn transitions(&self) -> usize {
        self.on.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Longest run of identical values — "consistent alternating
    /// periods" require runs longer than one round.
    pub fn longest_run(&self) -> usize {
        let mut best = 0usize;
        let mut cur = 0usize;
        let mut prev: Option<bool> = None;
        for &x in &self.on {
            if Some(x) == prev {
                cur += 1;
            } else {
                cur = 1;
                prev = Some(x);
            }
            best = best.max(cur);
        }
        best
    }

    /// True when the series has both ON and OFF phases.
    pub fn alternates(&self) -> bool {
        self.on.iter().any(|&x| x) && self.on.iter().any(|&x| !x)
    }
}

/// Build per-(CP, website) series from repeated crawl rounds (the output
/// of `topics_crawler::run_repeated`). Only CPs that call at least once
/// anywhere appear.
pub fn alternation_series(rounds: &[Vec<SiteOutcome>]) -> Vec<AlternationSeries> {
    // First pass: collect every (cp, website) pair ever calling.
    let mut key_set: BTreeSet<(Domain, Domain)> = BTreeSet::new();
    for round in rounds {
        for site in round {
            if let Some(v) = &site.before {
                for c in v.topics_calls.iter().filter(|c| c.permitted()) {
                    key_set.insert((c.caller_site.clone(), v.website.clone()));
                }
            }
        }
    }
    let keys: Vec<(Domain, Domain)> = key_set.into_iter().collect();
    // Group key slots by website so each visit in the second pass only
    // touches its own site's series instead of scanning every key.
    let mut slots_by_website: BTreeMap<&Domain, Vec<usize>> = BTreeMap::new();
    for (i, (_, website)) in keys.iter().enumerate() {
        slots_by_website.entry(website).or_default().push(i);
    }
    // Second pass: fill the series round by round. A key whose website
    // was not visited in a round stays OFF; when a round visits a
    // website more than once, the last visit wins (map-overwrite
    // semantics of the direct computation).
    let mut series: Vec<Vec<bool>> = vec![Vec::with_capacity(rounds.len()); keys.len()];
    for round in rounds {
        let mut on_this_round = vec![false; keys.len()];
        for site in round {
            if let Some(v) = &site.before {
                if let Some(slots) = slots_by_website.get(&v.website) {
                    for &i in slots {
                        let cp = &keys[i].0;
                        on_this_round[i] = v
                            .topics_calls
                            .iter()
                            .any(|c| c.permitted() && c.caller_site == *cp);
                    }
                }
            }
        }
        for (s, on) in series.iter_mut().zip(&on_this_round) {
            s.push(*on);
        }
    }
    keys.into_iter()
        .zip(series)
        .map(|((cp, website), on)| AlternationSeries { cp, website, on })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn fraction_fitting_picks_nearest_arm() {
        assert_eq!(fit_fraction(0.74).nearest, 0.75);
        assert_eq!(fit_fraction(0.35).nearest, 0.33);
        assert_eq!(fit_fraction(0.98).nearest, 1.0);
        assert_eq!(fit_fraction(0.05).nearest, 0.25);
        assert!(fit_fraction(0.66).distance < 1e-9);
    }

    #[test]
    fn clustering_share_counts_close_rows() {
        let rows = vec![
            PresenceRow {
                cp: d("a.com"),
                present: 100,
                called: 76,
            }, // ~0.75
            PresenceRow {
                cp: d("b.com"),
                present: 100,
                called: 49,
            }, // ~0.50
            PresenceRow {
                cp: d("c.com"),
                present: 100,
                called: 12,
            }, // 0.12 — off-arm
        ];
        let share = clustering_share(&rows, 0.05);
        assert!((share - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(clustering_share(&[], 0.05), 0.0);
    }

    #[test]
    fn series_statistics() {
        let s = AlternationSeries {
            cp: d("cp.com"),
            website: d("site.com"),
            on: vec![true, true, true, false, false, true, true],
        };
        assert_eq!(s.transitions(), 2);
        assert_eq!(s.longest_run(), 3);
        assert!(s.alternates());

        let flat = AlternationSeries {
            cp: d("cp.com"),
            website: d("site.com"),
            on: vec![true; 5],
        };
        assert_eq!(flat.transitions(), 0);
        assert_eq!(flat.longest_run(), 5);
        assert!(!flat.alternates());

        let empty = AlternationSeries {
            cp: d("cp.com"),
            website: d("site.com"),
            on: vec![],
        };
        assert_eq!(empty.longest_run(), 0);
        assert!(!empty.alternates());
    }
}
