//! Column-native analysis: the [`CampaignIndex`](crate::index::CampaignIndex)
//! aggregates computed straight from a [`ColumnarCampaign`]'s columns,
//! without materialising row-struct records.
//!
//! The JSON path reads `campaign.json` → row structs → one-pass index.
//! The columnar path can skip the middle step: every aggregate the
//! figures consume is a scan over a handful of columns plus id-space
//! set operations against the intern table — allocation happens only
//! for the final domain-keyed maps, and domains are `Arc`-cloned out of
//! the arena. The `integration_store` suite proves each field equals
//! the row-struct index bit for bit.

use std::collections::{BTreeMap, BTreeSet};
use topics_crawler::columnar::{ColumnarCampaign, ColumnarError};
use topics_crawler::record::{OutcomeCounts, Phase};
use topics_net::domain::Domain;

use crate::index::PresenceCount;

/// The index aggregates, owned (domains are cheap `Arc` clones of the
/// store's arena). Field order mirrors `CampaignIndex`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnIndex {
    /// Allowed∧Attested domains in allow-list order (the Figure 2
    /// candidate set).
    pub candidates: Vec<Domain>,
    /// Visits per dataset (D_BA / D_AA / D_AR).
    pub visit_counts: [usize; 3],
    /// Executed calls per dataset.
    pub call_counts: [usize; 3],
    /// Distinct calling parties per dataset.
    pub calling_parties: [BTreeSet<Domain>; 3],
    /// Per-candidate presence/called counts per dataset.
    pub presence: [BTreeMap<Domain, PresenceCount>; 3],
    /// Per-CP distinct websites with an executed call, per dataset.
    pub calling_sites: [BTreeMap<Domain, BTreeSet<Domain>>; 3],
    /// Distinct third parties across D_BA.
    pub unique_third_parties: usize,
    /// Before-Accept visits with at least one executed call (the
    /// questionable-visit count behind Figure 5).
    pub questionable_ba_visits: usize,
    /// Per-health site counts.
    pub outcome_counts: OutcomeCounts,
}

/// Scan the columns into a [`ColumnIndex`].
///
/// Dataset membership follows the index's rule: a site's `before` visit
/// lands in D_BA, its `after` visit in D_AA or D_AR by phase. Sets are
/// accumulated in id space (bit vectors / id sets over the intern
/// table) and only converted to domain keys at the end.
pub fn scan(store: &ColumnarCampaign) -> Result<ColumnIndex, ColumnarError> {
    let arena = store.domains()?;
    let n = arena.len();

    let probes = store.probe_scan()?;
    let mut attested = vec![false; n];
    for (i, (_, valid)) in probes.iter().enumerate() {
        if valid.is_some() {
            attested[probes.domain_id(i) as usize] = true;
        }
    }
    let allow = store.allow_ids()?;
    let mut candidate_mask = vec![false; n];
    let mut candidates: Vec<Domain> = Vec::new();
    for &id in allow {
        if attested[id as usize] {
            candidate_mask[id as usize] = true;
            candidates.push(arena[id as usize].clone());
        }
    }

    let sites = store.sites()?;
    let visits = store.visits()?;
    let calls = store.calls()?;

    let mut visit_counts = [0usize; 3];
    let mut call_counts = [0usize; 3];
    let mut calling_parties: [BTreeSet<u32>; 3] = Default::default();
    let mut presence: [BTreeMap<u32, PresenceCount>; 3] = Default::default();
    let mut calling_sites: [BTreeMap<u32, BTreeSet<Domain>>; 3] = Default::default();
    let mut third_parties: BTreeSet<u32> = BTreeSet::new();
    let mut questionable_ba_visits = 0usize;
    let mut outcome_counts = OutcomeCounts::default();

    for site in sites.iter() {
        match (site.before, site.faults.is_zero()) {
            (None, _) => outcome_counts.failed += 1,
            (Some(_), true) => outcome_counts.complete += 1,
            (Some(_), false) => outcome_counts.degraded += 1,
        }
        let slotted = site.before.map(|idx| (idx, 0usize)).into_iter().chain(
            site.after
                .into_iter()
                .filter_map(|idx| match visits.get(idx).phase() {
                    Phase::AfterAccept => Some((idx, 1)),
                    Phase::AfterReject => Some((idx, 2)),
                    Phase::BeforeAccept => None,
                }),
        );
        for (idx, slot) in slotted {
            let v = visits.get(idx);
            visit_counts[slot] += 1;
            let website = v.website();
            let mut visit_callers: BTreeSet<u32> = BTreeSet::new();
            for c in calls.range(v.call_range()) {
                if c.permitted() {
                    call_counts[slot] += 1;
                    let caller_site = c.caller_site_id();
                    calling_parties[slot].insert(caller_site);
                    visit_callers.insert(caller_site);
                    calling_sites[slot]
                        .entry(caller_site)
                        .or_default()
                        .insert(website.clone());
                }
            }
            let page_parties: BTreeSet<u32> = v.party_ids().iter().copied().collect();
            for &p in &page_parties {
                if candidate_mask[p as usize] {
                    let e = presence[slot].entry(p).or_default();
                    e.present += 1;
                    if visit_callers.contains(&p) {
                        e.called += 1;
                    }
                }
            }
            if slot == 0 {
                let final_website = v.final_website();
                for &p in &page_parties {
                    let d = &arena[p as usize];
                    if d != website && d != final_website {
                        third_parties.insert(p);
                    }
                }
                if !visit_callers.is_empty() {
                    questionable_ba_visits += 1;
                }
            }
        }
    }

    let to_domains = |ids: &BTreeSet<u32>| -> BTreeSet<Domain> {
        ids.iter().map(|&id| arena[id as usize].clone()).collect()
    };
    Ok(ColumnIndex {
        candidates,
        visit_counts,
        call_counts,
        calling_parties: [
            to_domains(&calling_parties[0]),
            to_domains(&calling_parties[1]),
            to_domains(&calling_parties[2]),
        ],
        presence: std::array::from_fn(|s| {
            presence[s]
                .iter()
                .map(|(&id, &c)| (arena[id as usize].clone(), c))
                .collect()
        }),
        calling_sites: std::array::from_fn(|s| {
            calling_sites[s]
                .iter()
                .map(|(&id, sites)| (arena[id as usize].clone(), sites.clone()))
                .collect()
        }),
        unique_third_parties: third_parties.len(),
        questionable_ba_visits,
        outcome_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetId;
    use crate::index::CampaignIndex;
    use crate::testutil::tiny_outcome;

    const DATASETS: [DatasetId; 3] = [
        DatasetId::BeforeAccept,
        DatasetId::AfterAccept,
        DatasetId::AfterReject,
    ];

    #[test]
    fn column_scan_matches_row_index() {
        let outcome = tiny_outcome();
        let idx = CampaignIndex::new(&outcome);
        let store = ColumnarCampaign::from_outcome(&outcome);
        let col = scan(&store).unwrap();

        let want_candidates: Vec<Domain> = idx.candidates().iter().map(|d| (*d).clone()).collect();
        assert_eq!(col.candidates, want_candidates);
        for (slot, id) in DATASETS.into_iter().enumerate() {
            assert_eq!(
                col.visit_counts[slot],
                idx.visits(id).len(),
                "{id:?} visits"
            );
            assert_eq!(col.call_counts[slot], idx.calls(id).len(), "{id:?} calls");
            let want_parties: BTreeSet<Domain> = idx
                .calling_parties(id)
                .iter()
                .map(|d| (*d).clone())
                .collect();
            assert_eq!(col.calling_parties[slot], want_parties, "{id:?} parties");
            let want_presence: BTreeMap<Domain, PresenceCount> = idx
                .presence(id)
                .iter()
                .map(|(d, c)| ((*d).clone(), *c))
                .collect();
            assert_eq!(col.presence[slot], want_presence, "{id:?} presence");
            let want_sites: BTreeMap<Domain, BTreeSet<Domain>> = idx
                .calling_sites(id)
                .iter()
                .map(|(d, s)| ((*d).clone(), s.iter().map(|w| (*w).clone()).collect()))
                .collect();
            assert_eq!(col.calling_sites[slot], want_sites, "{id:?} calling sites");
        }
        assert_eq!(col.unique_third_parties, idx.unique_third_parties());
        assert_eq!(
            col.questionable_ba_visits,
            idx.ba_tags().iter().filter(|t| t.questionable).count()
        );
        assert_eq!(col.outcome_counts, outcome.outcome_counts());
    }

    #[test]
    fn scan_spot_checks_on_the_fixture() {
        let outcome = tiny_outcome();
        let store = ColumnarCampaign::from_outcome(&outcome);
        let col = scan(&store).unwrap();
        // goodads.com and violator.com are allowed and attested;
        // unattested-ads.com fails attestation.
        assert_eq!(col.candidates.len(), 2);
        assert_eq!(col.visit_counts, [3, 2, 0]);
        // Two questionable BA visits (violator.com calls on a and b).
        assert_eq!(col.questionable_ba_visits, 2);
        assert_eq!(col.outcome_counts.failed, 1);
        assert_eq!(col.outcome_counts.degraded, 1);
    }
}
