//! Figure 7 — CMPs and questionable calls.
//!
//! The paper detects a site's Consent Management Platform
//! Wappalyzer-style (the CMP's domain among the page's objects) and
//! compares `P(CMP = x)` with `P(CMP = x | questionable call)`: the two
//! are roughly equal for most CMPs — questionable calls are CMP-agnostic
//! — except HubSpot (≈3× over-represented) and LiveRamp, whose gating of
//! the Topics API is worse. It also quotes `P(questionable | HubSpot)` ≈
//! 12%, about twice the fleet average.

use crate::dataset::Datasets;
use crate::report::{pct, Table};
use topics_webgen::cmp::{CmpId, CMPS};

/// Per-CMP statistics for Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpRow {
    /// The CMP.
    pub cmp: CmpId,
    /// Sites (D_BA) where the CMP was detected.
    pub sites: usize,
    /// Of those, sites with at least one questionable (Before-Accept)
    /// executed Topics call.
    pub questionable_sites: usize,
    /// `P(CMP = x)` over all D_BA sites.
    pub p_cmp: f64,
    /// `P(CMP = x | questionable call)`.
    pub p_cmp_given_questionable: f64,
}

impl CmpRow {
    /// `P(questionable | CMP = x)`.
    pub fn p_questionable_given_cmp(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.questionable_sites as f64 / self.sites as f64
        }
    }
}

/// Figure 7 aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7 {
    /// One row per CMP, in the registry order of Figure 7.
    pub rows: Vec<CmpRow>,
    /// D_BA size.
    pub total_sites: usize,
    /// D_BA sites with a questionable call.
    pub questionable_sites: usize,
}

impl Fig7 {
    /// Overall `P(questionable)` across D_BA (the "average probability"
    /// the paper compares HubSpot's 12% against).
    pub fn p_questionable(&self) -> f64 {
        if self.total_sites == 0 {
            0.0
        } else {
            self.questionable_sites as f64 / self.total_sites as f64
        }
    }
}

/// Compute Figure 7 over D_BA (reads the index's per-visit CMP and
/// questionable tags).
pub fn fig7(ds: &Datasets<'_>) -> Fig7 {
    let mut sites = vec![0usize; CMPS.len()];
    let mut questionable = vec![0usize; CMPS.len()];
    let mut total_sites = 0usize;
    let mut questionable_total = 0usize;
    for tags in ds.index().ba_tags() {
        total_sites += 1;
        if tags.questionable {
            questionable_total += 1;
        }
        if let Some(cmp) = tags.cmp {
            sites[cmp.0] += 1;
            if tags.questionable {
                questionable[cmp.0] += 1;
            }
        }
    }
    let rows = (0..CMPS.len())
        .map(|i| CmpRow {
            cmp: CmpId(i),
            sites: sites[i],
            questionable_sites: questionable[i],
            p_cmp: if total_sites == 0 {
                0.0
            } else {
                sites[i] as f64 / total_sites as f64
            },
            p_cmp_given_questionable: if questionable_total == 0 {
                0.0
            } else {
                questionable[i] as f64 / questionable_total as f64
            },
        })
        .collect();
    Fig7 {
        rows,
        total_sites,
        questionable_sites: questionable_total,
    }
}

/// Render Figure 7 as text.
pub fn render_fig7(f: &Fig7) -> String {
    let mut t = Table::new([
        "CMP",
        "P(CMP=x)",
        "P(CMP=x | questionable)",
        "P(questionable | CMP=x)",
        "sites",
    ]);
    for r in &f.rows {
        t.row(vec![
            r.cmp.spec().name.to_owned(),
            pct(r.p_cmp),
            pct(r.p_cmp_given_questionable),
            pct(r.p_questionable_given_cmp()),
            r.sites.to_string(),
        ]);
    }
    format!(
        "Figure 7 — CMPs vs questionable calls (D_BA; P(questionable) = {})\n{}",
        pct(f.p_questionable()),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn detects_cmps_and_conditionals() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let f = fig7(&ds);
        assert_eq!(f.total_sites, 3);
        // site-a (HubSpot) and site-b (no CMP) have questionable calls.
        assert_eq!(f.questionable_sites, 2);
        let hubspot = f
            .rows
            .iter()
            .find(|r| r.cmp.spec().name == "HubSpot")
            .unwrap();
        assert_eq!(hubspot.sites, 1);
        assert_eq!(hubspot.questionable_sites, 1);
        assert_eq!(hubspot.p_questionable_given_cmp(), 1.0);
        assert!((hubspot.p_cmp - 1.0 / 3.0).abs() < 1e-9);
        assert!((hubspot.p_cmp_given_questionable - 0.5).abs() < 1e-9);
        let onetrust = f
            .rows
            .iter()
            .find(|r| r.cmp.spec().name == "OneTrust")
            .unwrap();
        assert_eq!(onetrust.sites, 1); // site-c
        assert_eq!(onetrust.questionable_sites, 0);
    }

    #[test]
    fn p_questionable_overall() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let f = fig7(&ds);
        assert!((f.p_questionable() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_lists_all_cmps() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let text = render_fig7(&fig7(&ds));
        for cmp in &CMPS {
            assert!(text.contains(cmp.name), "{} missing", cmp.name);
        }
    }
}
