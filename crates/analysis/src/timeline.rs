//! §3 — the enrolment timeline.
//!
//! The paper extracts the issue date of every attestation file and
//! observes: enrolments kicked off in June 2023 (first attestation on the
//! 16th), continued at roughly a dozen per month until May 2024, and on
//! October 17th, 2024 many CPs re-issued their files with the new
//! `enrollment_site` field.

use crate::report::{bar_series, Table};
use std::collections::BTreeMap;
use topics_crawler::record::CampaignOutcome;
use topics_net::clock::Timestamp;

/// Monthly enrolment histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// `(year, month)` → number of attestations issued that month.
    pub by_month: BTreeMap<(i32, u32), usize>,
    /// The earliest attestation issue date.
    pub first: Option<Timestamp>,
    /// Total attested domains.
    pub total: usize,
    /// How many probed files carry the post-update `enrollment_site`.
    pub with_enrollment_site: usize,
}

/// Build the timeline from a campaign's attestation probes.
pub fn timeline(outcome: &CampaignOutcome) -> Timeline {
    let mut by_month = BTreeMap::new();
    let mut first: Option<Timestamp> = None;
    let mut total = 0;
    let mut with_site = 0;
    for p in &outcome.attestation_probes {
        let Some(info) = &p.valid else { continue };
        total += 1;
        if info.has_enrollment_site {
            with_site += 1;
        }
        let (y, m, _) = info.issued.to_date();
        *by_month.entry((y, m)).or_insert(0) += 1;
        first = Some(match first {
            Some(f) if f <= info.issued => f,
            _ => info.issued,
        });
    }
    Timeline {
        by_month,
        first,
        total,
        with_enrollment_site: with_site,
    }
}

impl Timeline {
    /// Average enrolments per month across the observed span.
    pub fn monthly_rate(&self) -> f64 {
        if self.by_month.is_empty() {
            0.0
        } else {
            self.total as f64 / self.by_month.len() as f64
        }
    }
}

/// Render the timeline as text.
pub fn render_timeline(t: &Timeline) -> String {
    let series: Vec<(String, f64)> = t
        .by_month
        .iter()
        .map(|((y, m), n)| (format!("{y:04}-{m:02}"), *n as f64))
        .collect();
    let mut out = bar_series(
        "§3 — attestation enrolment timeline (per month)",
        series.iter().map(|(l, v)| (l.as_str(), *v)),
        40,
    );
    let mut meta = Table::new(["metric", "value"]);
    meta.row(vec![
        "first attestation".into(),
        t.first.map(|f| f.to_string()).unwrap_or_else(|| "-".into()),
    ]);
    meta.row(vec!["attested domains".into(), t.total.to_string()]);
    meta.row(vec![
        "avg enrolments / month".into(),
        format!("{:.1}", t.monthly_rate()),
    ]);
    meta.row(vec![
        "files with enrollment_site".into(),
        t.with_enrollment_site.to_string(),
    ]);
    out.push_str(&meta.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn timeline_from_probes() {
        let outcome = tiny_outcome();
        let t = timeline(&outcome);
        assert_eq!(t.total, 3); // goodads, violator, lonely-attested
        assert_eq!(t.with_enrollment_site, 0);
        // Earliest issue: day 20 = 2023-06-21.
        let (y, m, d) = t.first.unwrap().to_date();
        assert_eq!((y, m, d), (2023, 6, 21));
        assert!(t.by_month.contains_key(&(2023, 6)));
        assert!(t.monthly_rate() > 0.0);
    }

    #[test]
    fn render_shows_months() {
        let outcome = tiny_outcome();
        let text = render_timeline(&timeline(&outcome));
        assert!(text.contains("2023-06"));
        assert!(text.contains("first attestation"));
    }
}
