//! # topics-analysis — datasets and the paper's evaluation
//!
//! Takes a [`topics_crawler::record::CampaignOutcome`] and regenerates
//! every table and figure of "A First View of Topics API Usage in the
//! Wild":
//!
//! * [`dataset`] — the D_BA / D_AA views and the Allowed/Attested CP
//!   classification (§2.3–2.4).
//! * [`index`] — the shared one-pass [`CampaignIndex`] every module
//!   reads instead of re-scanning the outcome.
//! * [`colscan`] — the same aggregates computed straight from a
//!   columnar store's columns, no row structs materialised.
//! * [`query`] — typed per-figure queries answered off the scanned
//!   columns (what `topics-lab serve` uses per request).
//! * [`mod@table1`] — Table 1, the overall usage matrix.
//! * [`figures`] — Figures 2 (presence vs calls), 3 (enabled fractions),
//!   5 (questionable calls per CP) and 6 (geographic breakdown).
//! * [`cmp_usage`] — Figure 7, CMPs vs questionable calls.
//! * [`anomalous`] — the §4 statistics (non-allowed callers, the 72%
//!   same-label share, GTM co-occurrence, all-JavaScript calls).
//! * [`calltypes`] — the call-type mix per caller class (§2.2's
//!   JavaScript / Fetch / IFrame distinction).
//! * [`dossier`] — a per-CP drill-down report (classification, presence,
//!   experiment arm, call types, regional footprint).
//! * [`concentration`] — top-k shares and the Gini coefficient of call
//!   volume (how centralised Topics usage is).
//! * [`mod@timeline`] — the §3 enrolment timeline from attestation files.
//! * [`abtest`] — §3's A/B evidence: fraction clustering and ON/OFF
//!   alternation across repeated visits.
//! * [`report`] — plain-text table/bar rendering shared by examples and
//!   the bench harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abtest;
pub mod anomalous;
pub mod calltypes;
pub mod cmp_usage;
pub mod colscan;
pub mod concentration;
pub mod dataset;
pub mod dossier;
pub mod export;
pub mod figures;
pub mod index;
pub mod query;
pub mod report;
pub mod table1;
pub mod timeline;

#[cfg(test)]
pub(crate) mod testutil;

pub use abtest::{alternation_series, clustering_share, fit_fraction, AlternationSeries};
pub use anomalous::{anomalous_stats, AnomalousStats};
pub use calltypes::{call_type_mix, CallTypeMix, TypeCounts};
pub use cmp_usage::{fig7, CmpRow, Fig7};
pub use colscan::ColumnIndex;
pub use concentration::{concentration, gini, Concentration};
pub use dataset::{CpClass, DatasetId, Datasets};
pub use dossier::{dossier, Dossier};
pub use figures::{fig2, fig3, fig5, fig6, GeoRow, PresenceRow, QuestionableRow};
pub use index::{CampaignIndex, PresenceCount, VisitTags};
pub use query::ColumnQueries;
pub use table1::{table1, Table1};
pub use timeline::{timeline, Timeline};
