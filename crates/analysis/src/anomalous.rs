//! §4 — anomalous usage: calls by parties that are not Allowed.
//!
//! Observable only because the crawler corrupts the browser's allow-list
//! (fail-open bug). The paper finds 2,614 such CPs making 3,450 calls in
//! D_AA; 72% of the calls come from the visited website itself (same
//! second-level domain, e.g. `www.foo.com` / `ad.foo.net`), the rest from
//! same-company domains or post-redirect canonical sites; ~95% of the
//! pages involved embed Google Tag Manager; and every anomalous call uses
//! the JavaScript `browsingTopics()` entry point.

use crate::dataset::{DatasetId, Datasets};
use crate::report::{pct, Table};
use std::collections::BTreeSet;
use topics_browser::observer::CallType;
use topics_net::domain::Domain;
use topics_net::psl::same_second_level_label;

/// The §4 aggregate statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalousStats {
    /// Distinct non-Allowed calling parties (Table 1's 2,614).
    pub distinct_cps: usize,
    /// Total anomalous calls (the paper's 3,450).
    pub total_calls: usize,
    /// Fraction of calls whose CP shares the website's second-level
    /// label (the 72%).
    pub same_second_level_fraction: f64,
    /// Fraction of anomalous-call *websites* where GTM is present (95%).
    pub gtm_cooccurrence: f64,
    /// Fraction of calls per call type — the paper observes 100%
    /// JavaScript.
    pub javascript_fraction: f64,
    /// Fraction of calls executed in the root browsing context.
    pub root_context_fraction: f64,
    /// Fraction of calls whose calling script came from GTM.
    pub gtm_script_fraction: f64,
}

/// The GTM serving host (for co-occurrence detection).
const GTM_DOMAIN: &str = "googletagmanager.com";

/// Compute the §4 statistics over a dataset (the paper uses D_AA).
pub fn anomalous_stats(ds: &Datasets<'_>, id: DatasetId) -> AnomalousStats {
    let mut cps: BTreeSet<Domain> = BTreeSet::new();
    let mut total_calls = 0usize;
    let mut same_label = 0usize;
    let mut js_calls = 0usize;
    let mut root_calls = 0usize;
    let mut gtm_script = 0usize;
    let mut sites_with_anomalous: usize = 0;
    let mut sites_with_anomalous_and_gtm: usize = 0;

    let idx = ds.index();
    for v in ds.visits(id) {
        let mut any = false;
        for c in v.topics_calls.iter().filter(|c| c.permitted()) {
            // The anomalous set is the ¬Allowed ∧ ¬Attested callers; the
            // lone ¬Allowed ∧ Attested party (distillery.com) is
            // discussed separately in the paper's §2.4.
            if idx.is_allowed(&c.caller_site) || idx.is_attested(&c.caller_site) {
                continue;
            }
            any = true;
            cps.insert(c.caller_site.clone());
            total_calls += 1;
            // The paper compares against the *visited* website; a
            // post-redirect canonical CP matches the final site but not
            // the ranked one — exactly its case (ii).
            if same_second_level_label(&c.caller_site, &v.website) {
                same_label += 1;
            }
            if c.call_type == CallType::JavaScript {
                js_calls += 1;
            }
            if c.root_context {
                root_calls += 1;
            }
            if c.script_source
                .as_ref()
                .is_some_and(|s| topics_net::psl::registrable_domain(s).as_str() == GTM_DOMAIN)
            {
                gtm_script += 1;
            }
        }
        if any {
            sites_with_anomalous += 1;
            if v.party_domains.iter().any(|d| d.as_str() == GTM_DOMAIN) {
                sites_with_anomalous_and_gtm += 1;
            }
        }
    }

    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    AnomalousStats {
        distinct_cps: cps.len(),
        total_calls,
        same_second_level_fraction: frac(same_label, total_calls),
        gtm_cooccurrence: frac(sites_with_anomalous_and_gtm, sites_with_anomalous),
        javascript_fraction: frac(js_calls, total_calls),
        root_context_fraction: frac(root_calls, total_calls),
        gtm_script_fraction: frac(gtm_script, total_calls),
    }
}

/// Render the §4 statistics as text.
pub fn render_anomalous(s: &AnomalousStats) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(vec![
        "distinct non-Allowed CPs".into(),
        s.distinct_cps.to_string(),
    ]);
    t.row(vec!["anomalous calls".into(), s.total_calls.to_string()]);
    t.row(vec![
        "same second-level label as website".into(),
        pct(s.same_second_level_fraction),
    ]);
    t.row(vec![
        "GTM on anomalous pages".into(),
        pct(s.gtm_cooccurrence),
    ]);
    t.row(vec![
        "JavaScript call type".into(),
        pct(s.javascript_fraction),
    ]);
    t.row(vec![
        "root-context calls".into(),
        pct(s.root_context_fraction),
    ]);
    t.row(vec![
        "calls from GTM scripts".into(),
        pct(s.gtm_script_fraction),
    ]);
    format!("§4 — anomalous usage\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn counts_anomalous_calls_in_daa() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let s = anomalous_stats(&ds, DatasetId::AfterAccept);
        // Only site-a.com's GTM call (the blocked rogue.net call does not
        // count; goodads.com is allowed).
        assert_eq!(s.distinct_cps, 1);
        assert_eq!(s.total_calls, 1);
        assert_eq!(s.same_second_level_fraction, 1.0);
        assert_eq!(s.javascript_fraction, 1.0);
        assert_eq!(s.root_context_fraction, 1.0);
        assert_eq!(s.gtm_script_fraction, 1.0);
        assert_eq!(s.gtm_cooccurrence, 1.0);
    }

    #[test]
    fn before_accept_anomalous_includes_ru_site() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let s = anomalous_stats(&ds, DatasetId::BeforeAccept);
        // site-a's GTM call is anomalous; violator.com is allowed so its
        // BA calls are questionable, not anomalous.
        assert_eq!(s.distinct_cps, 1);
    }

    #[test]
    fn render_mentions_key_metrics() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let text = render_anomalous(&anomalous_stats(&ds, DatasetId::AfterAccept));
        assert!(text.contains("second-level"));
        assert!(text.contains("GTM"));
        assert!(text.contains("JavaScript"));
    }
}
