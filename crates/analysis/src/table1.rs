//! Table 1 — the overall status of Topics API usage.
//!
//! ```text
//! Allowed                          193
//! Allowed & !Attested               12
//! D_AA  Allowed & Attested          47
//!       !Allowed & Attested          1
//!       !Allowed                 2,614
//! D_BA  Allowed & Attested          28
//!       !Allowed               1,308
//! ```
//!
//! The first two rows are properties of the allow-list and the
//! attestation probes; the dataset rows count *distinct calling parties
//! observed calling* in each dataset, bucketed by classification. The
//! paper marks the D_AA `!Allowed` rows as anomalous (red) and the D_BA
//! rows as questionable (blue).

use crate::dataset::{DatasetId, Datasets};
use crate::report::Table;

/// The reproduced Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Domains on the allow-list.
    pub allowed_total: usize,
    /// Allow-listed domains without a valid attestation file.
    pub allowed_not_attested: usize,
    /// D_AA: distinct Allowed∧Attested callers.
    pub daa_allowed_attested: usize,
    /// D_AA: distinct ¬Allowed∧Attested callers (the distillery case).
    pub daa_not_allowed_attested: usize,
    /// D_AA: distinct ¬Allowed callers (anomalous usage, §4).
    pub daa_not_allowed: usize,
    /// D_BA: distinct Allowed∧Attested callers (questionable usage, §5).
    pub dba_allowed_attested: usize,
    /// D_BA: distinct ¬Allowed callers (questionable usage, §5).
    pub dba_not_allowed: usize,
}

/// Compute Table 1 from a campaign.
pub fn table1(ds: &Datasets<'_>) -> Table1 {
    let idx = ds.index();
    let allowed_total = ds.outcome().allow_list.len();
    let allowed_not_attested = ds
        .outcome()
        .allow_list
        .iter()
        .filter(|d| !idx.is_attested(d))
        .count();

    let mut t = Table1 {
        allowed_total,
        allowed_not_attested,
        daa_allowed_attested: 0,
        daa_not_allowed_attested: 0,
        daa_not_allowed: 0,
        dba_allowed_attested: 0,
        dba_not_allowed: 0,
    };
    for cp in idx.calling_parties(DatasetId::AfterAccept) {
        let class = idx.classify(cp);
        match (class.allowed, class.attested) {
            (true, true) => t.daa_allowed_attested += 1,
            (false, true) => t.daa_not_allowed_attested += 1,
            (false, false) => t.daa_not_allowed += 1,
            (true, false) => {} // never observed in the paper; counted nowhere
        }
    }
    for cp in idx.calling_parties(DatasetId::BeforeAccept) {
        let class = idx.classify(cp);
        match (class.allowed, class.attested) {
            (true, true) => t.dba_allowed_attested += 1,
            (false, _) => t.dba_not_allowed += 1,
            (true, false) => {}
        }
    }
    t
}

impl Table1 {
    /// Render in the paper's layout.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec!["", "Class", "CPs"]);
        table.row(vec![
            "".into(),
            "Allowed".into(),
            self.allowed_total.to_string(),
        ]);
        table.row(vec![
            "".into(),
            "Allowed & !Attested".into(),
            self.allowed_not_attested.to_string(),
        ]);
        table.row(vec![
            "D_AA".into(),
            "Allowed & Attested".into(),
            self.daa_allowed_attested.to_string(),
        ]);
        table.row(vec![
            "D_AA".into(),
            "!Allowed & Attested".into(),
            self.daa_not_allowed_attested.to_string(),
        ]);
        table.row(vec![
            "D_AA".into(),
            "!Allowed (anomalous)".into(),
            self.daa_not_allowed.to_string(),
        ]);
        table.row(vec![
            "D_BA".into(),
            "Allowed & Attested (questionable)".into(),
            self.dba_allowed_attested.to_string(),
        ]);
        table.row(vec![
            "D_BA".into(),
            "!Allowed (questionable)".into(),
            self.dba_not_allowed.to_string(),
        ]);
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn tiny_world_table() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let t = table1(&ds);
        assert_eq!(t.allowed_total, 3);
        assert_eq!(t.allowed_not_attested, 1); // unattested-ads.com
        assert_eq!(t.daa_allowed_attested, 1); // goodads.com
        assert_eq!(t.daa_not_allowed, 1); // site-a.com via GTM
        assert_eq!(t.daa_not_allowed_attested, 0);
        assert_eq!(t.dba_allowed_attested, 1); // violator.com
        assert_eq!(t.dba_not_allowed, 1); // site-a.com via GTM (pre-consent)
    }

    #[test]
    fn blocked_calls_do_not_create_callers() {
        // rogue.net appears only as a blocked call in tiny_outcome.
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let t = table1(&ds);
        assert_eq!(t.daa_not_allowed, 1, "rogue.net must not be counted");
    }

    #[test]
    fn render_contains_all_rows() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let text = table1(&ds).render();
        assert!(text.contains("Allowed & !Attested"));
        assert!(text.contains("D_AA"));
        assert!(text.contains("D_BA"));
        assert!(text.contains("questionable"));
    }
}
