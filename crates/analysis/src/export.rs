//! Dataset export — CSV renderings of the datasets and of every
//! table/figure.
//!
//! The paper "offers our tools and dataset to the community"; this
//! module produces the same artefacts for a synthetic campaign: a raw
//! calls dataset, a per-site summary, and one CSV per reproduced
//! table/figure. All functions are pure (they return the CSV text);
//! writing to disk is the caller's business.

use crate::anomalous::AnomalousStats;
use crate::cmp_usage::Fig7;
use crate::dataset::{DatasetId, Datasets};
use crate::figures::{GeoRow, PresenceRow, QuestionableRow};
use crate::table1::Table1;
use crate::timeline::Timeline;
use topics_net::region::Region;

/// Escape one CSV field (RFC 4180 style).
pub fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Join fields into one CSV line.
pub fn csv_line<I: IntoIterator<Item = S>, S: AsRef<str>>(fields: I) -> String {
    fields
        .into_iter()
        .map(|f| csv_field(f.as_ref()))
        .collect::<Vec<_>>()
        .join(",")
}

/// The raw Topics-call dataset: one row per observed call, both phases.
///
/// Columns mirror what the paper's modified
/// `BrowsingTopicsSiteDataManagerImpl` logs, plus our context fields.
pub fn calls_csv(ds: &Datasets<'_>) -> String {
    let mut out = String::from(
        "phase,website,caller,caller_site,call_type,root_context,script_source,permitted,topics_returned,timestamp_ms\n",
    );
    for (id, phase) in [
        (DatasetId::BeforeAccept, "before_accept"),
        (DatasetId::AfterAccept, "after_accept"),
    ] {
        for v in ds.visits(id) {
            for c in &v.topics_calls {
                out.push_str(&csv_line([
                    phase,
                    v.website.as_str(),
                    c.caller.as_str(),
                    c.caller_site.as_str(),
                    c.call_type.label(),
                    if c.root_context { "root" } else { "iframe" },
                    c.script_source.as_ref().map(|d| d.as_str()).unwrap_or(""),
                    if c.permitted() { "1" } else { "0" },
                    &c.topics_returned.to_string(),
                    &c.timestamp.millis().to_string(),
                ]));
                out.push('\n');
            }
        }
    }
    out
}

/// Per-site summary: one row per ranked site.
pub fn sites_csv(ds: &Datasets<'_>) -> String {
    let mut out = String::from(
        "rank,website,region,visited,accepted,banner_found,parties_before,parties_after,calls_before,calls_after\n",
    );
    for s in &ds.outcome().sites {
        let region = Region::of(&s.website).label();
        let b = s.before.as_ref();
        let a = s.after.as_ref();
        out.push_str(&csv_line([
            s.rank.to_string(),
            s.website.as_str().to_owned(),
            region.to_owned(),
            (b.is_some() as u8).to_string(),
            (a.is_some() as u8).to_string(),
            b.map(|v| v.banner_found as u8).unwrap_or(0).to_string(),
            b.map(|v| v.party_domains.len()).unwrap_or(0).to_string(),
            a.map(|v| v.party_domains.len()).unwrap_or(0).to_string(),
            b.map(|v| v.topics_calls.len()).unwrap_or(0).to_string(),
            a.map(|v| v.topics_calls.len()).unwrap_or(0).to_string(),
        ]));
        out.push('\n');
    }
    out
}

/// Table 1 as CSV.
pub fn table1_csv(t: &Table1) -> String {
    let mut out = String::from("dataset,class,count\n");
    let rows: [(&str, &str, usize); 7] = [
        ("", "allowed", t.allowed_total),
        ("", "allowed_not_attested", t.allowed_not_attested),
        ("d_aa", "allowed_attested", t.daa_allowed_attested),
        ("d_aa", "not_allowed_attested", t.daa_not_allowed_attested),
        ("d_aa", "not_allowed", t.daa_not_allowed),
        ("d_ba", "allowed_attested", t.dba_allowed_attested),
        ("d_ba", "not_allowed", t.dba_not_allowed),
    ];
    for (ds, class, n) in rows {
        out.push_str(&csv_line([ds, class, &n.to_string()]));
        out.push('\n');
    }
    out
}

/// Figures 2/3 rows as CSV.
pub fn presence_csv(rows: &[PresenceRow]) -> String {
    let mut out = String::from("cp,present,called,enabled_fraction\n");
    for r in rows {
        out.push_str(&csv_line([
            r.cp.as_str(),
            &r.present.to_string(),
            &r.called.to_string(),
            &format!("{:.4}", r.enabled_fraction()),
        ]));
        out.push('\n');
    }
    out
}

/// Figure 5 rows as CSV.
pub fn questionable_csv(rows: &[QuestionableRow]) -> String {
    let mut out = String::from("cp,websites\n");
    for r in rows {
        out.push_str(&csv_line([r.cp.as_str(), &r.websites.to_string()]));
        out.push('\n');
    }
    out
}

/// Figure 6 rows as CSV (one line per CP × region).
pub fn geo_csv(rows: &[GeoRow]) -> String {
    let mut out = String::from("cp,region,present,called,enabled_fraction\n");
    for r in rows {
        for (i, region) in Region::ALL.iter().enumerate() {
            let (present, called) = r.by_region[i];
            out.push_str(&csv_line([
                r.cp.as_str(),
                region.label(),
                &present.to_string(),
                &called.to_string(),
                &format!("{:.4}", r.enabled(*region)),
            ]));
            out.push('\n');
        }
    }
    out
}

/// Figure 7 as CSV.
pub fn cmp_csv(f: &Fig7) -> String {
    let mut out = String::from(
        "cmp,sites,questionable_sites,p_cmp,p_cmp_given_questionable,p_questionable_given_cmp\n",
    );
    for r in &f.rows {
        out.push_str(&csv_line([
            r.cmp.spec().name,
            &r.sites.to_string(),
            &r.questionable_sites.to_string(),
            &format!("{:.5}", r.p_cmp),
            &format!("{:.5}", r.p_cmp_given_questionable),
            &format!("{:.5}", r.p_questionable_given_cmp()),
        ]));
        out.push('\n');
    }
    out
}

/// §4 statistics as CSV.
pub fn anomalous_csv(s: &AnomalousStats) -> String {
    format!(
        "metric,value\ndistinct_cps,{}\ntotal_calls,{}\nsame_second_level_fraction,{:.4}\ngtm_cooccurrence,{:.4}\njavascript_fraction,{:.4}\nroot_context_fraction,{:.4}\ngtm_script_fraction,{:.4}\n",
        s.distinct_cps,
        s.total_calls,
        s.same_second_level_fraction,
        s.gtm_cooccurrence,
        s.javascript_fraction,
        s.root_context_fraction,
        s.gtm_script_fraction,
    )
}

/// §3 enrolment timeline as CSV.
pub fn timeline_csv(t: &Timeline) -> String {
    let mut out = String::from("year,month,enrolments\n");
    for ((y, m), n) in &t.by_month {
        out.push_str(&format!("{y},{m},{n}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Datasets;
    use crate::testutil::tiny_outcome;
    use crate::{anomalous, cmp_usage, figures, table1 as t1, timeline as tl};

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_line(["a", "b,c"]), "a,\"b,c\"");
    }

    #[test]
    fn calls_csv_has_one_row_per_call() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let csv = calls_csv(&ds);
        let total_calls: usize = outcome
            .sites
            .iter()
            .flat_map(|s| s.before.iter().chain(s.after.iter()))
            .map(|v| v.topics_calls.len())
            .sum();
        assert_eq!(csv.lines().count(), 1 + total_calls);
        assert!(csv.starts_with("phase,website,caller"));
        assert!(csv.contains("before_accept"));
        assert!(csv.contains("after_accept"));
        assert!(csv.contains("googletagmanager"));
    }

    #[test]
    fn sites_csv_covers_every_ranked_site() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let csv = sites_csv(&ds);
        assert_eq!(csv.lines().count(), 1 + outcome.sites.len());
        assert!(csv.contains("site-b.ru,.ru,1,0"));
        assert!(csv.contains("dead-site.com,.com,0,0"));
    }

    #[test]
    fn figure_csvs_render() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let t = t1::table1(&ds);
        assert_eq!(table1_csv(&t).lines().count(), 8);
        let p = figures::fig2(&ds, 10);
        assert_eq!(presence_csv(&p).lines().count(), 1 + p.len());
        let q = figures::fig5(&ds, 10);
        assert_eq!(questionable_csv(&q).lines().count(), 1 + q.len());
        let g = figures::fig6(
            &ds,
            &[topics_net::domain::Domain::parse("violator.com").unwrap()],
        );
        assert_eq!(geo_csv(&g).lines().count(), 1 + 5);
        let f7 = cmp_usage::fig7(&ds);
        assert_eq!(cmp_csv(&f7).lines().count(), 1 + 15);
        let a = anomalous::anomalous_stats(&ds, DatasetId::AfterAccept);
        assert_eq!(anomalous_csv(&a).lines().count(), 8);
        let t = tl::timeline(&outcome);
        assert!(timeline_csv(&t).lines().count() > 1);
    }
}
