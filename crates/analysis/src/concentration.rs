//! Market concentration of Topics API usage.
//!
//! The paper's Figure 2 shows adoption concentrated in a handful of
//! giant platforms; this module quantifies that with the standard
//! concentration measures — top-k share and the Gini coefficient of the
//! per-CP call-volume distribution — so longitudinal runs can track
//! whether Topics usage centralises further as deployment matures.

use crate::dataset::{DatasetId, Datasets};
use crate::report::{pct, Table};
use std::collections::BTreeMap;
use topics_net::domain::Domain;

/// Concentration statistics over per-CP call volumes.
#[derive(Debug, Clone, PartialEq)]
pub struct Concentration {
    /// Distinct CPs with at least one executed call.
    pub parties: usize,
    /// Total executed calls.
    pub total_calls: usize,
    /// Share of calls made by the single largest CP.
    pub top1_share: f64,
    /// Share of calls made by the five largest CPs.
    pub top5_share: f64,
    /// Gini coefficient of the call-volume distribution (0 = perfectly
    /// even, →1 = a single party makes every call).
    pub gini: f64,
}

/// Gini coefficient of a non-negative sample (0 for empty/all-zero).
pub fn gini(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u64> = values.to_vec();
    sorted.sort_unstable();
    // G = (2·Σ i·x_i) / (n·Σ x_i) − (n+1)/n, with i ranked from 1.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Compute the concentration of *legitimate* (Allowed∧Attested) call
/// volume in one dataset.
pub fn concentration(ds: &Datasets<'_>, id: DatasetId) -> Concentration {
    let idx = ds.index();
    let mut by_cp: BTreeMap<&Domain, u64> = BTreeMap::new();
    for (_, c) in idx.calls(id) {
        let class = idx.classify(&c.caller_site);
        if class.allowed && class.attested {
            *by_cp.entry(&c.caller_site).or_insert(0) += 1;
        }
    }
    let mut volumes: Vec<u64> = by_cp.values().copied().collect();
    volumes.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = volumes.iter().sum();
    let share = |k: usize| {
        if total == 0 {
            0.0
        } else {
            volumes.iter().take(k).sum::<u64>() as f64 / total as f64
        }
    };
    Concentration {
        parties: volumes.len(),
        total_calls: total as usize,
        top1_share: share(1),
        top5_share: share(5),
        gini: gini(&volumes),
    }
}

/// Render the concentration stats as text.
pub fn render_concentration(c: &Concentration) -> String {
    let mut t = Table::new(["metric", "value"]);
    t.row(vec!["calling parties".into(), c.parties.to_string()]);
    t.row(vec!["total calls".into(), c.total_calls.to_string()]);
    t.row(vec!["top-1 share".into(), pct(c.top1_share)]);
    t.row(vec!["top-5 share".into(), pct(c.top5_share)]);
    t.row(vec!["Gini coefficient".into(), format!("{:.3}", c.gini)]);
    format!("Call-volume concentration (legitimate CPs)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_outcome;

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-9, "perfect equality");
        // One party takes everything among n: G = (n−1)/n.
        let g = gini(&[0, 0, 0, 100]);
        assert!((g - 0.75).abs() < 1e-9, "{g}");
        // A skewed sample sits strictly between.
        let mid = gini(&[1, 2, 3, 10]);
        assert!(mid > 0.2 && mid < 0.75, "{mid}");
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = gini(&[1, 2, 3, 4]);
        let b = gini(&[10, 20, 30, 40]);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn concentration_over_the_fixture() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let c = concentration(&ds, DatasetId::AfterAccept);
        // Only goodads.com (2 calls) is legitimate in D_AA.
        assert_eq!(c.parties, 1);
        assert_eq!(c.total_calls, 2);
        assert_eq!(c.top1_share, 1.0);
        assert_eq!(c.top5_share, 1.0);
        assert_eq!(c.gini, 0.0, "single party: distribution trivially even");
        let text = render_concentration(&c);
        assert!(text.contains("Gini"));
    }

    #[test]
    fn empty_dataset_is_all_zero() {
        let outcome = tiny_outcome();
        let ds = Datasets::new(&outcome);
        let c = concentration(&ds, DatasetId::AfterReject);
        assert_eq!(c.parties, 0);
        assert_eq!(c.total_calls, 0);
        assert_eq!(c.top1_share, 0.0);
    }
}
