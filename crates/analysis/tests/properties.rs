//! Property-based tests for the analysis layer: rendering is total, the
//! A/B-fit machinery is mathematically sound, and alternation metrics
//! hold for arbitrary series.

use proptest::prelude::*;
use topics_analysis::abtest::{fit_fraction, AlternationSeries, CANONICAL_FRACTIONS};
use topics_analysis::report::{bar_series, hbar, pct, Table};
use topics_net::domain::Domain;

proptest! {
    #[test]
    fn tables_render_any_cells(
        headers in prop::collection::vec("[ -~]{0,12}", 1..5),
        rows in prop::collection::vec(
            prop::collection::vec("[ -~]{0,16}", 0..5),
            0..8
        )
    ) {
        let mut t = Table::new(headers.clone());
        for r in rows {
            t.row(r);
        }
        let text = t.render();
        // Header line + separator + one line per row.
        prop_assert_eq!(text.lines().count(), 2 + t.len());
    }

    #[test]
    fn hbar_is_total_and_width_bounded(
        value in -1.0e6f64..1.0e6,
        max in -10.0f64..1.0e6,
        width in 0usize..64
    ) {
        let bar = hbar(value, max, width);
        prop_assert!(bar.chars().count() <= width);
    }

    #[test]
    fn pct_is_total(x in -10.0f64..10.0) {
        let s = pct(x);
        prop_assert!(s.ends_with('%'));
    }

    #[test]
    fn bar_series_line_count_matches(
        labels in prop::collection::vec("[a-z]{1,10}", 0..8)
    ) {
        let rows: Vec<(String, f64)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as f64))
            .collect();
        let text = bar_series("T", rows.iter().map(|(l, v)| (l.as_str(), *v)), 20);
        prop_assert_eq!(text.lines().count(), 1 + labels.len());
    }

    #[test]
    fn fit_fraction_picks_the_true_minimum(x in 0.0f64..=1.0) {
        let fit = fit_fraction(x);
        prop_assert!(CANONICAL_FRACTIONS.contains(&fit.nearest));
        for arm in CANONICAL_FRACTIONS {
            prop_assert!(fit.distance <= (x - arm).abs() + 1e-12);
        }
        prop_assert!((fit.distance - (x - fit.nearest).abs()).abs() < 1e-12);
    }

    #[test]
    fn alternation_metrics_are_consistent(on in prop::collection::vec(any::<bool>(), 0..40)) {
        let s = AlternationSeries {
            cp: Domain::parse("cp.example").unwrap(),
            website: Domain::parse("site.example").unwrap(),
            on: on.clone(),
        };
        // Transitions + 1 = number of runs (for non-empty series).
        if !on.is_empty() {
            let runs = 1 + s.transitions();
            prop_assert!(s.longest_run() <= on.len());
            prop_assert!(s.longest_run() * runs >= on.len(), "pigeonhole");
            prop_assert_eq!(
                s.alternates(),
                on.iter().any(|&x| x) && on.iter().any(|&x| !x)
            );
        } else {
            prop_assert_eq!(s.longest_run(), 0);
            prop_assert_eq!(s.transitions(), 0);
            prop_assert!(!s.alternates());
        }
    }
}
