//! Index equivalence: every figure and table ported to the shared
//! [`topics_analysis::CampaignIndex`] must produce *identical* results to
//! the legacy direct computation (a fresh scan over the raw outcome per
//! query). The legacy versions are reimplemented here, verbatim from the
//! pre-index code, and compared on a real generated campaign — so a
//! semantic drift in the index (dedup rules, ordering, classification)
//! fails loudly instead of silently changing the paper's numbers.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

use topics_analysis::abtest::{alternation_series, AlternationSeries};
use topics_analysis::anomalous::{anomalous_stats, AnomalousStats};
use topics_analysis::calltypes::{call_type_mix, CallTypeMix};
use topics_analysis::cmp_usage::{fig7, CmpRow, Fig7};
use topics_analysis::concentration::{concentration, gini, Concentration};
use topics_analysis::dataset::{DatasetId, Datasets};
use topics_analysis::figures::{fig5, fig6, presence_rows, GeoRow, PresenceRow, QuestionableRow};
use topics_analysis::table1::{table1, Table1};
use topics_browser::observer::CallType;
use topics_crawler::campaign::{
    run_campaign, run_repeated, CampaignConfig, CrawlTarget, CRAWL_START_DAY,
};
use topics_crawler::record::{CampaignOutcome, Phase, SiteOutcome, TopicsCallRecord, VisitRecord};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::psl::{registrable_domain, same_second_level_label};
use topics_net::region::Region;
use topics_webgen::cmp::{cmp_by_domain, CmpId, CMPS};
use topics_webgen::{World, WorldConfig};

const SITES: usize = 400;

/// One shared campaign for every test in this file.
fn campaign() -> &'static CampaignOutcome {
    static OUTCOME: OnceLock<CampaignOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        let world = World::generate(WorldConfig::scaled(23, SITES));
        let config = CampaignConfig {
            threads: 4,
            ..Default::default()
        };
        run_campaign(&world, &config)
    })
}

// ---------------------------------------------------------------------
// Legacy direct computations (pre-index), scanning the raw outcome.
// ---------------------------------------------------------------------

fn legacy_visits(o: &CampaignOutcome, id: DatasetId) -> Vec<&VisitRecord> {
    o.sites
        .iter()
        .filter_map(move |s| match id {
            DatasetId::BeforeAccept => s.before.as_ref(),
            DatasetId::AfterAccept => s.after.as_ref().filter(|v| v.phase == Phase::AfterAccept),
            DatasetId::AfterReject => s.after.as_ref().filter(|v| v.phase == Phase::AfterReject),
        })
        .collect()
}

fn legacy_calls(o: &CampaignOutcome, id: DatasetId) -> Vec<(&Domain, &TopicsCallRecord)> {
    legacy_visits(o, id)
        .into_iter()
        .flat_map(|v| {
            v.topics_calls
                .iter()
                .filter(|c| c.permitted())
                .map(move |c| (&v.website, c))
        })
        .collect()
}

fn legacy_calling_parties(o: &CampaignOutcome, id: DatasetId) -> BTreeSet<Domain> {
    legacy_calls(o, id)
        .into_iter()
        .map(|(_, c)| c.caller_site.clone())
        .collect()
}

fn legacy_table1(o: &CampaignOutcome) -> Table1 {
    let allowed_total = o.allow_list.len();
    let allowed_not_attested = o.allow_list.iter().filter(|d| !o.is_attested(d)).count();
    let mut t = Table1 {
        allowed_total,
        allowed_not_attested,
        daa_allowed_attested: 0,
        daa_not_allowed_attested: 0,
        daa_not_allowed: 0,
        dba_allowed_attested: 0,
        dba_not_allowed: 0,
    };
    for cp in legacy_calling_parties(o, DatasetId::AfterAccept) {
        match (o.is_allowed(&cp), o.is_attested(&cp)) {
            (true, true) => t.daa_allowed_attested += 1,
            (false, true) => t.daa_not_allowed_attested += 1,
            (false, false) => t.daa_not_allowed += 1,
            (true, false) => {}
        }
    }
    for cp in legacy_calling_parties(o, DatasetId::BeforeAccept) {
        match (o.is_allowed(&cp), o.is_attested(&cp)) {
            (true, true) => t.dba_allowed_attested += 1,
            (false, _) => t.dba_not_allowed += 1,
            (true, false) => {}
        }
    }
    t
}

fn legacy_presence_rows(o: &CampaignOutcome, id: DatasetId) -> Vec<PresenceRow> {
    let candidates: Vec<Domain> = o
        .allow_list
        .iter()
        .filter(|d| o.is_attested(d))
        .cloned()
        .collect();
    let mut present: BTreeMap<&Domain, usize> = BTreeMap::new();
    let mut called: BTreeMap<&Domain, usize> = BTreeMap::new();
    for v in legacy_visits(o, id) {
        let callers: BTreeSet<&Domain> = v
            .topics_calls
            .iter()
            .filter(|c| c.permitted())
            .map(|c| &c.caller_site)
            .collect();
        for cp in &candidates {
            if v.has_party(cp) {
                *present.entry(cp).or_insert(0) += 1;
                if callers.contains(cp) {
                    *called.entry(cp).or_insert(0) += 1;
                }
            }
        }
    }
    let mut rows: Vec<PresenceRow> = candidates
        .iter()
        .map(|cp| PresenceRow {
            cp: cp.clone(),
            present: present.get(cp).copied().unwrap_or(0),
            called: called.get(cp).copied().unwrap_or(0),
        })
        .filter(|r| r.present > 0)
        .collect();
    rows.sort_by(|a, b| b.present.cmp(&a.present).then(a.cp.cmp(&b.cp)));
    rows
}

fn legacy_fig5(o: &CampaignOutcome, top: usize) -> Vec<QuestionableRow> {
    let mut counts: BTreeMap<Domain, BTreeSet<Domain>> = BTreeMap::new();
    for (website, c) in legacy_calls(o, DatasetId::BeforeAccept) {
        if o.is_allowed(&c.caller_site) && o.is_attested(&c.caller_site) {
            counts
                .entry(c.caller_site.clone())
                .or_default()
                .insert(website.clone());
        }
    }
    let mut rows: Vec<QuestionableRow> = counts
        .into_iter()
        .map(|(cp, sites)| QuestionableRow {
            cp,
            websites: sites.len(),
        })
        .collect();
    rows.sort_by(|a, b| b.websites.cmp(&a.websites).then(a.cp.cmp(&b.cp)));
    rows.truncate(top);
    rows
}

fn legacy_fig6(o: &CampaignOutcome, cps: &[Domain]) -> Vec<GeoRow> {
    let mut rows: Vec<GeoRow> = cps
        .iter()
        .map(|cp| GeoRow {
            cp: cp.clone(),
            by_region: [(0, 0); 5],
        })
        .collect();
    for v in legacy_visits(o, DatasetId::BeforeAccept) {
        let region = Region::of(&v.website);
        let idx = Region::ALL
            .iter()
            .position(|r| *r == region)
            .expect("region");
        for row in rows.iter_mut() {
            if v.has_party(&row.cp) {
                row.by_region[idx].0 += 1;
                if v.topics_calls
                    .iter()
                    .any(|c| c.permitted() && c.caller_site == row.cp)
                {
                    row.by_region[idx].1 += 1;
                }
            }
        }
    }
    rows
}

fn legacy_fig7(o: &CampaignOutcome) -> Fig7 {
    let detect_cmp = |party_domains: &[Domain]| -> Option<CmpId> {
        party_domains.iter().find_map(cmp_by_domain)
    };
    let mut sites = vec![0usize; CMPS.len()];
    let mut questionable = vec![0usize; CMPS.len()];
    let mut total_sites = 0usize;
    let mut questionable_total = 0usize;
    for v in legacy_visits(o, DatasetId::BeforeAccept) {
        total_sites += 1;
        let has_questionable = v.topics_calls.iter().any(|c| c.permitted());
        if has_questionable {
            questionable_total += 1;
        }
        if let Some(cmp) = detect_cmp(&v.party_domains) {
            sites[cmp.0] += 1;
            if has_questionable {
                questionable[cmp.0] += 1;
            }
        }
    }
    let rows = (0..CMPS.len())
        .map(|i| CmpRow {
            cmp: CmpId(i),
            sites: sites[i],
            questionable_sites: questionable[i],
            p_cmp: if total_sites == 0 {
                0.0
            } else {
                sites[i] as f64 / total_sites as f64
            },
            p_cmp_given_questionable: if questionable_total == 0 {
                0.0
            } else {
                questionable[i] as f64 / questionable_total as f64
            },
        })
        .collect();
    Fig7 {
        rows,
        total_sites,
        questionable_sites: questionable_total,
    }
}

fn legacy_anomalous(o: &CampaignOutcome, id: DatasetId) -> AnomalousStats {
    const GTM_DOMAIN: &str = "googletagmanager.com";
    let mut cps: BTreeSet<Domain> = BTreeSet::new();
    let mut total_calls = 0usize;
    let mut same_label = 0usize;
    let mut js_calls = 0usize;
    let mut root_calls = 0usize;
    let mut gtm_script = 0usize;
    let mut sites_with_anomalous = 0usize;
    let mut sites_with_anomalous_and_gtm = 0usize;
    for v in legacy_visits(o, id) {
        let mut any = false;
        for c in v.topics_calls.iter().filter(|c| c.permitted()) {
            if o.is_allowed(&c.caller_site) || o.is_attested(&c.caller_site) {
                continue;
            }
            any = true;
            cps.insert(c.caller_site.clone());
            total_calls += 1;
            if same_second_level_label(&c.caller_site, &v.website) {
                same_label += 1;
            }
            if c.call_type == CallType::JavaScript {
                js_calls += 1;
            }
            if c.root_context {
                root_calls += 1;
            }
            if c.script_source
                .as_ref()
                .is_some_and(|s| registrable_domain(s).as_str() == GTM_DOMAIN)
            {
                gtm_script += 1;
            }
        }
        if any {
            sites_with_anomalous += 1;
            if v.party_domains.iter().any(|d| d.as_str() == GTM_DOMAIN) {
                sites_with_anomalous_and_gtm += 1;
            }
        }
    }
    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    AnomalousStats {
        distinct_cps: cps.len(),
        total_calls,
        same_second_level_fraction: frac(same_label, total_calls),
        gtm_cooccurrence: frac(sites_with_anomalous_and_gtm, sites_with_anomalous),
        javascript_fraction: frac(js_calls, total_calls),
        root_context_fraction: frac(root_calls, total_calls),
        gtm_script_fraction: frac(gtm_script, total_calls),
    }
}

fn legacy_call_type_mix(o: &CampaignOutcome, id: DatasetId) -> CallTypeMix {
    let mut mix = CallTypeMix::default();
    for (_, c) in legacy_calls(o, id) {
        let bucket = match (o.is_allowed(&c.caller_site), o.is_attested(&c.caller_site)) {
            (true, true) => &mut mix.legitimate,
            (false, false) => &mut mix.anomalous,
            _ => &mut mix.other,
        };
        match c.call_type {
            CallType::JavaScript => bucket.javascript += 1,
            CallType::Fetch => bucket.fetch += 1,
            CallType::Iframe => bucket.iframe += 1,
        }
    }
    mix
}

fn legacy_concentration(o: &CampaignOutcome, id: DatasetId) -> Concentration {
    let mut by_cp: BTreeMap<Domain, u64> = BTreeMap::new();
    for (_, c) in legacy_calls(o, id) {
        if o.is_allowed(&c.caller_site) && o.is_attested(&c.caller_site) {
            *by_cp.entry(c.caller_site.clone()).or_insert(0) += 1;
        }
    }
    let mut volumes: Vec<u64> = by_cp.values().copied().collect();
    volumes.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = volumes.iter().sum();
    let share = |k: usize| {
        if total == 0 {
            0.0
        } else {
            volumes.iter().take(k).sum::<u64>() as f64 / total as f64
        }
    };
    Concentration {
        parties: volumes.len(),
        total_calls: total as usize,
        top1_share: share(1),
        top5_share: share(5),
        gini: gini(&volumes),
    }
}

fn legacy_alternation_series(rounds: &[Vec<SiteOutcome>]) -> Vec<AlternationSeries> {
    let mut keys: BTreeMap<(Domain, Domain), Vec<bool>> = BTreeMap::new();
    for round in rounds {
        for site in round {
            if let Some(v) = &site.before {
                for c in v.topics_calls.iter().filter(|c| c.permitted()) {
                    keys.entry((c.caller_site.clone(), v.website.clone()))
                        .or_default();
                }
            }
        }
    }
    for round in rounds {
        let mut called_this_round: BTreeMap<(Domain, Domain), bool> = BTreeMap::new();
        for site in round {
            if let Some(v) = &site.before {
                for ((cp, website), _) in keys.iter() {
                    if *website == v.website {
                        let on = v
                            .topics_calls
                            .iter()
                            .any(|c| c.permitted() && c.caller_site == *cp);
                        called_this_round.insert((cp.clone(), website.clone()), on);
                    }
                }
            }
        }
        for (key, series) in keys.iter_mut() {
            series.push(called_this_round.get(key).copied().unwrap_or(false));
        }
    }
    keys.into_iter()
        .map(|((cp, website), on)| AlternationSeries { cp, website, on })
        .collect()
}

fn legacy_unique_third_parties(o: &CampaignOutcome) -> usize {
    let mut set = BTreeSet::new();
    for v in legacy_visits(o, DatasetId::BeforeAccept) {
        for d in v.third_parties() {
            set.insert(d.clone());
        }
    }
    set.len()
}

// ---------------------------------------------------------------------
// Equivalence tests.
// ---------------------------------------------------------------------

const ALL_DATASETS: [DatasetId; 3] = [
    DatasetId::BeforeAccept,
    DatasetId::AfterAccept,
    DatasetId::AfterReject,
];

#[test]
fn dataset_queries_match_direct_scans() {
    let o = campaign();
    let ds = Datasets::new(o);
    for id in ALL_DATASETS {
        assert_eq!(ds.len(id), legacy_visits(o, id).len(), "{id:?} len");
        let ported: Vec<_> = ds
            .calls(id)
            .map(|(w, c)| (w.clone(), c.caller_site.clone(), c.call_type))
            .collect();
        let legacy: Vec<_> = legacy_calls(o, id)
            .into_iter()
            .map(|(w, c)| (w.clone(), c.caller_site.clone(), c.call_type))
            .collect();
        assert_eq!(ported, legacy, "{id:?} calls (order included)");
        assert_eq!(
            ds.calling_parties(id),
            legacy_calling_parties(o, id),
            "{id:?} calling parties"
        );
    }
    assert_eq!(ds.unique_third_parties(), legacy_unique_third_parties(o));
    // The campaign is non-trivial: both core datasets carry calls.
    assert!(ds.calls(DatasetId::AfterAccept).count() > 0);
    assert!(ds.calls(DatasetId::BeforeAccept).count() > 0);
}

#[test]
fn classification_matches_the_outcome() {
    let o = campaign();
    let ds = Datasets::new(o);
    let mut parties: BTreeSet<&Domain> = o.allow_list.iter().collect();
    for v in legacy_visits(o, DatasetId::AfterAccept) {
        parties.extend(v.topics_calls.iter().map(|c| &c.caller_site));
        parties.extend(v.party_domains.iter());
    }
    for d in parties {
        let class = ds.classify(d);
        assert_eq!(class.allowed, o.is_allowed(d), "{d}");
        assert_eq!(class.attested, o.is_attested(d), "{d}");
    }
}

#[test]
fn table1_matches_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    let t = table1(&ds);
    assert_eq!(t, legacy_table1(o));
    assert!(t.daa_allowed_attested > 0, "non-vacuous campaign");
}

#[test]
fn presence_rows_match_legacy_in_every_dataset() {
    let o = campaign();
    let ds = Datasets::new(o);
    for id in ALL_DATASETS {
        let ported = presence_rows(&ds, id);
        let legacy = legacy_presence_rows(o, id);
        assert_eq!(ported, legacy, "{id:?} presence rows (order included)");
    }
    assert!(!presence_rows(&ds, DatasetId::AfterAccept).is_empty());
}

#[test]
fn fig5_matches_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    for top in [3, 10, usize::MAX] {
        assert_eq!(fig5(&ds, top), legacy_fig5(o, top), "top={top}");
    }
}

#[test]
fn fig6_matches_legacy_on_the_top_questionable_cps() {
    let o = campaign();
    let ds = Datasets::new(o);
    let cps: Vec<Domain> = fig5(&ds, 4).into_iter().map(|r| r.cp).collect();
    assert!(!cps.is_empty(), "need at least one questionable CP");
    assert_eq!(fig6(&ds, &cps), legacy_fig6(o, &cps));
}

#[test]
fn fig7_matches_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    let ported = fig7(&ds);
    assert_eq!(ported, legacy_fig7(o));
    assert!(ported.total_sites > 0);
}

#[test]
fn anomalous_stats_match_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    for id in [DatasetId::AfterAccept, DatasetId::BeforeAccept] {
        let ported = anomalous_stats(&ds, id);
        assert_eq!(ported, legacy_anomalous(o, id), "{id:?}");
    }
    assert!(
        anomalous_stats(&ds, DatasetId::AfterAccept).total_calls > 0,
        "non-vacuous: the corrupted allow-list yields anomalous calls"
    );
}

#[test]
fn call_type_mix_matches_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    for id in ALL_DATASETS {
        assert_eq!(
            call_type_mix(&ds, id),
            legacy_call_type_mix(o, id),
            "{id:?}"
        );
    }
}

#[test]
fn concentration_matches_legacy() {
    let o = campaign();
    let ds = Datasets::new(o);
    for id in [DatasetId::AfterAccept, DatasetId::BeforeAccept] {
        assert_eq!(
            concentration(&ds, id),
            legacy_concentration(o, id),
            "{id:?}"
        );
    }
}

#[test]
fn alternation_series_match_legacy() {
    let world = World::generate(WorldConfig::scaled(29, 150));
    let config = CampaignConfig {
        threads: 2,
        ..Default::default()
    };
    let urls = world.targets().into_iter().take(40).collect::<Vec<_>>();
    let t0 = Timestamp::from_days(CRAWL_START_DAY);
    let times: Vec<Timestamp> = (0..6).map(|d| t0.plus_days(d)).collect();
    let rounds = run_repeated(&world, &urls, &times, &config);
    let ported = alternation_series(&rounds);
    let legacy = legacy_alternation_series(&rounds);
    assert_eq!(ported, legacy);
    assert!(!ported.is_empty(), "some CP calls in some round");
}
