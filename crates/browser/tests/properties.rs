//! Property-based tests for the browser: the HTML parser, the TagScript
//! parser, and the Topics engine's privacy invariants.

use proptest::prelude::*;
use std::sync::Arc;
use topics_browser::html;
use topics_browser::origin::Site;
use topics_browser::script::{self, Stmt};
use topics_browser::topics::{TopicsEngine, EPOCH_WINDOW, TOP_N};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::url::Url;
use topics_taxonomy::{Classifier, Taxonomy};

fn site(name: &str) -> Site {
    Site::of(&Url::parse(&format!("https://{name}/")).unwrap())
}

proptest! {
    // ---- HTML parser --------------------------------------------------

    #[test]
    fn html_parse_never_panics(input in ".*") {
        let _ = html::parse(&input);
    }

    #[test]
    fn html_parse_never_panics_on_taggy_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<script>".to_owned()),
                Just("</script>".to_owned()),
                Just("<div class='x'>".to_owned()),
                Just("</div>".to_owned()),
                Just("<iframe src='https://a.example/f'>".to_owned()),
                Just("<button>".to_owned()),
                Just("<!--".to_owned()),
                Just("-->".to_owned()),
                "[a-zA-Z <>/='\"]{0,12}".prop_map(|s: String| s),
            ],
            0..24
        )
    ) {
        let soup = parts.concat();
        let _ = html::parse(&soup);
    }

    #[test]
    fn script_src_extraction_is_faithful(
        host in "[a-z]{2,10}", path in "[a-z]{1,10}"
    ) {
        let url = format!("https://{host}.example/{path}.js");
        let doc = html::parse(&format!(r#"<script src="{url}"></script>"#));
        prop_assert_eq!(doc.nodes.len(), 1);
        match &doc.nodes[0] {
            html::Node::Script { src, .. } => prop_assert_eq!(src.as_deref(), Some(url.as_str())),
            n => prop_assert!(false, "unexpected node {:?}", n),
        }
    }

    // ---- TagScript parser ----------------------------------------------

    #[test]
    fn script_parse_never_panics(input in ".*") {
        let _ = script::parse(&input);
    }

    #[test]
    fn generated_scripts_roundtrip(
        p in 0.0f64..=1.0,
        urls in prop::collection::vec("[a-z]{2,8}", 1..4)
    ) {
        // Build a script from known constructs; it must parse and the
        // statement count must match construction.
        let mut src = String::new();
        for u in &urls {
            src.push_str(&format!("fetch https://{u}.example/x\n"));
        }
        src.push_str(&format!("ab {p:.4} site {{\ntopics js\n}}\n"));
        src.push_str("consent {\ntopics fetch https://cp.example/bid\n}\n");
        let stmts = script::parse(&src).expect("constructed script parses");
        prop_assert_eq!(stmts.len(), urls.len() + 2);
        prop_assert_eq!(script::count_topics_statements(&stmts), 2);
        match &stmts[urls.len()] {
            Stmt::Ab { p: parsed, .. } => {
                prop_assert!((parsed - p).abs() < 1e-3, "p {} vs {}", parsed, p);
            }
            s => prop_assert!(false, "unexpected {:?}", s),
        }
    }

    // ---- Topics engine invariants ---------------------------------------

    #[test]
    fn answers_respect_all_privacy_invariants(
        profile_seed in any::<u64>(),
        visits_per_epoch in 1usize..25,
        call_epoch in 0u64..6
    ) {
        let taxonomy = Taxonomy::global();
        let classifier = Arc::new(Classifier::new(7).with_unclassifiable_rate(0.0));
        let caller = Domain::parse("adtech.example").unwrap();
        let mut engine = TopicsEngine::new(classifier, profile_seed, true);
        for epoch in 0..call_epoch {
            let t = Timestamp::from_weeks(epoch);
            for i in 0..visits_per_epoch {
                let s = site(&format!("hist{epoch}x{i}.com"));
                engine.record_visit(&s, t);
                engine.record_observation(&caller, &s, t);
            }
        }
        let now = Timestamp::from_weeks(call_epoch);
        let answer = engine
            .browsing_topics(&caller, &site("visited.com"), now)
            .expect("enabled engine always answers");
        // ≤ 3 topics, unique, valid ids, never sensitive, within the
        // 3-epoch window.
        prop_assert!(answer.topics.len() <= EPOCH_WINDOW as usize);
        let mut ids: Vec<_> = answer.topics.iter().map(|t| t.topic).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "topics are unique");
        for t in &answer.topics {
            prop_assert!(taxonomy.get(t.topic).is_some());
            prop_assert!(t.topic != taxonomy.sensitive_root());
            prop_assert!(t.epoch < call_epoch);
            prop_assert!(call_epoch - t.epoch <= EPOCH_WINDOW);
        }
    }

    #[test]
    fn top5_always_has_five_unique_topics_when_any_history_exists(
        profile_seed in any::<u64>(),
        n_sites in 1usize..40
    ) {
        let classifier = Arc::new(Classifier::new(3).with_unclassifiable_rate(0.0));
        let mut engine = TopicsEngine::new(classifier, profile_seed, true);
        for i in 0..n_sites {
            engine.record_visit(&site(&format!("s{i}.com")), Timestamp::from_weeks(0));
        }
        let top = engine.top5(0);
        prop_assert_eq!(top.len(), TOP_N);
        let mut ids: Vec<_> = top.iter().map(|t| t.topic).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), TOP_N);
    }

    #[test]
    fn noise_override_bounds_hold(p in -1.0f64..2.0) {
        let classifier = Arc::new(Classifier::new(3));
        let engine = TopicsEngine::new(classifier, 1, true).with_noise_probability(p);
        // Just constructing with an out-of-range p must clamp, and the
        // engine must still answer.
        let mut engine = engine;
        let a = engine.browsing_topics(
            &Domain::parse("x.example").unwrap(),
            &site("y.com"),
            Timestamp::from_weeks(4),
        );
        prop_assert!(a.is_some());
    }
}
