//! Origins and sites.
//!
//! The "wrong context" phenomenon in the paper's §4 (Figure 4) is entirely
//! about origins: a script included via `<script src=…>` executes with the
//! *embedding document's* origin, while an `<iframe src=…>` creates a new
//! browsing context whose origin is the iframe's own URL. The Topics API
//! attributes JavaScript calls to the calling context's origin — so a
//! Google Tag Manager script embedded directly in the page calls the API
//! *as the website itself*.

use serde::{Deserialize, Serialize};
use std::fmt;
use topics_net::domain::Domain;
use topics_net::psl::registrable_domain;
use topics_net::url::{Scheme, Url};

/// A web origin: scheme + host (ports are not modelled).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Origin {
    /// URL scheme.
    pub scheme: Scheme,
    /// Host.
    pub host: Domain,
}

impl Origin {
    /// The origin of a URL.
    pub fn of(url: &Url) -> Origin {
        Origin {
            scheme: url.scheme(),
            host: url.host().clone(),
        }
    }

    /// The *site* (scheme + registrable domain) this origin belongs to —
    /// the granularity at which the Topics API identifies callers and
    /// visited sites.
    pub fn site(&self) -> Site {
        Site {
            scheme: self.scheme,
            registrable: registrable_domain(&self.host),
        }
    }

    /// Same-origin check.
    pub fn same_origin(&self, other: &Origin) -> bool {
        self == other
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme.as_str(), self.host)
    }
}

/// A "site" in the Topics API sense: scheme plus eTLD+1.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Site {
    /// URL scheme.
    pub scheme: Scheme,
    /// Registrable domain (eTLD+1).
    pub registrable: Domain,
}

impl Site {
    /// The site of a URL.
    pub fn of(url: &Url) -> Site {
        Origin::of(url).site()
    }

    /// The registrable domain.
    pub fn domain(&self) -> &Domain {
        &self.registrable
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}", self.scheme.as_str(), self.registrable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn origin_of_url() {
        let o = Origin::of(&url("https://www.example.com/page"));
        assert_eq!(o.to_string(), "https://www.example.com");
        assert_eq!(o.scheme, Scheme::Https);
    }

    #[test]
    fn site_collapses_subdomains() {
        let a = Origin::of(&url("https://www.example.com/x"));
        let b = Origin::of(&url("https://cdn.example.com/y"));
        assert!(!a.same_origin(&b));
        assert_eq!(a.site(), b.site());
        assert_eq!(a.site().to_string(), "https://example.com");
    }

    #[test]
    fn scheme_distinguishes_origins_and_sites() {
        let a = Origin::of(&url("https://example.com/"));
        let b = Origin::of(&url("http://example.com/"));
        assert!(!a.same_origin(&b));
        assert_ne!(a.site(), b.site());
    }

    #[test]
    fn site_of_multi_label_suffix() {
        let s = Site::of(&url("https://shop.brand.co.uk/p"));
        assert_eq!(s.domain().as_str(), "brand.co.uk");
    }
}
