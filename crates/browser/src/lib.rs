//! # topics-browser — a Chromium-like browser simulator with a full
//! Topics API implementation
//!
//! The paper instruments Chromium 122 (a modified
//! `BrowsingTopicsSiteDataManagerImpl`) to log every Topics API call while
//! crawling. This crate is the reproduction's browser: it loads pages from
//! a simulated network ([`topics_net::NetworkService`]), parses their
//! HTML, executes third-party tags, maintains browsing contexts with real
//! origin semantics, and implements the Topics API end to end:
//!
//! * [`topics`] — epochs, per-epoch top-5 topics, per-caller observation
//!   filtering, the 5% noise replacement, sensitive-topic exclusion;
//! * [`attestation`] — the enrolment allow-list, **including the
//!   fail-open-on-corruption bug (§2.3)** the paper used to observe
//!   non-enrolled callers, plus the fixed fail-closed mode for ablations;
//! * [`origin`]/[`browser`] — the Figure 4 context semantics: scripts
//!   included with `<script src=…>` execute in the embedding document's
//!   context (so their `browsingTopics()` calls are attributed to the
//!   website), iframes get their own context;
//! * [`html`] — a tolerant parser for the page subset the crawler needs;
//! * [`script`] — TagScript, the miniature tag language of the synthetic
//!   web (Topics calls of all three types, script/iframe inclusion,
//!   consent checks, deterministic A/B gates);
//! * [`observer`] — the instrumentation surface: every Topics call and
//!   every downloaded object is reported with the fields the paper logs;
//! * [`cookies`]/[`cache`] — consent state and the cache cleared between
//!   the Before-Accept and After-Accept visits.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod browser;
pub mod cache;
pub mod cookies;
pub mod html;
pub mod observer;
pub mod origin;
pub mod script;
pub mod topics;

pub use attestation::{AllowDecision, AttestationStore, EnforcementMode};
pub use browser::{
    Browser, BrowserConfig, PageVisit, CONSENT_COOKIE, CONSENT_DENIED, CONSENT_GRANTED,
};
pub use observer::{
    BrowserObserver, CallType, NullObserver, ObjectEvent, RecordingObserver, TopicsCallEvent,
};
pub use origin::{Origin, Site};
pub use topics::{TopicsAnswer, TopicsEngine, TopicsMetrics, NOISE_PROBABILITY};
