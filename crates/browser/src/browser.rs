//! The browser itself: page loading, script execution, frames, and the
//! Topics API call path.
//!
//! This is the reproduction's stand-in for Chromium 122. A [`Browser`]
//! owns one profile (cookies, cache, Topics engine), an attestation store
//! (possibly corrupted, as in the paper's crawler), and an observer that
//! receives instrumentation events. [`Browser::visit`] loads a page from a
//! [`NetworkService`], parses it, executes every tag, descends into
//! iframes, and reproduces the origin semantics of Figure 4:
//!
//! * an external `<script src=…>` runs **in the embedding document's
//!   context** — a `topics js` inside it is attributed to the page's own
//!   origin;
//! * an `<iframe src=…>` creates a **new browsing context** with the
//!   frame URL's origin — calls inside it are attributed to the frame's
//!   host.

use crate::attestation::AttestationStore;
use crate::cache::ResourceCache;
use crate::cookies::CookieJar;
use crate::html::{self, Document, Node};
use crate::observer::{BrowserObserver, CallType, NullObserver, ObjectEvent, TopicsCallEvent};
use crate::origin::{Origin, Site};
use crate::script::{self, AbScope, Stmt};
use crate::topics::{TopicsEngine, TopicsMetrics};
use std::sync::Arc;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::http::{HttpRequest, HttpResponse, ResourceKind, Vantage, SEC_BROWSING_TOPICS};
use topics_net::latency::LatencyModel;
use topics_net::metrics::{kind_label, NetMetrics};
use topics_net::psl::registrable_domain;
use topics_net::seed;
use topics_net::service::{
    fetch_exchange_traced, fetch_following_redirects_traced, NetworkService, RetryPolicy,
    RetryStats,
};
use topics_net::url::Url;
use topics_net::NetError;
use topics_obs::TraceBuilder;
use topics_taxonomy::Classifier;

/// Name of the consent cookie a granted privacy banner sets. The
/// simulated web's servers read it to decide whether consent-gated tags
/// are rendered into the page.
pub const CONSENT_COOKIE: &str = "euconsent";
/// Value meaning consent granted.
pub const CONSENT_GRANTED: &str = "granted";
/// Value meaning consent explicitly refused.
pub const CONSENT_DENIED: &str = "denied";

/// Static browser configuration.
#[derive(Debug, Clone)]
pub struct BrowserConfig {
    /// The Chrome settings flag the paper's crawler manually opts into.
    pub topics_enabled: bool,
    /// Maximum iframe nesting depth processed.
    pub max_frame_depth: usize,
    /// Maximum number of scripts executed per page visit (guards against
    /// inclusion cycles in a malformed world).
    pub max_scripts_per_visit: usize,
    /// Seed keying A/B-gate decisions. This models the *server-side*
    /// experiment assignment of the calling parties, so it must be shared
    /// across every browser instance of a campaign (the paper observes
    /// per-(CP, website) fractions that are stable across the crawl).
    pub ab_seed: u64,
    /// Where this browser connects from (the paper crawls from Europe;
    /// geo-targeted consent UX behaves differently elsewhere — its §6
    /// limitation).
    pub vantage: Vantage,
    /// Retry policy for document and subresource exchanges. Defaults to
    /// [`RetryPolicy::none`]; campaigns enable it only under an active
    /// fault profile so the retry layer is zero-cost when faults are off.
    pub retry: RetryPolicy,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            topics_enabled: true,
            max_frame_depth: 3,
            max_scripts_per_visit: 256,
            ab_seed: 0,
            vantage: Vantage::Europe,
            retry: RetryPolicy::none(),
        }
    }
}

/// The result of one page visit.
#[derive(Debug, Clone)]
pub struct PageVisit {
    /// Simulated wall time the page load took (network latencies of
    /// every exchange, from the latency model).
    pub duration_ms: u64,
    /// The URL requested.
    pub requested_url: Url,
    /// The final URL after redirects.
    pub final_url: Url,
    /// Redirect chain including the final URL.
    pub redirect_chain: Vec<Url>,
    /// The parsed top-level document (for banner detection).
    pub document: Document,
    /// Every object requested while rendering, in order.
    pub objects: Vec<ObjectEvent>,
    /// Every Topics API call observed, in order.
    pub topics_calls: Vec<TopicsCallEvent>,
    /// Retry attempts issued while loading the page (0 unless a retry
    /// policy is active *and* transient failures occurred; backoff time
    /// is already folded into `duration_ms`).
    pub retries: u32,
}

impl PageVisit {
    /// The website identity (registrable domain of the final URL).
    pub fn website(&self) -> Domain {
        registrable_domain(self.final_url.host())
    }
}

/// Per-visit mutable state. The optional trace builder is borrowed from
/// the crawl worker for the duration of one page visit, so span
/// recording never touches shared tracer state on the hot path.
struct VisitState<'t> {
    top_site: Site,
    objects: Vec<ObjectEvent>,
    calls: Vec<TopicsCallEvent>,
    scripts_executed: usize,
    elapsed_ms: u64,
    started: Timestamp,
    visit_nonce: u64,
    retries: u32,
    trace: Option<&'t mut TraceBuilder>,
}

impl VisitState<'_> {
    /// Account for what the retry layer did on one fetch: retries are
    /// counted and the simulated time spent waiting extends the page
    /// load.
    fn absorb_retries(&mut self, stats: RetryStats) {
        self.retries += stats.retries;
        self.elapsed_ms += stats.waited_ms;
    }

    /// Advance simulated time by one network exchange and return its
    /// timestamp — records are ordered and spaced by real latencies.
    fn tick_network(
        &mut self,
        model: &LatencyModel,
        host: &Domain,
        kind: ResourceKind,
        net: Option<&NetMetrics>,
    ) -> Timestamp {
        let ms = model.exchange_ms(host, kind);
        if let Some(net) = net {
            net.record_exchange(kind, ms);
        }
        self.elapsed_ms += ms;
        self.started.plus_millis(self.elapsed_ms)
    }

    /// Advance by one in-browser operation (a Topics call costs no
    /// network round trip but must still order after prior events).
    fn tick_local(&mut self) -> Timestamp {
        self.elapsed_ms += 1;
        self.started.plus_millis(self.elapsed_ms)
    }

    /// Current position of the simulated clock within this visit.
    fn sim_now_ms(&self) -> u64 {
        self.started.plus_millis(self.elapsed_ms).millis()
    }

    /// Open a trace span at the current simulated time.
    fn trace_open(&mut self, name: &str) -> Option<usize> {
        let sim = self.sim_now_ms();
        self.trace.as_deref_mut().map(|tb| tb.open(name, Some(sim)))
    }

    /// Attach a field to an open trace span.
    fn trace_field(
        &mut self,
        span: Option<usize>,
        key: &str,
        value: impl Into<topics_obs::FieldValue>,
    ) {
        if let (Some(tb), Some(idx)) = (self.trace.as_deref_mut(), span) {
            tb.field(idx, key, value);
        }
    }

    /// Close a trace span at the current simulated time.
    fn trace_close(&mut self, span: Option<usize>) {
        let sim = self.sim_now_ms();
        if let (Some(tb), Some(idx)) = (self.trace.as_deref_mut(), span) {
            tb.close(idx, Some(sim));
        }
    }

    /// Record a point-in-time trace leaf at `sim` milliseconds.
    fn trace_leaf_at(&mut self, name: &str, sim: u64) -> Option<usize> {
        self.trace
            .as_deref_mut()
            .map(|tb| tb.leaf(name, Some(sim), Some(sim)))
    }
}

/// Execution context for one script or frame.
#[derive(Clone)]
struct ExecCtx {
    /// Origin of the browsing context the code runs in.
    frame_origin: Origin,
    /// Host that served the running script (None for inline code).
    script_source: Option<Domain>,
    /// Iframe nesting depth.
    depth: usize,
}

/// The simulated browser.
pub struct Browser {
    /// Cookie storage (survives cache clearing, like the paper's consent
    /// state between Before-Accept and After-Accept).
    pub cookies: CookieJar,
    /// Resource cache (cleared between the two visits).
    pub cache: ResourceCache,
    engine: TopicsEngine,
    attestation: AttestationStore,
    observer: Arc<dyn BrowserObserver>,
    config: BrowserConfig,
    latency: LatencyModel,
    visit_counter: u64,
    net_metrics: Option<NetMetrics>,
    topics_metrics: Option<TopicsMetrics>,
}

impl Browser {
    /// Build a browser with a fresh profile.
    pub fn new(
        classifier: Arc<Classifier>,
        attestation: AttestationStore,
        config: BrowserConfig,
        profile_seed: u64,
    ) -> Browser {
        let engine = TopicsEngine::new(classifier, profile_seed, config.topics_enabled);
        // Latencies are a property of the *world* (per-host RTTs), so the
        // model is keyed on the shared campaign seed, not the profile.
        let latency = LatencyModel::new(config.ab_seed);
        Browser {
            cookies: CookieJar::new(),
            cache: ResourceCache::new(),
            engine,
            attestation,
            observer: Arc::new(NullObserver),
            config,
            latency,
            visit_counter: 0,
            net_metrics: None,
            topics_metrics: None,
        }
    }

    /// Attach an instrumentation observer (the crawler's recorder).
    #[must_use]
    pub fn with_observer(mut self, observer: Arc<dyn BrowserObserver>) -> Browser {
        self.observer = observer;
        self
    }

    /// Attach network-layer metrics (request counts, exchange latencies,
    /// DNS failures).
    #[must_use]
    pub fn with_net_metrics(mut self, metrics: NetMetrics) -> Browser {
        self.net_metrics = Some(metrics);
        self
    }

    /// Attach Topics-call metrics (per-type call counts, permit/block
    /// split, topics handed out).
    #[must_use]
    pub fn with_topics_metrics(mut self, metrics: TopicsMetrics) -> Browser {
        self.topics_metrics = Some(metrics);
        self
    }

    /// Access the Topics engine (for assertions and the baseline crate).
    pub fn topics_engine(&self) -> &TopicsEngine {
        &self.engine
    }

    /// Mutable access to the Topics engine (used by the baseline crate to
    /// feed synthetic browsing histories).
    pub fn topics_engine_mut(&mut self) -> &mut TopicsEngine {
        &mut self.engine
    }

    /// The attestation store in use.
    pub fn attestation(&self) -> &AttestationStore {
        &self.attestation
    }

    /// Record the user accepting the privacy banner on `site` — the CMP
    /// sets the consent cookie that both the server-side gating and the
    /// client-side `consent { … }` blocks consult.
    pub fn grant_consent(&mut self, site: &Site, now: Timestamp) {
        self.cookies.set(site, CONSENT_COOKIE, CONSENT_GRANTED, now);
    }

    /// Record the user explicitly refusing the privacy banner on `site`
    /// — the CMP stores the refusal (so the banner is not shown again),
    /// but nothing is unlocked.
    pub fn deny_consent(&mut self, site: &Site, now: Timestamp) {
        self.cookies.set(site, CONSENT_COOKIE, CONSENT_DENIED, now);
    }

    /// True when consent has been granted for `site`.
    pub fn has_consent(&self, site: &Site) -> bool {
        self.cookies
            .get(site, CONSENT_COOKIE)
            .is_some_and(|c| c.value == CONSENT_GRANTED)
    }

    /// Clear the resource cache ("we delete the browser cache to load
    /// again all objects", §2.2). Cookies and Topics state survive.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Visit a page: fetch, parse, execute tags, descend into frames.
    pub fn visit<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        now: Timestamp,
    ) -> Result<PageVisit, NetError> {
        self.visit_traced(service, url, now, "page", None)
    }

    /// [`Browser::visit`] recording a span tree into `trace` (when
    /// given): a `page-load` span encloses the document `fetch`,
    /// per-resource `fetch` spans, `script` executions and `topics-call`
    /// leaves, all stamped on the simulated clock. `phase_label` tags
    /// the page-load span with the crawl phase that requested it.
    pub fn visit_traced<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        now: Timestamp,
        phase_label: &str,
        mut trace: Option<&mut TraceBuilder>,
    ) -> Result<PageVisit, NetError> {
        let start_ms = now.millis();
        let page_span = trace.as_deref_mut().map(|tb| {
            let idx = tb.open("page-load", Some(start_ms));
            tb.field(idx, "url", url.to_string());
            tb.field(idx, "phase", phase_label);
            idx
        });
        // Thread-local allocation scope for the page load; no-op (and no
        // fields) unless the counting allocator is enabled.
        let aspan = topics_obs::alloc::AllocSpan::start();
        let result = self.visit_inner(service, url, now, trace.as_deref_mut());
        let alloc = aspan.finish();
        if let (Some(tb), Some(idx)) = (trace, page_span) {
            match &result {
                Ok(v) => {
                    tb.field(idx, "ok", true);
                    if !alloc.is_zero() {
                        tb.field(idx, "alloc_bytes", alloc.alloc_bytes);
                        tb.field(idx, "alloc_count", alloc.alloc_count);
                        tb.field(idx, "peak_bytes", alloc.peak_bytes);
                    }
                    tb.close(idx, Some(start_ms + v.duration_ms));
                }
                Err(e) => {
                    tb.field(idx, "ok", false);
                    tb.field(idx, "error", e.kind());
                    tb.close(idx, Some(start_ms));
                }
            }
        }
        result
    }

    fn visit_inner<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        now: Timestamp,
        mut trace: Option<&mut TraceBuilder>,
    ) -> Result<PageVisit, NetError> {
        self.visit_counter += 1;
        if let Err(e) = service.resolve_ranked(url.host()) {
            if let Some(net) = &self.net_metrics {
                net.record_dns_failure();
            }
            if let Some(tb) = trace.as_deref_mut() {
                let leaf = tb.leaf("fetch", Some(now.millis()), Some(now.millis()));
                tb.field(leaf, "host", url.host().as_str());
                tb.field(leaf, "kind", kind_label(ResourceKind::Document));
                tb.field(leaf, "ok", false);
                tb.field(leaf, "error", "dns");
            }
            return Err(e.into());
        }

        // Follow document redirects by hand so cookies are re-evaluated
        // per hop — an alias domain's redirect target must see its own
        // consent cookie, exactly as a real browser would send it.
        let mut current = url.clone();
        let mut chain = vec![current.clone()];
        let mut doc_retry = RetryStats::default();
        let doc_span = trace.as_deref_mut().map(|tb| {
            let idx = tb.open("fetch", Some(now.millis()));
            tb.field(idx, "host", url.host().as_str());
            tb.field(idx, "kind", kind_label(ResourceKind::Document));
            idx
        });
        let outcome = loop {
            let mut request = HttpRequest::get(current.clone(), ResourceKind::Document);
            request.vantage = self.config.vantage;
            let cookie_header = self.cookies.header_for(&Site::of(&current));
            if !cookie_header.is_empty() {
                request.headers.set("Cookie", cookie_header);
            }
            let (result, stats) = fetch_exchange_traced(
                service,
                &request,
                now.plus_millis(doc_retry.waited_ms),
                &self.config.retry,
                self.net_metrics.as_ref(),
                trace.as_deref_mut(),
            );
            doc_retry.absorb(stats);
            let response = result?;
            if !response.status.is_redirect() {
                break topics_net::service::FetchOutcome {
                    final_url: current,
                    chain,
                    response,
                };
            }
            let location = response.location().ok_or_else(|| NetError::BadRedirect {
                url: current.to_string(),
            })?;
            let next = current.join(location)?;
            if chain.len() > topics_net::service::MAX_REDIRECTS {
                return Err(NetError::TooManyRedirects {
                    url: next.to_string(),
                    hops: chain.len(),
                });
            }
            if next.host() != current.host() {
                if let Err(e) = service.resolve_third_party(next.host()) {
                    if let Some(net) = &self.net_metrics {
                        net.record_dns_failure();
                    }
                    return Err(e.into());
                }
            }
            chain.push(next.clone());
            current = next;
        };
        let top_site = Site::of(&outcome.final_url);

        let mut state = VisitState {
            top_site: top_site.clone(),
            objects: Vec::new(),
            calls: Vec::new(),
            scripts_executed: 0,
            elapsed_ms: 0,
            started: now,
            visit_nonce: self.visit_counter,
            retries: 0,
            trace,
        };
        state.absorb_retries(doc_retry);
        // The document itself is the first recorded object; redirects
        // each cost a round trip.
        let mut ts = now;
        for hop in &outcome.chain {
            ts = state.tick_network(
                &self.latency,
                hop.host(),
                ResourceKind::Document,
                self.net_metrics.as_ref(),
            );
        }
        state.trace_field(doc_span, "ok", outcome.response.status.is_success());
        state.trace_field(doc_span, "redirects", outcome.chain.len() as u64 - 1);
        state.trace_close(doc_span);
        let doc_event = ObjectEvent {
            url: outcome.final_url.clone(),
            kind: ResourceKind::Document,
            ok: outcome.response.status.is_success(),
            timestamp: ts,
        };
        self.observer.on_object(&doc_event);
        state.objects.push(doc_event);

        // Browsing activity feeds the Topics history.
        self.engine.record_visit(&top_site, now);

        let document = html::parse(&outcome.response.body);
        let ctx = ExecCtx {
            frame_origin: Origin::of(&outcome.final_url),
            script_source: None,
            depth: 0,
        };
        self.process_document(service, &document, &ctx, &mut state, &outcome.final_url);

        Ok(PageVisit {
            duration_ms: state.elapsed_ms,
            requested_url: url.clone(),
            final_url: outcome.final_url,
            redirect_chain: outcome.chain,
            document,
            objects: state.objects,
            topics_calls: state.calls,
            retries: state.retries,
        })
    }

    /// Walk a parsed document's nodes in order.
    fn process_document<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        document: &Document,
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
        base: &Url,
    ) {
        for node in &document.nodes {
            match node {
                Node::Script { src: Some(src), .. } => {
                    if let Ok(url) = base.join(src) {
                        self.load_and_run_script(service, &url, ctx, state);
                    }
                }
                Node::Script {
                    src: None, inline, ..
                } => {
                    if let Ok(stmts) = script::parse(inline) {
                        let inline_ctx = ExecCtx {
                            script_source: None,
                            ..ctx.clone()
                        };
                        self.execute(service, &stmts, &inline_ctx, state, base);
                    }
                }
                Node::Iframe {
                    src,
                    browsing_topics,
                    ..
                } => {
                    if let Ok(url) = base.join(src) {
                        self.load_iframe(service, &url, *browsing_topics, ctx, state);
                    }
                }
                Node::Img { src } => {
                    if let Ok(url) = base.join(src) {
                        let _ = self.fetch_subresource(service, &url, ResourceKind::Image, state);
                    }
                }
                Node::Stylesheet { href } => {
                    if let Ok(url) = base.join(href) {
                        let _ = self.fetch_subresource(service, &url, ResourceKind::Style, state);
                    }
                }
                Node::Clickable { .. } | Node::Container { .. } => {}
            }
        }
    }

    /// Fetch an external script and execute it **in the current context**
    /// — the Figure 4 mechanism that makes GTM's `browsingTopics()` call
    /// appear to come from the website itself.
    fn load_and_run_script<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
    ) {
        if state.scripts_executed >= self.config.max_scripts_per_visit {
            return;
        }
        state.scripts_executed += 1;
        let span = state.trace_open("script");
        state.trace_field(span, "host", url.host().as_str());
        let Some(response) = self.fetch_subresource(service, url, ResourceKind::Script, state)
        else {
            state.trace_field(span, "ok", false);
            state.trace_close(span);
            return;
        };
        let Ok(stmts) = script::parse(&response.body) else {
            // a broken third-party script fails silently, as on the web
            state.trace_field(span, "ok", false);
            state.trace_close(span);
            return;
        };
        let script_ctx = ExecCtx {
            frame_origin: ctx.frame_origin.clone(), // unchanged: root context!
            script_source: Some(url.host().clone()),
            depth: ctx.depth,
        };
        let base = url.clone();
        self.execute(service, &stmts, &script_ctx, state, &base);
        state.trace_field(span, "ok", true);
        state.trace_close(span);
    }

    /// Create a child browsing context for an iframe and process its
    /// document. With `browsing_topics` set, the frame's document request
    /// is itself a Topics call attributed to the frame host.
    fn load_iframe<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        browsing_topics: bool,
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
    ) {
        if ctx.depth >= self.config.max_frame_depth {
            return;
        }
        let mut extra_header: Option<String> = None;
        if browsing_topics {
            let header = self.record_topics_call(url.host(), CallType::Iframe, None, ctx, state);
            extra_header = header;
        }
        let Some(response) = self.fetch_subresource_with_header(
            service,
            url,
            ResourceKind::Document,
            state,
            extra_header,
        ) else {
            return;
        };
        let child_doc = html::parse(&response.body);
        let child_ctx = ExecCtx {
            frame_origin: Origin::of(url),
            script_source: None,
            depth: ctx.depth + 1,
        };
        self.process_document(service, &child_doc, &child_ctx, state, url);
    }

    /// Execute TagScript statements.
    fn execute<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        stmts: &[Stmt],
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
        base: &Url,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::TopicsJs | Stmt::TopicsJsSkipObservation => {
                    // JavaScript call: caller is the *calling context's*
                    // origin host, not the script's source.
                    let caller = ctx.frame_origin.host.clone();
                    let observe = matches!(stmt, Stmt::TopicsJs);
                    self.record_topics_call_with_options(
                        &caller,
                        CallType::JavaScript,
                        ctx.script_source.clone(),
                        ctx,
                        state,
                        observe,
                    );
                }
                Stmt::TopicsFetch(target) => {
                    if let Ok(url) = base.join(target) {
                        let header = self.record_topics_call(
                            url.host(),
                            CallType::Fetch,
                            ctx.script_source.clone(),
                            ctx,
                            state,
                        );
                        let response = self.fetch_subresource_with_header(
                            service,
                            &url,
                            ResourceKind::Fetch,
                            state,
                            header,
                        );
                        // `Observe-Browsing-Topics: ?1` marks the caller as
                        // observing the user on this site.
                        if response.is_some_and(|r| r.observes_topics()) {
                            let now = state.started;
                            self.engine
                                .record_observation(url.host(), &state.top_site, now);
                        }
                    }
                }
                Stmt::TopicsIframe(target) => {
                    if let Ok(url) = base.join(target) {
                        self.load_iframe(service, &url, true, ctx, state);
                    }
                }
                Stmt::Fetch(target) => {
                    if let Ok(url) = base.join(target) {
                        let _ = self.fetch_subresource(service, &url, ResourceKind::Fetch, state);
                    }
                }
                Stmt::Img(target) => {
                    if let Ok(url) = base.join(target) {
                        let _ = self.fetch_subresource(service, &url, ResourceKind::Image, state);
                    }
                }
                Stmt::LoadScript(target) => {
                    if let Ok(url) = base.join(target) {
                        self.load_and_run_script(service, &url, ctx, state);
                    }
                }
                Stmt::LoadIframe(target) => {
                    if let Ok(url) = base.join(target) {
                        self.load_iframe(service, &url, false, ctx, state);
                    }
                }
                Stmt::SetCookie { name, value } => {
                    let site = ctx.frame_origin.site();
                    let now = state.started;
                    self.cookies.set(&site, name, value, now);
                }
                Stmt::Ab { p, scope, body } => {
                    if self.ab_decision(*p, *scope, ctx, state) {
                        self.execute(service, body, ctx, state, base);
                    }
                }
                Stmt::IfConsent(body) => {
                    if self.has_consent(&state.top_site) {
                        self.execute(service, body, ctx, state, base);
                    }
                }
                Stmt::IfNoConsent(body) => {
                    if !self.has_consent(&state.top_site) {
                        self.execute(service, body, ctx, state, base);
                    }
                }
                Stmt::After { day, body } => {
                    let today = state.started.millis() / topics_net::clock::MILLIS_PER_DAY;
                    if today >= *day {
                        self.execute(service, body, ctx, state, base);
                    }
                }
            }
        }
    }

    /// Evaluate an A/B gate. The coin is keyed on the experimenting party
    /// (the script's serving host, or the frame host for inline code),
    /// the visited website, the scope extras, and the gate's probability
    /// itself — so distinct gates in one script draw independent coins
    /// while repeated gates with the same parameters agree (real
    /// experimentation systems salt assignments by experiment id).
    fn ab_decision(&self, p: f64, scope: AbScope, ctx: &ExecCtx, state: &VisitState<'_>) -> bool {
        let party = ctx
            .script_source
            .as_ref()
            .map(registrable_domain)
            .unwrap_or_else(|| registrable_domain(&ctx.frame_origin.host));
        let mut key = seed::derive(self.config.ab_seed, party.as_str());
        key = seed::derive(key, state.top_site.domain().as_str());
        match scope {
            AbScope::Site => {}
            AbScope::Visit => {
                key = seed::derive_idx(key, state.visit_nonce);
            }
            AbScope::TimeWindow { hours } => {
                let window = state.started.millis() / (u64::from(hours) * 3_600_000);
                key = seed::derive_idx(key, window);
            }
        }
        seed::unit_f64(seed::derive(key, &format!("ab:{p:.4}"))) < p
    }

    /// The single Topics-call path: enrolment check, engine invocation,
    /// instrumentation event. Returns the `Sec-Browsing-Topics` header
    /// value for fetch/iframe-type calls when topics were attached.
    fn record_topics_call(
        &mut self,
        caller: &Domain,
        call_type: CallType,
        script_source: Option<Domain>,
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
    ) -> Option<String> {
        self.record_topics_call_with_options(caller, call_type, script_source, ctx, state, true)
    }

    /// [`Browser::record_topics_call`] with the `skipObservation`
    /// option surfaced (`observe = false` ⇒ the caller reads topics
    /// without being recorded as observing this site).
    #[allow(clippy::too_many_arguments)]
    fn record_topics_call_with_options(
        &mut self,
        caller: &Domain,
        call_type: CallType,
        script_source: Option<Domain>,
        ctx: &ExecCtx,
        state: &mut VisitState<'_>,
        observe: bool,
    ) -> Option<String> {
        if !self.engine.enabled() {
            return None; // API disabled: the promise rejects, nothing is logged
        }
        let decision = self.attestation.check(caller);
        let timestamp = state.tick_local();
        let mut topics_returned = 0usize;
        let mut header = None;
        if decision.permits() {
            if let Some(answer) = self.engine.browsing_topics_with_options(
                caller,
                &state.top_site,
                timestamp,
                observe,
            ) {
                topics_returned = answer.topics.len();
                if !answer.topics.is_empty()
                    && matches!(call_type, CallType::Fetch | CallType::Iframe)
                {
                    let ids: Vec<String> = answer
                        .topics
                        .iter()
                        .map(|t| t.topic.get().to_string())
                        .collect();
                    header = Some(format!(
                        "({});v=chrome.1:{}",
                        ids.join(" "),
                        answer.taxonomy_version
                    ));
                }
            }
        }
        if let Some(m) = &self.topics_metrics {
            m.record_call(call_type, decision.permits(), topics_returned);
        }
        let leaf = state.trace_leaf_at("topics-call", timestamp.millis());
        state.trace_field(leaf, "caller", caller.as_str());
        state.trace_field(leaf, "type", call_type.label());
        state.trace_field(leaf, "permitted", decision.permits());
        state.trace_field(leaf, "topics", topics_returned);
        let event = TopicsCallEvent {
            caller: caller.clone(),
            website: state.top_site.domain().clone(),
            call_type,
            root_context: ctx.depth == 0,
            script_source,
            decision,
            topics_returned,
            timestamp,
        };
        self.observer.on_topics_call(&event);
        state.calls.push(event);
        header
    }

    /// Fetch a subresource through cache + DNS + redirects, recording the
    /// object event. Returns the response on success.
    fn fetch_subresource<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        kind: ResourceKind,
        state: &mut VisitState<'_>,
    ) -> Option<HttpResponse> {
        self.fetch_subresource_with_header(service, url, kind, state, None)
    }

    fn fetch_subresource_with_header<S: NetworkService + ?Sized>(
        &mut self,
        service: &S,
        url: &Url,
        kind: ResourceKind,
        state: &mut VisitState<'_>,
        topics_header: Option<String>,
    ) -> Option<HttpResponse> {
        // Cache hit: no network, but the object was still "used by the
        // page" — record it as loaded (at local-op cost).
        if topics_header.is_none() {
            if let Some(cached) = self.cache.lookup(url) {
                let timestamp = state.tick_local();
                let leaf = state.trace_leaf_at("fetch", timestamp.millis());
                state.trace_field(leaf, "host", url.host().as_str());
                state.trace_field(leaf, "kind", kind_label(kind));
                state.trace_field(leaf, "cached", true);
                state.trace_field(leaf, "ok", true);
                let event = ObjectEvent {
                    url: url.clone(),
                    kind,
                    ok: true,
                    timestamp,
                };
                self.observer.on_object(&event);
                state.objects.push(event);
                return Some(cached);
            }
        }
        let span = state.trace_open("fetch");
        state.trace_field(span, "host", url.host().as_str());
        state.trace_field(span, "kind", kind_label(kind));
        let timestamp =
            state.tick_network(&self.latency, url.host(), kind, self.net_metrics.as_ref());
        let resolved = service.resolve_third_party(url.host());
        if resolved.is_err() {
            if let Some(net) = &self.net_metrics {
                net.record_dns_failure();
            }
            state.trace_field(span, "error", "dns");
        }
        let response = match resolved {
            Err(e) => Err(NetError::from(e)),
            Ok(()) => {
                let mut request = HttpRequest::get(url.clone(), kind);
                request.vantage = self.config.vantage;
                let cookie_header = self.cookies.header_for(&Site::of(url));
                if !cookie_header.is_empty() {
                    request.headers.set("Cookie", cookie_header);
                }
                if let Some(h) = &topics_header {
                    request.headers.set(SEC_BROWSING_TOPICS, h.clone());
                }
                let (result, stats) = fetch_following_redirects_traced(
                    service,
                    request,
                    timestamp,
                    &self.config.retry,
                    self.net_metrics.as_ref(),
                    state.trace.as_deref_mut(),
                );
                state.absorb_retries(stats);
                result
            }
        };
        let (ok, response) = match response {
            Ok(outcome) if outcome.response.status.is_success() => (true, Some(outcome.response)),
            Ok(_) | Err(_) => (false, None),
        };
        state.trace_field(span, "ok", ok);
        state.trace_close(span);
        if let Some(r) = &response {
            self.cache.store(url, r);
        }
        let event = ObjectEvent {
            url: url.clone(),
            kind,
            ok,
            timestamp,
        };
        self.observer.on_object(&event);
        state.objects.push(event);
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AllowDecision;
    use std::collections::HashMap;
    use topics_net::dns::DnsError;

    /// A hand-built two-page web for browser tests.
    struct TinyWeb {
        pages: HashMap<String, String>,
    }

    impl TinyWeb {
        fn new() -> TinyWeb {
            TinyWeb {
                pages: HashMap::new(),
            }
        }
        fn page(mut self, url: &str, body: &str) -> TinyWeb {
            self.pages.insert(url.to_owned(), body.to_owned());
            self
        }
    }

    impl NetworkService for TinyWeb {
        fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
            Ok(())
        }
        fn fetch(&self, req: &HttpRequest, _now: Timestamp) -> Result<HttpResponse, NetError> {
            let key = format!(
                "{}://{}{}",
                req.url.scheme().as_str(),
                req.url.host(),
                req.url.path()
            );
            match self.pages.get(&key) {
                Some(body) => {
                    let ct = if req.kind == ResourceKind::Script {
                        "text/tagscript"
                    } else {
                        "text/html"
                    };
                    Ok(HttpResponse::ok(ct, body.clone()))
                }
                None => Ok(HttpResponse::not_found()),
            }
        }
    }

    fn browser(attestation: AttestationStore) -> Browser {
        let classifier = Arc::new(Classifier::new(5).with_unclassifiable_rate(0.0));
        Browser::new(classifier, attestation, BrowserConfig::default(), 11)
    }

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn external_script_runs_in_root_context() {
        // Figure 4 / §4: GTM included via <script src> calls browsingTopics
        // with the website's own origin.
        let web = TinyWeb::new()
            .page(
                "https://news.example/",
                r#"<html><script src="https://tags.gtm-like.com/gtm.js"></script></html>"#,
            )
            .page("https://tags.gtm-like.com/gtm.js", "topics js");
        let mut b = browser(AttestationStore::corrupted());
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert_eq!(visit.topics_calls.len(), 1);
        let call = &visit.topics_calls[0];
        assert_eq!(call.caller.as_str(), "news.example", "caller is the SITE");
        assert_eq!(
            call.script_source.as_ref().unwrap().as_str(),
            "tags.gtm-like.com"
        );
        assert!(call.root_context);
        assert_eq!(call.call_type, CallType::JavaScript);
        assert_eq!(call.decision, AllowDecision::AllowedFailOpen);
    }

    #[test]
    fn iframe_script_runs_in_frame_context() {
        let web = TinyWeb::new()
            .page(
                "https://news.example/",
                r#"<iframe src="https://adplatform.com/frame"></iframe>"#,
            )
            .page(
                "https://adplatform.com/frame",
                r#"<html><script>topics js</script></html>"#,
            );
        let mut b = browser(AttestationStore::corrupted());
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert_eq!(visit.topics_calls.len(), 1);
        let call = &visit.topics_calls[0];
        assert_eq!(
            call.caller.as_str(),
            "adplatform.com",
            "caller is the FRAME"
        );
        assert!(!call.root_context);
        assert_eq!(call.website.as_str(), "news.example");
    }

    #[test]
    fn healthy_allowlist_blocks_unenrolled_callers() {
        let web = TinyWeb::new()
            .page(
                "https://news.example/",
                r#"<script src="https://notenrolled.com/tag.js"></script>
                   <iframe src="https://enrolled.com/frame"></iframe>"#,
            )
            .page("https://notenrolled.com/tag.js", "topics js")
            .page("https://enrolled.com/frame", "<script>topics js</script>");
        let mut b = browser(AttestationStore::healthy([d("enrolled.com")]));
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert_eq!(visit.topics_calls.len(), 2);
        // Call 1: JS call attributed to news.example (not enrolled) → blocked.
        assert_eq!(
            visit.topics_calls[0].decision,
            AllowDecision::BlockedNotEnrolled
        );
        // Call 2: from enrolled.com's frame → allowed.
        assert_eq!(
            visit.topics_calls[1].decision,
            AllowDecision::AllowedEnrolled
        );
    }

    #[test]
    fn iframe_browsingtopics_attribute_is_an_iframe_call() {
        let web = TinyWeb::new()
            .page(
                "https://news.example/",
                r#"<iframe src="https://ads.example/slot" browsingtopics></iframe>"#,
            )
            .page("https://ads.example/slot", "<html></html>");
        let mut b = browser(AttestationStore::corrupted());
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert_eq!(visit.topics_calls.len(), 1);
        assert_eq!(visit.topics_calls[0].call_type, CallType::Iframe);
        assert_eq!(visit.topics_calls[0].caller.as_str(), "ads.example");
    }

    #[test]
    fn consent_blocks_guarded_calls() {
        let web = TinyWeb::new()
            .page(
                "https://shop.example/",
                r#"<script src="https://goodactor.com/tag.js"></script>"#,
            )
            .page("https://goodactor.com/tag.js", "consent {\ntopics js\n}");
        let mut b = browser(AttestationStore::corrupted());
        let u = url("https://shop.example/");
        // Before-Accept: no call.
        let before = b.visit(&web, &u, Timestamp::ORIGIN).unwrap();
        assert!(before.topics_calls.is_empty());
        // Grant consent, After-Accept: call happens.
        b.grant_consent(&Site::of(&u), Timestamp::ORIGIN);
        b.clear_cache();
        let after = b.visit(&web, &u, Timestamp(1000)).unwrap();
        assert_eq!(after.topics_calls.len(), 1);
    }

    #[test]
    fn ab_site_gate_is_stable_per_site_and_varies_across_sites() {
        let tag = "ab 0.5 site {\ntopics js\n}";
        let mut pages = TinyWeb::new().page("https://cp-tags.com/tag.js", tag);
        for i in 0..40 {
            pages = pages.page(
                &format!("https://site{i}.example/"),
                r#"<script src="https://cp-tags.com/tag.js"></script>"#,
            );
        }
        let mut called = Vec::new();
        let mut b = browser(AttestationStore::corrupted());
        for i in 0..40 {
            let v = b
                .visit(
                    &pages,
                    &url(&format!("https://site{i}.example/")),
                    Timestamp::ORIGIN,
                )
                .unwrap();
            called.push(!v.topics_calls.is_empty());
        }
        let on = called.iter().filter(|&&c| c).count();
        assert!(on > 5 && on < 35, "should split sites, got {on}/40");
        // Re-visiting gives identical decisions (site scope is stable).
        for (i, was_called) in called.iter().enumerate() {
            let v = b
                .visit(
                    &pages,
                    &url(&format!("https://site{i}.example/")),
                    Timestamp(5),
                )
                .unwrap();
            assert_eq!(!v.topics_calls.is_empty(), *was_called);
        }
    }

    #[test]
    fn time_window_gate_alternates() {
        let tag = "ab 0.5 time:6h {\ntopics js\n}";
        let web = TinyWeb::new().page("https://cp-tags.com/tag.js", tag).page(
            "https://onesite.example/",
            r#"<script src="https://cp-tags.com/tag.js"></script>"#,
        );
        let mut b = browser(AttestationStore::corrupted());
        let mut pattern = Vec::new();
        for hour in (0..96).step_by(6) {
            let v = b
                .visit(
                    &web,
                    &url("https://onesite.example/"),
                    Timestamp(hour * 3_600_000),
                )
                .unwrap();
            pattern.push(!v.topics_calls.is_empty());
        }
        // Within one window, decisions are constant; across 16 windows we
        // should see both ON and OFF periods.
        assert!(pattern.iter().any(|&x| x));
        assert!(pattern.iter().any(|&x| !x));
    }

    #[test]
    fn objects_are_recorded_for_all_resource_kinds() {
        let web = TinyWeb::new()
            .page(
                "https://media.example/",
                r#"<script src="https://lib.example/l.js"></script>
                   <img src="https://px.example/p.gif">
                   <link rel="stylesheet" href="/main.css">"#,
            )
            .page(
                "https://lib.example/l.js",
                "img https://beacon.example/b.gif",
            )
            .page("https://media.example/main.css", "body{}")
            .page("https://px.example/p.gif", "gif")
            .page("https://beacon.example/b.gif", "gif");
        let mut b = browser(AttestationStore::corrupted());
        let visit = b
            .visit(&web, &url("https://media.example/"), Timestamp::ORIGIN)
            .unwrap();
        let kinds: Vec<ResourceKind> = visit.objects.iter().map(|o| o.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ResourceKind::Document,
                ResourceKind::Script,
                ResourceKind::Image, // beacon fired by the script
                ResourceKind::Image, // px
                ResourceKind::Style,
            ]
        );
        assert!(visit.objects.iter().all(|o| o.ok));
        // Timestamps are strictly increasing.
        for w in visit.objects.windows(2) {
            assert!(w[0].timestamp < w[1].timestamp);
        }
    }

    #[test]
    fn script_inclusion_cycles_are_bounded() {
        let web = TinyWeb::new()
            .page(
                "https://loop.example/",
                r#"<script src="https://a.example/a.js"></script>"#,
            )
            .page("https://a.example/a.js", "script https://b.example/b.js")
            .page("https://b.example/b.js", "script https://a.example/a.js");
        let mut b = browser(AttestationStore::corrupted());
        // Must terminate.
        let visit = b
            .visit(&web, &url("https://loop.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert!(visit.objects.len() <= BrowserConfig::default().max_scripts_per_visit + 2);
    }

    #[test]
    fn frame_depth_is_bounded() {
        let mut web = TinyWeb::new().page(
            "https://deep.example/",
            r#"<iframe src="https://f0.example/f"></iframe>"#,
        );
        for i in 0..10 {
            web = web.page(
                &format!("https://f{i}.example/f"),
                &format!(r#"<iframe src="https://f{}.example/f"></iframe>"#, i + 1),
            );
        }
        let mut b = browser(AttestationStore::corrupted());
        let visit = b
            .visit(&web, &url("https://deep.example/"), Timestamp::ORIGIN)
            .unwrap();
        let frames = visit
            .objects
            .iter()
            .filter(|o| o.kind == ResourceKind::Document)
            .count();
        // Top document + at most max_frame_depth nested documents.
        assert!(frames <= 1 + BrowserConfig::default().max_frame_depth);
    }

    #[test]
    fn topics_fetch_attaches_header_and_observes() {
        struct HeaderCheck;
        impl NetworkService for HeaderCheck {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), DnsError> {
                Ok(())
            }
            fn fetch(&self, req: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                match req.url.path() {
                    "/" => Ok(HttpResponse::ok(
                        "text/html",
                        r#"<script src="https://adnet.com/tag.js"></script>"#,
                    )),
                    "/tag.js" => Ok(HttpResponse::ok(
                        "text/tagscript",
                        "topics fetch https://adnet.com/bid",
                    )),
                    "/bid" => {
                        let mut r = HttpResponse::ok("application/json", "{}");
                        r.headers
                            .set(topics_net::http::OBSERVE_BROWSING_TOPICS, "?1");
                        Ok(r)
                    }
                    _ => Ok(HttpResponse::not_found()),
                }
            }
        }
        let mut b = browser(AttestationStore::corrupted());
        // Seed three epochs of history so there are topics to attach.
        for epoch in 0..3 {
            for i in 0..20 {
                let s = Site::of(&url(&format!("https://hist{epoch}x{i}.com/")));
                b.topics_engine_mut()
                    .record_visit(&s, Timestamp::from_weeks(epoch));
                b.topics_engine_mut().record_observation(
                    &d("adnet.com"),
                    &s,
                    Timestamp::from_weeks(epoch),
                );
            }
        }
        let visit = b
            .visit(
                &HeaderCheck,
                &url("https://pub.example/"),
                Timestamp::from_weeks(3),
            )
            .unwrap();
        assert_eq!(visit.topics_calls.len(), 1);
        let call = &visit.topics_calls[0];
        assert_eq!(call.call_type, CallType::Fetch);
        assert_eq!(call.caller.as_str(), "adnet.com");
        assert!(call.topics_returned > 0, "history should yield topics");
    }

    #[test]
    fn disabled_topics_setting_suppresses_everything() {
        let web = TinyWeb::new().page("https://news.example/", "<script>topics js</script>");
        let classifier = Arc::new(Classifier::new(5));
        let config = BrowserConfig {
            topics_enabled: false,
            ..Default::default()
        };
        let mut b = Browser::new(classifier, AttestationStore::corrupted(), config, 1);
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        assert!(visit.topics_calls.is_empty());
    }

    #[test]
    fn emitted_topics_headers_parse_with_the_net_parser() {
        use parking_lot::Mutex;
        use std::sync::Arc as StdArc;
        // Capture the raw header the browser attaches to a topics-fetch.
        struct HeaderSpy {
            captured: StdArc<Mutex<Vec<String>>>,
        }
        impl NetworkService for HeaderSpy {
            fn resolve_ranked(&self, _d: &Domain) -> Result<(), topics_net::dns::DnsError> {
                Ok(())
            }
            fn resolve_third_party(&self, _d: &Domain) -> Result<(), topics_net::dns::DnsError> {
                Ok(())
            }
            fn fetch(&self, req: &HttpRequest, _n: Timestamp) -> Result<HttpResponse, NetError> {
                if let Some(h) = req.headers.get(SEC_BROWSING_TOPICS) {
                    self.captured.lock().push(h.to_owned());
                }
                Ok(match req.url.path() {
                    "/" => HttpResponse::ok(
                        "text/html",
                        r#"<script src="https://adnet.com/tag.js"></script>"#,
                    ),
                    "/tag.js" => {
                        HttpResponse::ok("text/tagscript", "topics fetch https://adnet.com/bid")
                    }
                    _ => HttpResponse::ok("application/json", "{}"),
                })
            }
        }
        let captured = StdArc::new(Mutex::new(Vec::new()));
        let spy = HeaderSpy {
            captured: captured.clone(),
        };
        let mut b = browser(AttestationStore::corrupted());
        // Seed history so the header carries topics.
        for epoch in 0..3 {
            for i in 0..20 {
                let s = Site::of(&url(&format!("https://h{epoch}x{i}.com/")));
                b.topics_engine_mut()
                    .record_visit(&s, Timestamp::from_weeks(epoch));
                b.topics_engine_mut().record_observation(
                    &d("adnet.com"),
                    &s,
                    Timestamp::from_weeks(epoch),
                );
            }
        }
        b.visit(&spy, &url("https://pub.example/"), Timestamp::from_weeks(3))
            .unwrap();
        let headers = captured.lock().clone();
        assert!(!headers.is_empty(), "a topics header was sent");
        for h in &headers {
            let parsed = topics_net::http::parse_topics_header(h)
                .unwrap_or_else(|| panic!("unparsable header {h:?}"));
            assert!(!parsed.topics.is_empty());
            assert!(parsed.version.starts_with("chrome.1:"));
        }
    }

    #[test]
    fn recording_observer_mirrors_page_visit() {
        use crate::observer::RecordingObserver;
        let web = TinyWeb::new()
            .page(
                "https://news.example/",
                r#"<script>topics js</script><img src="https://px.example/p.gif">"#,
            )
            .page("https://px.example/p.gif", "gif");
        let rec = RecordingObserver::shared();
        let classifier = Arc::new(Classifier::new(5).with_unclassifiable_rate(0.0));
        let mut b = Browser::new(
            classifier,
            AttestationStore::corrupted(),
            BrowserConfig::default(),
            11,
        )
        .with_observer(rec.clone());
        let visit = b
            .visit(&web, &url("https://news.example/"), Timestamp::ORIGIN)
            .unwrap();
        let (calls, objects) = rec.drain();
        assert_eq!(calls, visit.topics_calls, "observer sees the same calls");
        assert_eq!(objects, visit.objects, "observer sees the same objects");
    }

    #[test]
    fn cache_survives_within_profile_until_cleared() {
        let web = TinyWeb::new()
            .page(
                "https://s.example/",
                r#"<img src="https://cdn.example/i.png">"#,
            )
            .page("https://cdn.example/i.png", "png");
        let mut b = browser(AttestationStore::corrupted());
        let u = url("https://s.example/");
        b.visit(&web, &u, Timestamp::ORIGIN).unwrap();
        let (h0, _) = b.cache.stats();
        b.visit(&web, &u, Timestamp(1)).unwrap();
        let (h1, _) = b.cache.stats();
        assert!(h1 > h0, "second visit hits the cache");
        b.clear_cache();
        assert!(b.cache.is_empty());
    }
}
