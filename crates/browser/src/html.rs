//! A tolerant HTML parser for the subset of markup the simulated web
//! serves and the crawler inspects.
//!
//! The measurement pipeline needs four things from a page:
//!
//! 1. the `<script>` tags (external `src` or inline body) — these drive
//!    tag execution and the §4 root-context semantics;
//! 2. the `<iframe>` tags, including the `browsingtopics` attribute that
//!    triggers the iframe-type Topics call;
//! 3. passive subresources (`<img>`, `<link rel=stylesheet>`) so the
//!    crawler can record "the URL of each first- and third-party object
//!    downloaded to render the page" (§2.2);
//! 4. visible clickable text (`<button>`, `<a>`, and container `<div>`s)
//!    for Priv-Accept's consent-banner detection.
//!
//! The parser is a forgiving single-pass tokenizer: unknown tags are
//! skipped, attributes may be quoted or bare, and malformed markup
//! degrades to text rather than failing.

/// One attribute on a tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name, lowercased.
    pub name: String,
    /// Attribute value; empty for boolean attributes.
    pub value: String,
}

/// A parsed node of interest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// `<script src=…>` or `<script>inline</script>`.
    Script {
        /// External source URL, if any.
        src: Option<String>,
        /// Inline body (empty for external scripts).
        inline: String,
        /// All attributes.
        attrs: Vec<Attr>,
    },
    /// `<iframe src=…>`.
    Iframe {
        /// Frame document URL.
        src: String,
        /// True when the `browsingtopics` attribute is present — the
        /// iframe-type Topics API call.
        browsing_topics: bool,
        /// All attributes.
        attrs: Vec<Attr>,
    },
    /// `<img src=…>`.
    Img {
        /// Image URL.
        src: String,
    },
    /// `<link rel=stylesheet href=…>`.
    Stylesheet {
        /// Stylesheet URL.
        href: String,
    },
    /// A text-bearing element relevant to banner detection.
    Clickable {
        /// `button` or `a`.
        tag: String,
        /// Inner text with tags stripped, whitespace collapsed.
        text: String,
        /// `id` attribute, if present.
        id: Option<String>,
        /// `class` attribute tokens.
        classes: Vec<String>,
    },
    /// A `<div>` with its class list and flattened inner text (used to
    /// find banner containers).
    Container {
        /// `class` attribute tokens.
        classes: Vec<String>,
        /// `id` attribute, if present.
        id: Option<String>,
        /// Flattened text of the subtree.
        text: String,
    },
}

/// A parsed document.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Nodes in document order.
    pub nodes: Vec<Node>,
    /// `<title>` text, if present.
    pub title: Option<String>,
}

impl Document {
    /// All script nodes in order.
    pub fn scripts(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Script { .. }))
    }

    /// All clickable (button/anchor) nodes.
    pub fn clickables(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Clickable { .. }))
    }
}

/// Parse a page. Never fails: unparsable input yields fewer nodes.
///
/// ```
/// use topics_browser::html::{parse, Node};
///
/// let doc = parse(r#"<script src="https://cdn.example/a.js"></script>"#);
/// assert!(matches!(&doc.nodes[0], Node::Script { src: Some(_), .. }));
/// ```
pub fn parse(html: &str) -> Document {
    let mut doc = Document::default();
    let bytes = html.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if html[i..].starts_with("<!--") {
            i = html[i..]
                .find("-->")
                .map(|j| i + j + 3)
                .unwrap_or(bytes.len());
            continue;
        }
        let Some((tag, attrs, self_closing, after)) = parse_tag(html, i) else {
            i += 1;
            continue;
        };
        i = after;
        match tag.as_str() {
            "script" => {
                let src = attr(&attrs, "src");
                let (inline, next) = if self_closing {
                    (String::new(), i)
                } else {
                    read_raw_until_close(html, i, "script")
                };
                i = next;
                doc.nodes.push(Node::Script {
                    src,
                    inline: inline.trim().to_owned(),
                    attrs,
                });
            }
            "iframe" => {
                if let Some(src) = attr(&attrs, "src") {
                    let browsing_topics = attrs.iter().any(|a| a.name == "browsingtopics");
                    doc.nodes.push(Node::Iframe {
                        src,
                        browsing_topics,
                        attrs,
                    });
                }
                if !self_closing {
                    let (_, next) = read_raw_until_close(html, i, "iframe");
                    i = next;
                }
            }
            "img" => {
                if let Some(src) = attr(&attrs, "src") {
                    doc.nodes.push(Node::Img { src });
                }
            }
            "link" => {
                let rel = attr(&attrs, "rel").unwrap_or_default();
                if rel.eq_ignore_ascii_case("stylesheet") {
                    if let Some(href) = attr(&attrs, "href") {
                        doc.nodes.push(Node::Stylesheet { href });
                    }
                }
            }
            "title" => {
                let (text, next) = read_raw_until_close(html, i, "title");
                i = next;
                doc.title = Some(collapse_ws(&text));
            }
            "button" | "a" => {
                let (raw, next) = read_nested_until_close(html, i, &tag);
                i = next;
                doc.nodes.push(Node::Clickable {
                    tag,
                    text: collapse_ws(&strip_tags(&raw)),
                    id: attr(&attrs, "id"),
                    classes: class_list(&attrs),
                });
            }
            "div" => {
                let (raw, next) = read_nested_until_close(html, i, "div");
                doc.nodes.push(Node::Container {
                    classes: class_list(&attrs),
                    id: attr(&attrs, "id"),
                    text: collapse_ws(&strip_tags(&raw)),
                });
                // Do NOT advance past the div body: nested clickables and
                // scripts inside it must also be parsed as top-level nodes.
                let _ = next;
            }
            _ => {}
        }
    }
    doc
}

/// Parse `<tag attr=… >` starting at `start` (which points at `<`).
/// Returns `(tag_name, attrs, self_closing, index_after_gt)`.
fn parse_tag(html: &str, start: usize) -> Option<(String, Vec<Attr>, bool, usize)> {
    let bytes = html.as_bytes();
    let mut i = start + 1;
    if i >= bytes.len() {
        return None;
    }
    if bytes[i] == b'/' {
        // Closing tag: skip to '>'.
        let end = html[i..].find('>').map(|j| i + j + 1)?;
        return Some((String::new(), Vec::new(), true, end));
    }
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'!') {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let name = html[name_start..i].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut self_closing = false;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None;
        }
        if bytes[i] == b'>' {
            i += 1;
            break;
        }
        if bytes[i] == b'/' {
            self_closing = true;
            i += 1;
            continue;
        }
        // Attribute name.
        let an_start = i;
        while i < bytes.len()
            && !bytes[i].is_ascii_whitespace()
            && bytes[i] != b'='
            && bytes[i] != b'>'
            && bytes[i] != b'/'
        {
            i += 1;
        }
        let an = html[an_start..i].to_ascii_lowercase();
        if an.is_empty() {
            i += 1;
            continue;
        }
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let mut value = String::new();
        if i < bytes.len() && bytes[i] == b'=' {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                let quote = bytes[i];
                i += 1;
                let v_start = i;
                while i < bytes.len() && bytes[i] != quote {
                    i += 1;
                }
                value = html[v_start..i].to_owned();
                i = (i + 1).min(bytes.len());
            } else {
                let v_start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>' {
                    i += 1;
                }
                value = html[v_start..i].to_owned();
            }
        }
        attrs.push(Attr { name: an, value });
    }
    Some((name, attrs, self_closing, i))
}

/// Raw text from `start` to the first `</tag>`, returning (text, index
/// after the close tag). Used for script/title bodies where markup inside
/// is not interpreted.
fn read_raw_until_close(html: &str, start: usize, tag: &str) -> (String, usize) {
    let close = format!("</{tag}");
    let lower = html[start..].to_ascii_lowercase();
    match lower.find(&close) {
        Some(j) => {
            let body = html[start..start + j].to_owned();
            let rest = &html[start + j..];
            let after = rest
                .find('>')
                .map(|k| start + j + k + 1)
                .unwrap_or(html.len());
            (body, after)
        }
        None => (html[start..].to_owned(), html.len()),
    }
}

/// Like [`read_raw_until_close`] but respects nesting of the same tag
/// (needed for `<div>` inside `<div>`).
fn read_nested_until_close(html: &str, start: usize, tag: &str) -> (String, usize) {
    let open = format!("<{tag}");
    let close = format!("</{tag}");
    let lower = html.to_ascii_lowercase();
    let mut depth = 1usize;
    let mut i = start;
    while depth > 0 {
        let next_open = lower[i..].find(&open).map(|j| i + j);
        let next_close = lower[i..].find(&close).map(|j| i + j);
        match (next_open, next_close) {
            (Some(o), Some(c)) if o < c && is_tag_boundary(&lower, o + open.len()) => {
                depth += 1;
                i = o + open.len();
            }
            (_, Some(c)) => {
                depth -= 1;
                if depth == 0 {
                    let body = html[start..c].to_owned();
                    let after = lower[c..]
                        .find('>')
                        .map(|k| c + k + 1)
                        .unwrap_or(html.len());
                    return (body, after);
                }
                i = c + close.len();
            }
            _ => break,
        }
    }
    (html[start..].to_owned(), html.len())
}

/// True when the character at `idx` terminates a tag name (so `<divx`
/// does not count as `<div`).
fn is_tag_boundary(lower: &str, idx: usize) -> bool {
    match lower.as_bytes().get(idx) {
        Some(b) => b.is_ascii_whitespace() || *b == b'>' || *b == b'/',
        None => true,
    }
}

/// Remove all tags from a fragment, keeping text.
fn strip_tags(fragment: &str) -> String {
    let mut out = String::with_capacity(fragment.len());
    let mut in_tag = false;
    for ch in fragment.chars() {
        match ch {
            '<' => {
                in_tag = true;
                out.push(' ');
            }
            '>' => in_tag = false,
            c if !in_tag => out.push(c),
            _ => {}
        }
    }
    out
}

/// Collapse runs of whitespace to single spaces and trim.
fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Fetch an attribute value by (lowercase) name.
fn attr(attrs: &[Attr], name: &str) -> Option<String> {
    attrs
        .iter()
        .find(|a| a.name == name)
        .map(|a| a.value.clone())
}

/// Split the `class` attribute into tokens.
fn class_list(attrs: &[Attr]) -> Vec<String> {
    attr(attrs, "class")
        .map(|c| c.split_whitespace().map(str::to_owned).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_and_inline_scripts() {
        let doc = parse(
            r#"<html><head>
            <script src="https://cdn.example.com/lib.js"></script>
            <script>topics js</script>
            </head></html>"#,
        );
        let scripts: Vec<_> = doc.scripts().collect();
        assert_eq!(scripts.len(), 2);
        match scripts[0] {
            Node::Script { src, inline, .. } => {
                assert_eq!(src.as_deref(), Some("https://cdn.example.com/lib.js"));
                assert!(inline.is_empty());
            }
            _ => unreachable!(),
        }
        match scripts[1] {
            Node::Script { src, inline, .. } => {
                assert!(src.is_none());
                assert_eq!(inline, "topics js");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn iframe_with_browsingtopics_attribute() {
        let doc = parse(
            r#"<iframe src="https://ad.example/frame" browsingtopics></iframe>
               <iframe src="https://other.example/f2"></iframe>"#,
        );
        let frames: Vec<_> = doc
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Iframe {
                    src,
                    browsing_topics,
                    ..
                } => Some((src.clone(), *browsing_topics)),
                _ => None,
            })
            .collect();
        assert_eq!(
            frames,
            vec![
                ("https://ad.example/frame".to_owned(), true),
                ("https://other.example/f2".to_owned(), false)
            ]
        );
    }

    #[test]
    fn images_and_stylesheets() {
        let doc = parse(
            r#"<img src="https://px.example/p.gif">
               <link rel="stylesheet" href="/style.css">
               <link rel="icon" href="/favicon.ico">"#,
        );
        assert!(doc.nodes.contains(&Node::Img {
            src: "https://px.example/p.gif".into()
        }));
        assert!(doc.nodes.contains(&Node::Stylesheet {
            href: "/style.css".into()
        }));
        assert!(!doc
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Stylesheet { href } if href == "/favicon.ico")));
    }

    #[test]
    fn clickable_text_is_flattened() {
        let doc =
            parse(r#"<button id="accept" class="cta big"><b>Accept</b>   all cookies</button>"#);
        match &doc.nodes[0] {
            Node::Clickable {
                tag,
                text,
                id,
                classes,
            } => {
                assert_eq!(tag, "button");
                assert_eq!(text, "Accept all cookies");
                assert_eq!(id.as_deref(), Some("accept"));
                assert_eq!(classes, &["cta", "big"]);
            }
            n => panic!("unexpected {n:?}"),
        }
    }

    #[test]
    fn banner_div_and_inner_button_both_surface() {
        let html = r#"
            <div class="cmp-banner" id="consent">
              <p>We value your privacy</p>
              <button>Alle akzeptieren</button>
            </div>"#;
        let doc = parse(html);
        let container = doc
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Container { classes, text, .. } if classes.contains(&"cmp-banner".into()) => {
                    Some(text.clone())
                }
                _ => None,
            })
            .expect("banner container parsed");
        assert!(container.contains("Alle akzeptieren"));
        // The button inside is also parsed as its own node.
        assert!(doc.clickables().any(|n| matches!(
            n,
            Node::Clickable { text, .. } if text == "Alle akzeptieren"
        )));
    }

    #[test]
    fn nested_divs_respect_depth() {
        let html = r#"<div class="outer"><div class="inner">deep</div>tail</div><div class="after">x</div>"#;
        let doc = parse(html);
        let texts: Vec<_> = doc
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Container { classes, text, .. } => Some((classes.clone(), text.clone())),
                _ => None,
            })
            .collect();
        assert!(texts.contains(&(vec!["outer".into()], "deep tail".into())));
        assert!(texts.contains(&(vec!["inner".into()], "deep".into())));
        assert!(texts.contains(&(vec!["after".into()], "x".into())));
    }

    #[test]
    fn title_is_extracted() {
        let doc = parse("<html><title>  My   Site </title></html>");
        assert_eq!(doc.title.as_deref(), Some("My Site"));
    }

    #[test]
    fn comments_are_skipped() {
        let doc = parse(r#"<!-- <script src="https://evil/x.js"></script> --><img src="/a.png">"#);
        assert_eq!(doc.nodes.len(), 1);
        assert!(matches!(&doc.nodes[0], Node::Img { src } if src == "/a.png"));
    }

    #[test]
    fn malformed_markup_does_not_panic() {
        for html in [
            "<",
            "<scr",
            "<script src=",
            "<script>never closed",
            "<div><div>unbalanced",
            "<button>no close",
            "<iframe src='x'",
            "< script >",
            "<a href='#'",
        ] {
            let _ = parse(html); // must not panic
        }
    }

    #[test]
    fn bare_and_single_quoted_attributes() {
        let doc = parse("<img src=/pix.gif><iframe src='https://f.example/a'></iframe>");
        assert!(matches!(&doc.nodes[0], Node::Img { src } if src == "/pix.gif"));
        assert!(matches!(&doc.nodes[1], Node::Iframe { src, .. } if src == "https://f.example/a"));
    }

    #[test]
    fn gtm_style_snippet_parses() {
        // The real-world inclusion pattern from Figure 4: a script tag
        // placed directly in the page HTML.
        let html = r#"<script src="https://www.googletagmanager.com/gtm.js?id=GTM-XYZ"></script>"#;
        let doc = parse(html);
        match &doc.nodes[0] {
            Node::Script { src, .. } => assert_eq!(
                src.as_deref(),
                Some("https://www.googletagmanager.com/gtm.js?id=GTM-XYZ")
            ),
            n => panic!("unexpected {n:?}"),
        }
    }
}
