//! The Topics API engine — the in-browser half of the Privacy Sandbox
//! mechanism the paper measures.
//!
//! Reproduces the behaviour described in §2.1 and the public Chrome
//! documentation:
//!
//! * the browser monitors browsing activity and classifies each visited
//!   site (registrable domain) into taxonomy topics;
//! * time is divided into one-week **epochs**; at the end of each epoch
//!   the **top 5** topics by number of distinct contributing sites are
//!   selected (padded with random topics when fewer than 5 exist);
//! * `browsingTopics()` returns up to **three topics — one per each of
//!   the last three completed epochs** — each chosen from that epoch's
//!   top 5 with a per-`(epoch, site)` stable pick;
//! * with probability **5%** the answer for an `(epoch, site)` is replaced
//!   by a uniformly random topic (plausible deniability);
//! * a caller only *receives* a real topic if it **observed** the user on
//!   a site contributing that topic during the epoch window (random
//!   replacement topics are exempt — that is what gives every topic a
//!   minimum exposure probability);
//! * topics under the sensitive root are never returned.

use crate::observer::CallType;
use crate::origin::Site;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::psl::registrable_domain;
use topics_net::seed;
use topics_obs::{Counter, MetricsRegistry};
use topics_taxonomy::{Classification, Classifier, Taxonomy, TopicId};

/// Probability that an epoch's answer is replaced by a random topic.
pub const NOISE_PROBABILITY: f64 = 0.05;
/// Topics kept per epoch.
pub const TOP_N: usize = 5;
/// Number of past epochs an answer draws from.
pub const EPOCH_WINDOW: u64 = 3;

/// Pre-resolved counters for the Topics call path, recorded by the
/// [`crate::Browser`] at the single point every call goes through.
///
/// Series recorded:
/// * `topics_api_calls_total{type="javascript"|"fetch"|"iframe"}` — one
///   per invocation, whatever the enrolment decision;
/// * `topics_api_permitted_total` / `topics_api_blocked_total` — the
///   allow-list decision split;
/// * `topics_api_topics_returned_total` — total topics handed out.
#[derive(Debug, Clone)]
pub struct TopicsMetrics {
    js: Counter,
    fetch: Counter,
    iframe: Counter,
    permitted: Counter,
    blocked: Counter,
    topics_returned: Counter,
}

impl TopicsMetrics {
    /// Resolve the handles in `registry`.
    pub fn new(registry: &MetricsRegistry) -> TopicsMetrics {
        let call = |t: &str| registry.labeled_counter("topics_api_calls_total", "type", t);
        TopicsMetrics {
            js: call("javascript"),
            fetch: call("fetch"),
            iframe: call("iframe"),
            permitted: registry.counter("topics_api_permitted_total"),
            blocked: registry.counter("topics_api_blocked_total"),
            topics_returned: registry.counter("topics_api_topics_returned_total"),
        }
    }

    /// Record one `browsingTopics()` invocation.
    pub fn record_call(&self, call_type: CallType, permitted: bool, topics_returned: usize) {
        match call_type {
            CallType::JavaScript => self.js.inc(),
            CallType::Fetch => self.fetch.inc(),
            CallType::Iframe => self.iframe.inc(),
        }
        if permitted {
            self.permitted.inc();
        } else {
            self.blocked.inc();
        }
        self.topics_returned.add(topics_returned as u64);
    }
}

/// Per-epoch browsing record.
#[derive(Debug, Clone, Default)]
struct EpochHistory {
    /// Topics contributed by each visited site (registrable domain).
    site_topics: HashMap<Domain, Vec<TopicId>>,
    /// For caller filtering: which sites each caller observed the user on.
    observations: HashMap<Domain, HashSet<Domain>>,
}

/// One entry of an epoch's top-5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopTopic {
    /// The topic.
    pub topic: TopicId,
    /// False when this slot was padded with a random topic because fewer
    /// than five real topics existed.
    pub real: bool,
}

/// One topic as returned to a caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReturnedTopic {
    /// The topic id.
    pub topic: TopicId,
    /// Which completed epoch it represents.
    pub epoch: u64,
    /// True when this topic is a *random* one — either the 5% noise
    /// replacement or a random padding slot of an epoch with fewer than
    /// five real topics. Random topics are exempt from the caller
    /// witness filter (that exemption is what gives every topic a
    /// minimum exposure probability).
    pub noised: bool,
}

/// The answer of one `browsingTopics()` invocation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TopicsAnswer {
    /// Up to three topics, deduplicated, ascending by topic id.
    pub topics: Vec<ReturnedTopic>,
    /// Taxonomy version string (Chrome reports e.g. `"2"`).
    pub taxonomy_version: String,
}

/// The per-profile Topics engine.
#[derive(Debug)]
pub struct TopicsEngine {
    classifier: Arc<Classifier>,
    epochs: BTreeMap<u64, EpochHistory>,
    seed: u64,
    enabled: bool,
    noise_probability: f64,
}

impl TopicsEngine {
    /// A fresh engine for one browser profile. `enabled` models the
    /// Chrome setting the paper's crawler manually opts into.
    pub fn new(classifier: Arc<Classifier>, profile_seed: u64, enabled: bool) -> TopicsEngine {
        TopicsEngine {
            classifier,
            epochs: BTreeMap::new(),
            seed: seed::derive(profile_seed, "topics-engine"),
            enabled,
            noise_probability: NOISE_PROBABILITY,
        }
    }

    /// Override the 5% random-replacement probability (clamped to
    /// `[0, 1]`). Chrome ships 5%; the noise ablation benchmark sweeps
    /// this to chart plausible deniability against profiling accuracy.
    #[must_use]
    pub fn with_noise_probability(mut self, p: f64) -> TopicsEngine {
        self.noise_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Whether the user has the Topics API enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a page visit: classify the site and add its topics to the
    /// current epoch's history.
    pub fn record_visit(&mut self, site: &Site, now: Timestamp) {
        let epoch = now.epoch();
        let reg = site.domain().clone();
        let entry = self.epochs.entry(epoch).or_default();
        if let Classification::Topics(topics) = self.classifier.classify(&reg) {
            entry.site_topics.entry(reg).or_insert(topics);
        } else {
            entry.site_topics.entry(reg).or_default();
        }
    }

    /// Record that `caller` observed the user on `site` (a caller present
    /// on a page — via script, fetch with `Observe-Browsing-Topics`, or
    /// iframe — becomes eligible to receive that site's topics later).
    pub fn record_observation(&mut self, caller: &Domain, site: &Site, now: Timestamp) {
        let epoch = now.epoch();
        self.epochs
            .entry(epoch)
            .or_default()
            .observations
            .entry(registrable_domain(caller))
            .or_default()
            .insert(site.domain().clone());
    }

    /// The taxonomy this engine's model targets (the answer's version
    /// string and the noise/padding pools follow it).
    fn taxonomy(&self) -> &'static Taxonomy {
        Taxonomy::of(self.classifier.taxonomy_version())
    }

    /// The top-5 topics of a *completed* epoch, padded with random
    /// returnable topics when fewer than five real topics were observed.
    pub fn top5(&self, epoch: u64) -> Vec<TopTopic> {
        let taxonomy = self.taxonomy();
        let mut counts: HashMap<TopicId, usize> = HashMap::new();
        if let Some(h) = self.epochs.get(&epoch) {
            for topics in h.site_topics.values() {
                for &t in topics {
                    *counts.entry(t).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(TopicId, usize)> = counts.into_iter().collect();
        // By contributing-site count descending, then topic id ascending
        // for a total, deterministic order.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut top: Vec<TopTopic> = ranked
            .into_iter()
            .take(TOP_N)
            .map(|(topic, _)| TopTopic { topic, real: true })
            .collect();
        // Pad to 5 with deterministic random returnable topics.
        let mut attempt = 0u64;
        while top.len() < TOP_N {
            let pick = random_returnable_topic(
                taxonomy,
                seed::derive_idx(seed::derive(self.seed, "pad"), epoch ^ (attempt << 32)),
            );
            attempt += 1;
            if top.iter().any(|t| t.topic == pick) {
                continue;
            }
            top.push(TopTopic {
                topic: pick,
                real: false,
            });
            if attempt > 64 {
                break; // defensive; cannot happen with 468 returnable topics
            }
        }
        debug_assert!(!top.iter().any(|t| t.topic == taxonomy.sensitive_root()));
        top
    }

    /// Execute `browsingTopics()` for `caller` on `top_site` at `now`.
    ///
    /// Returns `None` when the user has the API disabled. Enrolment
    /// enforcement is *not* done here — the [`crate::Browser`] consults
    /// the [`crate::attestation::AttestationStore`] first, mirroring the
    /// layering in Chromium (and letting us reproduce the fail-open bug
    /// at the right layer).
    pub fn browsing_topics(
        &mut self,
        caller: &Domain,
        top_site: &Site,
        now: Timestamp,
    ) -> Option<TopicsAnswer> {
        self.browsing_topics_with_options(caller, top_site, now, true)
    }

    /// Like [`TopicsEngine::browsing_topics`] but with the real API's
    /// `{skipObservation: true}` option: when `observe` is false, the
    /// call returns topics without marking the caller as having observed
    /// the user on this site (so it does not feed future epochs).
    pub fn browsing_topics_with_options(
        &mut self,
        caller: &Domain,
        top_site: &Site,
        now: Timestamp,
        observe: bool,
    ) -> Option<TopicsAnswer> {
        if !self.enabled {
            return None;
        }
        let caller_reg = registrable_domain(caller);
        let current = now.epoch();
        let mut out: Vec<ReturnedTopic> = Vec::with_capacity(EPOCH_WINDOW as usize);
        // The last three *completed* epochs: current-3 .. current-1.
        for back in 1..=EPOCH_WINDOW {
            let Some(epoch) = current.checked_sub(back) else {
                break;
            };
            if let Some(rt) = self.topic_for_epoch(epoch, &caller_reg, top_site) {
                out.push(rt);
            }
        }
        // A call is also an observation for future epochs — unless the
        // caller opted out with skipObservation.
        if observe {
            self.record_observation(caller, top_site, now);
        }
        // Deduplicate by topic id, keep ascending order for determinism.
        out.sort_by_key(|r| (r.topic, r.epoch));
        out.dedup_by_key(|r| r.topic);
        Some(TopicsAnswer {
            topics: out,
            taxonomy_version: self.taxonomy().version().as_str().to_owned(),
        })
    }

    /// The (stable) answer slot for one epoch, filtered by observation.
    fn topic_for_epoch(
        &self,
        epoch: u64,
        caller_reg: &Domain,
        top_site: &Site,
    ) -> Option<ReturnedTopic> {
        let h = self.epochs.get(&epoch)?;
        if h.site_topics.is_empty() {
            return None; // epoch never happened for this profile
        }
        // Stable per (profile, epoch, top-site): every caller on the same
        // site sees the same slot, as in Chrome.
        let slot_seed = seed::derive(
            seed::derive_idx(self.seed, epoch),
            top_site.domain().as_str(),
        );
        let noised = seed::unit_f64(seed::derive(slot_seed, "noise")) < self.noise_probability;
        if noised {
            // Random replacement: returned regardless of observation.
            return Some(ReturnedTopic {
                topic: random_returnable_topic(
                    self.taxonomy(),
                    seed::derive(slot_seed, "replacement"),
                ),
                epoch,
                noised: true,
            });
        }
        let top = self.top5(epoch);
        let idx = (seed::derive(slot_seed, "pick") % TOP_N as u64) as usize;
        let chosen = top.get(idx)?;
        if chosen.real {
            // Caller filtering: only reveal a real topic to a caller that
            // observed the user on a contributing site this epoch.
            let observed = h.observations.get(caller_reg);
            let witnessed = observed.is_some_and(|sites| {
                sites.iter().any(|s| {
                    h.site_topics
                        .get(s)
                        .is_some_and(|topics| topics.contains(&chosen.topic))
                })
            });
            if !witnessed {
                return None;
            }
        }
        Some(ReturnedTopic {
            topic: chosen.topic,
            epoch,
            // Padded slots carry random topics and behave like noise.
            noised: !chosen.real,
        })
    }

    /// Epochs that have any recorded history.
    pub fn epochs_with_data(&self) -> Vec<u64> {
        self.epochs.keys().copied().collect()
    }

    /// Number of distinct sites recorded in an epoch.
    pub fn sites_in_epoch(&self, epoch: u64) -> usize {
        self.epochs
            .get(&epoch)
            .map(|h| h.site_topics.len())
            .unwrap_or(0)
    }
}

/// A deterministic uniformly random topic outside the sensitive subtree
/// of the given taxonomy version.
fn random_returnable_topic(taxonomy: &Taxonomy, s: u64) -> TopicId {
    let sensitive = taxonomy.sensitive_root();
    let size = taxonomy.len() as u64;
    let mut attempt = 0u64;
    loop {
        let id = TopicId((seed::derive_idx(s, attempt) % size) as u16 + 1);
        if id != sensitive {
            return id;
        }
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_net::url::Url;

    fn site(s: &str) -> Site {
        Site::of(&Url::parse(&format!("https://{s}/")).unwrap())
    }

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    fn engine() -> TopicsEngine {
        let classifier = Arc::new(Classifier::new(77).with_unclassifiable_rate(0.0));
        TopicsEngine::new(classifier, 42, true)
    }

    /// Populate `n` distinct site visits in `epoch`, observed by `caller`.
    fn browse(e: &mut TopicsEngine, epoch: u64, n: usize, caller: &Domain) {
        let t = Timestamp::from_weeks(epoch);
        for i in 0..n {
            let s = site(&format!("browse{epoch}x{i}.com"));
            e.record_visit(&s, t);
            e.record_observation(caller, &s, t);
        }
    }

    #[test]
    fn disabled_engine_returns_none() {
        let classifier = Arc::new(Classifier::new(1));
        let mut e = TopicsEngine::new(classifier, 1, false);
        assert!(e
            .browsing_topics(&d("cp.com"), &site("news.com"), Timestamp::from_weeks(4))
            .is_none());
    }

    #[test]
    fn empty_history_yields_empty_answer() {
        let mut e = engine();
        let a = e
            .browsing_topics(&d("cp.com"), &site("news.com"), Timestamp::from_weeks(4))
            .unwrap();
        assert!(a.topics.is_empty());
        assert_eq!(a.taxonomy_version, "2");
    }

    #[test]
    fn top5_is_padded_to_five() {
        let mut e = engine();
        e.record_visit(&site("one-site.com"), Timestamp::from_weeks(0));
        let top = e.top5(0);
        assert_eq!(top.len(), TOP_N);
        let real: Vec<_> = top.iter().filter(|t| t.real).collect();
        assert!(!real.is_empty() && real.len() <= 3, "1–3 topics per site");
        // Padding topics are unique.
        let mut ids: Vec<_> = top.iter().map(|t| t.topic).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), TOP_N);
    }

    #[test]
    fn top5_ranks_by_contributing_sites() {
        let mut e = engine();
        // Visit many sites; the most common topics should win.
        browse(&mut e, 0, 100, &d("cp.com"));
        let top = e.top5(0);
        assert_eq!(top.len(), TOP_N);
        assert!(top.iter().all(|t| t.real), "100 sites produce ≥5 topics");
    }

    #[test]
    fn answer_covers_last_three_epochs_only() {
        let mut e = engine();
        let caller = d("cp.com");
        for epoch in 0..4 {
            browse(&mut e, epoch, 40, &caller);
        }
        let a = e
            .browsing_topics(&caller, &site("news.com"), Timestamp::from_weeks(4))
            .unwrap();
        assert!(!a.topics.is_empty());
        for rt in &a.topics {
            assert!(
                (1..=3).contains(&rt.epoch),
                "epoch {} outside window",
                rt.epoch
            );
        }
        assert!(a.topics.len() <= 3);
    }

    #[test]
    fn same_site_same_epoch_answers_are_stable_across_callers() {
        let mut e = engine();
        let a_caller = d("alpha.com");
        let b_caller = d("beta.com");
        for epoch in 0..3 {
            browse(&mut e, epoch, 50, &a_caller);
            browse(&mut e, epoch, 50, &b_caller);
        }
        let now = Timestamp::from_weeks(3);
        let s = site("news.com");
        let a = e.browsing_topics(&a_caller, &s, now).unwrap();
        let b = e.browsing_topics(&b_caller, &s, now).unwrap();
        // Both callers observed everything, so both receive the full
        // per-(epoch, site) stable slots.
        assert_eq!(a, b);
        // And the answer is idempotent.
        let a2 = e.browsing_topics(&a_caller, &s, now).unwrap();
        assert_eq!(a, a2);
    }

    #[test]
    fn unobserving_caller_gets_no_real_topics() {
        let mut e = engine();
        let observer = d("observer.com");
        for epoch in 0..3 {
            browse(&mut e, epoch, 50, &observer);
        }
        let now = Timestamp::from_weeks(3);
        let stranger = d("stranger.com");
        let a = e
            .browsing_topics(&stranger, &site("news.com"), now)
            .unwrap();
        // The stranger never observed the user: every returned topic must
        // be a 5% noise replacement (usually none at all).
        assert!(a.topics.iter().all(|t| t.noised), "{:?}", a.topics);
        let b = e
            .browsing_topics(&observer, &site("news.com"), now)
            .unwrap();
        assert!(b.topics.len() >= a.topics.iter().filter(|t| !t.noised).count());
    }

    #[test]
    fn noise_rate_is_about_five_percent() {
        // Across many (profile, site) pairs, ~5% of slots are noised.
        let classifier = Arc::new(Classifier::new(3).with_unclassifiable_rate(0.0));
        let caller = d("cp.com");
        let mut noised = 0usize;
        let mut total = 0usize;
        for p in 0..300u64 {
            let mut e = TopicsEngine::new(classifier.clone(), p, true);
            for epoch in 0..3 {
                browse(&mut e, epoch, 30, &caller);
            }
            for s in 0..10 {
                let a = e
                    .browsing_topics(
                        &caller,
                        &site(&format!("visit{s}.com")),
                        Timestamp::from_weeks(3),
                    )
                    .unwrap();
                // Count slots, not topics: each epoch contributes one slot.
                total += 3;
                noised += a.topics.iter().filter(|t| t.noised).count();
            }
        }
        let rate = noised as f64 / total as f64;
        assert!(
            (rate - NOISE_PROBABILITY).abs() < 0.015,
            "noise rate {rate} (n={total})"
        );
    }

    #[test]
    fn calls_count_as_observations() {
        let mut e = engine();
        let caller = d("cp.com");
        // Epoch 0: caller calls the API on a site (observing it) but has
        // not observed anything else.
        let s = site("visited.com");
        e.record_visit(&s, Timestamp::from_weeks(0));
        let _ = e.browsing_topics(&caller, &s, Timestamp::from_weeks(0));
        // Epoch 1+: the topic of visited.com is now witnessable by caller.
        for epoch in 1..4 {
            e.record_visit(&site("filler.com"), Timestamp::from_weeks(epoch));
        }
        let a = e
            .browsing_topics(&caller, &s, Timestamp::from_weeks(4))
            .unwrap();
        // visited.com contributed topics in epoch 0; but epoch 0 is outside
        // the 3-epoch window at week 4 — verify window logic holds.
        for t in &a.topics {
            assert!(t.epoch >= 1);
        }
    }

    #[test]
    fn skip_observation_reads_without_observing() {
        let mut e = engine();
        let caller = d("quiet.com");
        // Epoch 0: browse, then call with skipObservation.
        let s = site("visited.com");
        e.record_visit(&s, Timestamp::from_weeks(0));
        let _ = e.browsing_topics_with_options(&caller, &s, Timestamp::from_weeks(0), false);
        for epoch in 1..4 {
            e.record_visit(&site("filler.com"), Timestamp::from_weeks(epoch));
        }
        // The quiet caller never became an observer: it can only ever
        // receive noise topics.
        let a = e
            .browsing_topics(&caller, &site("elsewhere.com"), Timestamp::from_weeks(3))
            .unwrap();
        assert!(a.topics.iter().all(|t| t.noised), "{:?}", a.topics);

        // Contrast: an ordinary call in epoch 0 does observe.
        let mut e2 = engine();
        let loud = d("loud.com");
        let s2 = site("visited.com");
        e2.record_visit(&s2, Timestamp::from_weeks(0));
        let _ = e2.browsing_topics(&loud, &s2, Timestamp::from_weeks(0));
        // In later epochs the loud caller is a witness of visited.com's
        // topics (when the slot picks one of them).
        let mut got_real = false;
        for probe in 0..30 {
            let a = e2
                .browsing_topics(
                    &loud,
                    &site(&format!("probe{probe}.com")),
                    Timestamp::from_weeks(1),
                )
                .unwrap();
            if a.topics.iter().any(|t| !t.noised) {
                got_real = true;
                break;
            }
        }
        assert!(got_real, "observing caller eventually receives real topics");
    }

    #[test]
    fn sensitive_topics_never_returned() {
        let sensitive = Taxonomy::global().sensitive_root();
        let mut e = engine();
        let caller = d("cp.com");
        for epoch in 0..3 {
            browse(&mut e, epoch, 60, &caller);
        }
        for s in 0..50 {
            let a = e
                .browsing_topics(
                    &caller,
                    &site(&format!("check{s}.com")),
                    Timestamp::from_weeks(3),
                )
                .unwrap();
            assert!(a.topics.iter().all(|t| t.topic != sensitive));
        }
    }

    #[test]
    fn v1_engine_reports_v1_and_stays_in_range() {
        use topics_taxonomy::{TaxonomyVersion, TAXONOMY_V1_SIZE};
        let classifier = Arc::new(
            Classifier::new_with_version(7, TaxonomyVersion::V1).with_unclassifiable_rate(0.0),
        );
        let mut e = TopicsEngine::new(classifier, 42, true);
        let caller = d("cp.com");
        for epoch in 0..3 {
            let t = Timestamp::from_weeks(epoch);
            for i in 0..40 {
                let s = site(&format!("v1x{epoch}x{i}.com"));
                e.record_visit(&s, t);
                e.record_observation(&caller, &s, t);
            }
        }
        let a = e
            .browsing_topics(&caller, &site("news.com"), Timestamp::from_weeks(3))
            .unwrap();
        assert_eq!(a.taxonomy_version, "1");
        for t in &a.topics {
            assert!((t.topic.get() as usize) <= TAXONOMY_V1_SIZE);
        }
    }

    #[test]
    fn epochs_with_data_reflect_history() {
        let mut e = engine();
        e.record_visit(&site("a.com"), Timestamp::from_weeks(2));
        e.record_visit(&site("b.com"), Timestamp::from_weeks(5));
        assert_eq!(e.epochs_with_data(), vec![2, 5]);
        assert_eq!(e.sites_in_epoch(2), 1);
        assert_eq!(e.sites_in_epoch(3), 0);
    }
}
