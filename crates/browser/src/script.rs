//! TagScript — the miniature scripting language of the simulated web.
//!
//! Real third-party tags are JavaScript; reproducing a JS engine is out of
//! scope, so the synthetic web's scripts are written in a small,
//! well-defined command language that captures exactly the behaviours the
//! paper measures: Topics API invocations (all three call types),
//! subresource loading, script/iframe inclusion (which is what produces
//! the §4 "wrong context" effect), cookies, consent checks and A/B gates.
//!
//! Grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! topics js                          # document.browsingTopics()
//! topics js noobserve                # …({skipObservation: true})
//! topics fetch <url>                 # fetch(url, {browsingTopics: true})
//! topics iframe <url>                # <iframe src=url browsingtopics>
//! fetch <url>                        # plain fetch
//! img <url>                          # tracking pixel
//! script <url>                       # inject <script src=url> (same context!)
//! iframe <url>                       # inject <iframe src=url> (new context)
//! cookie <name> <value>              # set a cookie for the current site
//! ab <p> site|visit|time:<hours>h {  # deterministic A/B gate
//!     ...
//! }
//! consent {                          # body runs only with user consent
//!     ...
//! }
//! noconsent {                        # body runs only WITHOUT consent
//!     ...
//! }
//! after <day> {                      # body runs only on/after sim day N
//!     ...
//! }
//! ```
//!
//! Blocks open with `{` at end of line and close with a line containing
//! only `}`. The interpreter lives in [`crate::browser`]; this module owns
//! parsing and the AST.

use std::fmt;

/// The A/B gate's hashing scope — what varies the coin flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbScope {
    /// Stable per (party, website): the paper's Figure 3 site-level
    /// fractions ("calls it 75% of times" across sites).
    Site,
    /// Fresh per visit: classic per-impression experiment.
    Visit,
    /// Stable per (party, website, time window): the §3 "alternating
    /// periods … ON for all visits, followed by some time when it is OFF".
    TimeWindow {
        /// Window length in hours.
        hours: u32,
    },
}

/// One TagScript statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `topics js`
    TopicsJs,
    /// `topics js noobserve` — `browsingTopics({skipObservation: true})`:
    /// read topics without being recorded as an observer.
    TopicsJsSkipObservation,
    /// `topics fetch <url>`
    TopicsFetch(String),
    /// `topics iframe <url>`
    TopicsIframe(String),
    /// `fetch <url>`
    Fetch(String),
    /// `img <url>`
    Img(String),
    /// `script <url>` — include and run another script in the *current*
    /// context (the Figure 4 mechanism).
    LoadScript(String),
    /// `iframe <url>` — create a child browsing context.
    LoadIframe(String),
    /// `cookie <name> <value>`
    SetCookie {
        /// Cookie name.
        name: String,
        /// Cookie value.
        value: String,
    },
    /// `ab <p> <scope> { body }`
    Ab {
        /// Probability in `[0, 1]` that the body runs.
        p: f64,
        /// What keys the deterministic coin.
        scope: AbScope,
        /// Gated statements.
        body: Vec<Stmt>,
    },
    /// `consent { body }`
    IfConsent(Vec<Stmt>),
    /// `noconsent { body }`
    IfNoConsent(Vec<Stmt>),
    /// `after <day> { body }` — the body runs only when the simulated
    /// date has reached day `day` (since the simulation origin). Tags
    /// use this to model platforms that enrolled but have not yet
    /// switched their Topics integration on.
    After {
        /// First simulation day (inclusive) the body is active.
        day: u64,
        /// Gated statements.
        body: Vec<Stmt>,
    },
}

/// A parse failure, with 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

/// Parse a TagScript source into statements.
///
/// ```
/// use topics_browser::script::{parse, Stmt};
///
/// let stmts = parse("consent {\nab 0.75 site {\ntopics js\n}\n}").unwrap();
/// assert!(matches!(stmts[0], Stmt::IfConsent(_)));
/// assert_eq!(topics_browser::script::count_topics_statements(&stmts), 1);
/// ```
pub fn parse(source: &str) -> Result<Vec<Stmt>, ScriptError> {
    let mut lines = source
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_owned()))
        .filter(|(_, l)| !l.is_empty())
        .collect::<Vec<_>>()
        .into_iter()
        .peekable();
    let body = parse_block(&mut lines, None)?;
    Ok(body)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

type Lines = std::iter::Peekable<std::vec::IntoIter<(usize, String)>>;

/// Parse statements until EOF (outer) or a closing `}` (inner).
fn parse_block(lines: &mut Lines, opened_at: Option<usize>) -> Result<Vec<Stmt>, ScriptError> {
    let mut out = Vec::new();
    loop {
        let Some((lineno, line)) = lines.next() else {
            return match opened_at {
                None => Ok(out),
                Some(open_line) => Err(ScriptError {
                    line: open_line,
                    message: "unclosed block".to_owned(),
                }),
            };
        };
        if line == "}" {
            return match opened_at {
                Some(_) => Ok(out),
                None => Err(ScriptError {
                    line: lineno,
                    message: "unmatched '}'".to_owned(),
                }),
            };
        }
        out.push(parse_stmt(lineno, &line, lines)?);
    }
}

fn parse_stmt(lineno: usize, line: &str, lines: &mut Lines) -> Result<Stmt, ScriptError> {
    let err = |message: String| ScriptError {
        line: lineno,
        message,
    };
    let tokens: Vec<&str> = line.split_whitespace().collect();
    match tokens.as_slice() {
        ["topics", "js"] => Ok(Stmt::TopicsJs),
        ["topics", "js", "noobserve"] => Ok(Stmt::TopicsJsSkipObservation),
        ["topics", "fetch", url] => Ok(Stmt::TopicsFetch((*url).to_owned())),
        ["topics", "iframe", url] => Ok(Stmt::TopicsIframe((*url).to_owned())),
        ["fetch", url] => Ok(Stmt::Fetch((*url).to_owned())),
        ["img", url] => Ok(Stmt::Img((*url).to_owned())),
        ["script", url] => Ok(Stmt::LoadScript((*url).to_owned())),
        ["iframe", url] => Ok(Stmt::LoadIframe((*url).to_owned())),
        ["cookie", name, value] => Ok(Stmt::SetCookie {
            name: (*name).to_owned(),
            value: (*value).to_owned(),
        }),
        ["ab", p, scope, "{"] => {
            let p: f64 = p
                .parse()
                .map_err(|_| err(format!("invalid probability {p:?}")))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(err(format!("probability {p} outside [0, 1]")));
            }
            let scope = parse_scope(scope).map_err(&err)?;
            let body = parse_block(lines, Some(lineno))?;
            Ok(Stmt::Ab { p, scope, body })
        }
        ["consent", "{"] => Ok(Stmt::IfConsent(parse_block(lines, Some(lineno))?)),
        ["noconsent", "{"] => Ok(Stmt::IfNoConsent(parse_block(lines, Some(lineno))?)),
        ["after", day, "{"] => {
            let day: u64 = day
                .parse()
                .map_err(|_| err(format!("invalid day {day:?}")))?;
            let body = parse_block(lines, Some(lineno))?;
            Ok(Stmt::After { day, body })
        }
        _ => Err(err(format!("unrecognised statement {line:?}"))),
    }
}

fn parse_scope(s: &str) -> Result<AbScope, String> {
    match s {
        "site" => Ok(AbScope::Site),
        "visit" => Ok(AbScope::Visit),
        _ => {
            if let Some(h) = s.strip_prefix("time:").and_then(|r| r.strip_suffix('h')) {
                let hours: u32 = h
                    .parse()
                    .map_err(|_| format!("invalid time window {s:?}"))?;
                if hours == 0 {
                    return Err("time window must be positive".to_owned());
                }
                Ok(AbScope::TimeWindow { hours })
            } else {
                Err(format!("unknown ab scope {s:?} (site|visit|time:<h>h)"))
            }
        }
    }
}

/// Count the Topics-API statements in a script (any call type, including
/// inside blocks) — a quick static check used by tests and world
/// validation.
pub fn count_topics_statements(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::TopicsJs
            | Stmt::TopicsJsSkipObservation
            | Stmt::TopicsFetch(_)
            | Stmt::TopicsIframe(_) => 1,
            Stmt::Ab { body, .. }
            | Stmt::IfConsent(body)
            | Stmt::IfNoConsent(body)
            | Stmt::After { body, .. } => count_topics_statements(body),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_statements() {
        let src = r#"
            # a comment
            topics js
            topics fetch https://cp.com/bid
            topics iframe https://cp.com/frame
            fetch https://cp.com/sync
            img https://cp.com/px.gif
            script https://lib.com/l.js
            iframe https://other.com/f
            cookie uid abc123
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(
            stmts,
            vec![
                Stmt::TopicsJs,
                Stmt::TopicsFetch("https://cp.com/bid".into()),
                Stmt::TopicsIframe("https://cp.com/frame".into()),
                Stmt::Fetch("https://cp.com/sync".into()),
                Stmt::Img("https://cp.com/px.gif".into()),
                Stmt::LoadScript("https://lib.com/l.js".into()),
                Stmt::LoadIframe("https://other.com/f".into()),
                Stmt::SetCookie {
                    name: "uid".into(),
                    value: "abc123".into()
                },
            ]
        );
    }

    #[test]
    fn parses_nested_blocks() {
        let src = r#"
            consent {
                ab 0.75 site {
                    topics js
                }
                fetch https://cp.com/beacon
            }
        "#;
        let stmts = parse(src).unwrap();
        assert_eq!(stmts.len(), 1);
        match &stmts[0] {
            Stmt::IfConsent(body) => {
                assert_eq!(body.len(), 2);
                match &body[0] {
                    Stmt::Ab { p, scope, body } => {
                        assert_eq!(*p, 0.75);
                        assert_eq!(*scope, AbScope::Site);
                        assert_eq!(body, &[Stmt::TopicsJs]);
                    }
                    s => panic!("unexpected {s:?}"),
                }
            }
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn parses_time_window_scope() {
        let stmts = parse("ab 0.5 time:6h {\ntopics js\n}").unwrap();
        match &stmts[0] {
            Stmt::Ab { scope, .. } => assert_eq!(*scope, AbScope::TimeWindow { hours: 6 }),
            s => panic!("unexpected {s:?}"),
        }
    }

    #[test]
    fn after_block_parses() {
        let stmts = parse("after 310 {\ntopics js\n}").unwrap();
        match &stmts[0] {
            Stmt::After { day, body } => {
                assert_eq!(*day, 310);
                assert_eq!(body, &[Stmt::TopicsJs]);
            }
            s => panic!("unexpected {s:?}"),
        }
        assert!(parse("after notaday {\n}").is_err());
        assert_eq!(count_topics_statements(&stmts), 1);
    }

    #[test]
    fn noconsent_block() {
        let stmts = parse("noconsent {\nimg https://cp.com/prompt.gif\n}").unwrap();
        assert!(matches!(&stmts[0], Stmt::IfNoConsent(b) if b.len() == 1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("topics js\nbogus statement here").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unrecognised"));

        let err = parse("ab 1.5 site {\n}").unwrap_err();
        assert!(err.message.contains("outside"));

        let err = parse("ab 0.5 nonsense {\n}").unwrap_err();
        assert!(err.message.contains("unknown ab scope"));

        let err = parse("ab 0.5 time:0h {\n}").unwrap_err();
        assert!(err.message.contains("positive"));

        let err = parse("consent {\ntopics js").unwrap_err();
        assert_eq!(err.line, 1, "unclosed block reports the opener");

        let err = parse("}").unwrap_err();
        assert!(err.message.contains("unmatched"));
    }

    #[test]
    fn empty_and_comment_only_scripts_parse() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("# just a comment\n\n   \n").unwrap().is_empty());
    }

    #[test]
    fn counts_topics_statements_recursively() {
        let stmts = parse(
            "topics js\nconsent {\nab 0.5 site {\ntopics fetch https://x.com/y\n}\ntopics iframe https://x.com/f\n}",
        )
        .unwrap();
        assert_eq!(count_topics_statements(&stmts), 3);
        assert_eq!(count_topics_statements(&[]), 0);
    }
}
