//! The browser-side attestation allow-list.
//!
//! Chromium enforces Privacy Sandbox enrolment through an allow-list file
//! (`privacy-sandbox-attestations.dat` in the
//! `PrivacySandboxAttestationsPreloaded` component folder), refreshed when
//! the browser starts. A Topics call from a caller that is not on the list
//! is blocked.
//!
//! §2.3 of the paper documents the implementation error this reproduction
//! preserves: **when the local allow-list database is corrupted or
//! missing, the browser allows *every* caller** (fail-open). The authors
//! corrupted the list on purpose, which is what made the §4 anomalous-call
//! measurements visible. We implement both the buggy behaviour (default,
//! as in Chromium 122) and the fixed fail-closed behaviour for the
//! ablation benchmark.

use std::collections::BTreeSet;
use topics_net::domain::Domain;
use topics_net::psl::registrable_domain;

/// State of the on-disk allow-list component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllowListState {
    /// A healthy list of enrolled registrable domains.
    Healthy(BTreeSet<Domain>),
    /// The file exists but cannot be parsed (the paper's on-purpose
    /// corruption).
    Corrupted,
    /// The component folder is missing entirely.
    Missing,
}

/// How the enforcement code treats a corrupt/missing database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnforcementMode {
    /// Chromium 122 behaviour: corrupt/missing ⇒ every call allowed.
    FailOpen,
    /// The fixed behaviour (Google "declared to fix it in a future
    /// release"): corrupt/missing ⇒ every call blocked.
    FailClosed,
}

/// The decision for one caller, carrying *why* for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum AllowDecision {
    /// Caller is on a healthy allow-list.
    AllowedEnrolled,
    /// Caller admitted because the database is corrupt/missing and the
    /// browser fails open — the bug the paper exploits.
    AllowedFailOpen,
    /// Caller is not on the (healthy) allow-list.
    BlockedNotEnrolled,
    /// Database corrupt/missing under fail-closed enforcement.
    BlockedFailClosed,
}

impl AllowDecision {
    /// Whether the Topics call proceeds.
    pub fn permits(self) -> bool {
        matches!(
            self,
            AllowDecision::AllowedEnrolled | AllowDecision::AllowedFailOpen
        )
    }
}

/// The attestation store consulted on every Topics API call.
#[derive(Debug, Clone)]
pub struct AttestationStore {
    state: AllowListState,
    mode: EnforcementMode,
}

impl AttestationStore {
    /// A store with a healthy allow-list of enrolled domains
    /// (normalised to registrable domains).
    pub fn healthy<I: IntoIterator<Item = Domain>>(enrolled: I) -> AttestationStore {
        let set = enrolled
            .into_iter()
            .map(|d| registrable_domain(&d))
            .collect();
        AttestationStore {
            state: AllowListState::Healthy(set),
            mode: EnforcementMode::FailOpen,
        }
    }

    /// A store whose database has been corrupted — the paper's crawler
    /// configuration.
    pub fn corrupted() -> AttestationStore {
        AttestationStore {
            state: AllowListState::Corrupted,
            mode: EnforcementMode::FailOpen,
        }
    }

    /// A store whose component folder is missing.
    pub fn missing() -> AttestationStore {
        AttestationStore {
            state: AllowListState::Missing,
            mode: EnforcementMode::FailOpen,
        }
    }

    /// Switch enforcement mode (the fixed browser for ablations).
    #[must_use]
    pub fn with_mode(mut self, mode: EnforcementMode) -> AttestationStore {
        self.mode = mode;
        self
    }

    /// The current enforcement mode.
    pub fn mode(&self) -> EnforcementMode {
        self.mode
    }

    /// True when the underlying database is unusable.
    pub fn is_degraded(&self) -> bool {
        !matches!(self.state, AllowListState::Healthy(_))
    }

    /// Decide whether `caller` may invoke the Topics API. Matching is at
    /// registrable-domain granularity, as in Chromium.
    pub fn check(&self, caller: &Domain) -> AllowDecision {
        match &self.state {
            AllowListState::Healthy(set) => {
                if set.contains(&registrable_domain(caller)) {
                    AllowDecision::AllowedEnrolled
                } else {
                    AllowDecision::BlockedNotEnrolled
                }
            }
            AllowListState::Corrupted | AllowListState::Missing => match self.mode {
                EnforcementMode::FailOpen => AllowDecision::AllowedFailOpen,
                EnforcementMode::FailClosed => AllowDecision::BlockedFailClosed,
            },
        }
    }

    /// The enrolled domains, when the database is healthy. This is what
    /// the paper reads off the June 6th, 2024 file (193 domains).
    pub fn enrolled(&self) -> Option<&BTreeSet<Domain>> {
        match &self.state {
            AllowListState::Healthy(set) => Some(set),
            _ => None,
        }
    }

    /// Simulate the on-startup component refresh: replace the database
    /// with a healthy list.
    pub fn refresh<I: IntoIterator<Item = Domain>>(&mut self, enrolled: I) {
        *self = AttestationStore::healthy(enrolled).with_mode(self.mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Domain {
        Domain::parse(s).unwrap()
    }

    #[test]
    fn healthy_list_allows_only_enrolled() {
        let store = AttestationStore::healthy([d("criteo.com"), d("doubleclick.net")]);
        assert_eq!(
            store.check(&d("criteo.com")),
            AllowDecision::AllowedEnrolled
        );
        assert_eq!(
            store.check(&d("bidder.criteo.com")),
            AllowDecision::AllowedEnrolled,
            "subdomains inherit enrolment of the registrable domain"
        );
        assert_eq!(
            store.check(&d("randomsite.com")),
            AllowDecision::BlockedNotEnrolled
        );
        assert!(!store.is_degraded());
    }

    #[test]
    fn corrupt_database_fails_open() {
        // The §2.3 bug: "the current implementation permits any Topics API
        // calls as default case when the internal database is corrupted or
        // missing".
        let store = AttestationStore::corrupted();
        assert!(store.is_degraded());
        let decision = store.check(&d("not-enrolled-at-all.com"));
        assert_eq!(decision, AllowDecision::AllowedFailOpen);
        assert!(decision.permits());
    }

    #[test]
    fn missing_database_fails_open_too() {
        let store = AttestationStore::missing();
        assert!(store.check(&d("anything.org")).permits());
    }

    #[test]
    fn fixed_browser_fails_closed() {
        let store = AttestationStore::corrupted().with_mode(EnforcementMode::FailClosed);
        let decision = store.check(&d("not-enrolled.com"));
        assert_eq!(decision, AllowDecision::BlockedFailClosed);
        assert!(!decision.permits());
    }

    #[test]
    fn fail_closed_does_not_affect_healthy_list() {
        let store =
            AttestationStore::healthy([d("criteo.com")]).with_mode(EnforcementMode::FailClosed);
        assert!(store.check(&d("criteo.com")).permits());
        assert!(!store.check(&d("other.com")).permits());
    }

    #[test]
    fn enrolled_is_normalised_and_readable() {
        let store = AttestationStore::healthy([d("www.criteo.com")]);
        let set = store.enrolled().unwrap();
        assert!(set.contains(&d("criteo.com")));
        assert_eq!(set.len(), 1);
        assert!(AttestationStore::corrupted().enrolled().is_none());
    }

    #[test]
    fn refresh_heals_a_corrupt_store() {
        let mut store = AttestationStore::corrupted();
        store.refresh([d("pubmatic.com")]);
        assert!(!store.is_degraded());
        assert!(store.check(&d("pubmatic.com")).permits());
        assert!(!store.check(&d("x.com")).permits());
    }
}
