//! Instrumentation — the reproduction of the paper's modified
//! `BrowsingTopicsSiteDataManagerImpl`.
//!
//! The paper records, for every Topics API call: the calling party, the
//! website the call happened on, the timestamp of the call, the API call
//! type (JavaScript / Fetch / IFrame), and multiplicity of calls per page.
//! We additionally record the calling *context* (root document vs iframe)
//! and the host that served the calling script — the two fields that make
//! the §4 "wrong context" analysis possible — and the allow-list decision.

use crate::attestation::AllowDecision;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::http::ResourceKind;
use topics_net::url::Url;

/// The three Topics API call types distinguished by the integration guide
/// and logged by the paper's modified handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallType {
    /// `document.browsingTopics()` from JavaScript.
    JavaScript,
    /// `fetch(url, {browsingTopics: true})` — topics ride the
    /// `Sec-Browsing-Topics` request header.
    Fetch,
    /// `<iframe browsingtopics src=…>` — topics ride the frame's document
    /// request.
    Iframe,
}

impl CallType {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CallType::JavaScript => "JavaScript",
            CallType::Fetch => "Fetch",
            CallType::Iframe => "IFrame",
        }
    }
}

/// One observed Topics API call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicsCallEvent {
    /// The host attributed as Calling Party by the browser: the calling
    /// context's origin host for JavaScript calls, the destination host
    /// for fetch/iframe calls.
    pub caller: Domain,
    /// The website (registrable domain of the top-level page) the call
    /// happened on.
    pub website: Domain,
    /// Call type.
    pub call_type: CallType,
    /// True when the calling context was the root (top-level) document —
    /// the §4 signature of scripts included via `<script src=…>`.
    pub root_context: bool,
    /// Host that served the calling script, when the call came from an
    /// external script (e.g. `www.googletagmanager.com`); `None` for
    /// inline scripts and iframe-type calls.
    pub script_source: Option<Domain>,
    /// Allow-list decision taken by the browser for this call.
    pub decision: AllowDecision,
    /// Number of topics the engine returned (0 when blocked).
    pub topics_returned: usize,
    /// When the call happened.
    pub timestamp: Timestamp,
}

impl TopicsCallEvent {
    /// Whether the call was actually executed (not blocked by enrolment
    /// enforcement).
    pub fn permitted(&self) -> bool {
        self.decision.permits()
    }
}

/// One object downloaded while rendering a page (§2.2: "the URL of each
/// first- and third-party object downloaded to render the page").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectEvent {
    /// The object URL.
    pub url: Url,
    /// What kind of resource it was.
    pub kind: ResourceKind,
    /// Whether the fetch succeeded.
    pub ok: bool,
    /// When it was requested.
    pub timestamp: Timestamp,
}

/// Receiver for browser instrumentation events.
pub trait BrowserObserver: Send + Sync {
    /// A Topics API call was made (whether permitted or blocked).
    fn on_topics_call(&self, event: &TopicsCallEvent);
    /// An object was requested during page load.
    fn on_object(&self, event: &ObjectEvent);
}

/// An observer that discards everything.
#[derive(Debug, Default)]
pub struct NullObserver;

impl BrowserObserver for NullObserver {
    fn on_topics_call(&self, _event: &TopicsCallEvent) {}
    fn on_object(&self, _event: &ObjectEvent) {}
}

/// An observer that records everything, for tests and the crawler.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    calls: Mutex<Vec<TopicsCallEvent>>,
    objects: Mutex<Vec<ObjectEvent>>,
}

impl RecordingObserver {
    /// A fresh, shareable recorder.
    pub fn shared() -> Arc<RecordingObserver> {
        Arc::new(RecordingObserver::default())
    }

    /// Snapshot of the Topics calls recorded so far.
    pub fn calls(&self) -> Vec<TopicsCallEvent> {
        self.calls.lock().clone()
    }

    /// Snapshot of the object loads recorded so far.
    pub fn objects(&self) -> Vec<ObjectEvent> {
        self.objects.lock().clone()
    }

    /// Drain both logs, returning `(calls, objects)` and leaving the
    /// recorder empty — the crawler does this per visit.
    pub fn drain(&self) -> (Vec<TopicsCallEvent>, Vec<ObjectEvent>) {
        (
            std::mem::take(&mut self.calls.lock()),
            std::mem::take(&mut self.objects.lock()),
        )
    }
}

impl BrowserObserver for RecordingObserver {
    fn on_topics_call(&self, event: &TopicsCallEvent) {
        self.calls.lock().push(event.clone());
    }
    fn on_object(&self, event: &ObjectEvent) {
        self.objects.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> TopicsCallEvent {
        TopicsCallEvent {
            caller: Domain::parse("cp.com").unwrap(),
            website: Domain::parse("news.com").unwrap(),
            call_type: CallType::JavaScript,
            root_context: true,
            script_source: Some(Domain::parse("www.googletagmanager.com").unwrap()),
            decision: AllowDecision::AllowedFailOpen,
            topics_returned: 2,
            timestamp: Timestamp(1),
        }
    }

    #[test]
    fn recording_observer_accumulates_and_drains() {
        let rec = RecordingObserver::shared();
        rec.on_topics_call(&event());
        rec.on_topics_call(&event());
        rec.on_object(&ObjectEvent {
            url: Url::parse("https://a.com/x.js").unwrap(),
            kind: ResourceKind::Script,
            ok: true,
            timestamp: Timestamp(2),
        });
        assert_eq!(rec.calls().len(), 2);
        assert_eq!(rec.objects().len(), 1);
        let (calls, objects) = rec.drain();
        assert_eq!((calls.len(), objects.len()), (2, 1));
        assert!(rec.calls().is_empty());
        assert!(rec.objects().is_empty());
    }

    #[test]
    fn call_type_labels_match_paper_terms() {
        assert_eq!(CallType::JavaScript.label(), "JavaScript");
        assert_eq!(CallType::Fetch.label(), "Fetch");
        assert_eq!(CallType::Iframe.label(), "IFrame");
    }

    #[test]
    fn permitted_reflects_decision() {
        let mut e = event();
        assert!(e.permitted());
        e.decision = AllowDecision::BlockedNotEnrolled;
        assert!(!e.permitted());
    }

    #[test]
    fn events_serialize() {
        let j = serde_json::to_string(&event()).unwrap();
        assert!(j.contains("googletagmanager"));
        let back: TopicsCallEvent = serde_json::from_str(&j).unwrap();
        assert_eq!(back, event());
    }
}
