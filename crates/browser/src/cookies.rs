//! A small cookie jar.
//!
//! Two things in the reproduction need cookies: the consent state a CMP
//! records when the user accepts the privacy banner (which survives the
//! cache clearing between the Before-Accept and After-Accept visits), and
//! the third-party identifier cookies of the classical tracking baseline
//! (`topics-baseline`).

use crate::origin::Site;
use std::collections::HashMap;
use topics_net::clock::Timestamp;

/// One cookie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cookie {
    /// Cookie name.
    pub name: String,
    /// Cookie value.
    pub value: String,
    /// When it was set (simulated time).
    pub set_at: Timestamp,
}

/// Cookie storage keyed by site and partitioned by access context.
///
/// Cookies set by a third party embedded in a page are classic
/// *third-party cookies*: they live under the third party's own site key,
/// visible to that party on any page — exactly the cross-site linkage the
/// Topics API was designed to replace.
#[derive(Debug, Clone, Default)]
pub struct CookieJar {
    by_site: HashMap<Site, HashMap<String, Cookie>>,
}

impl CookieJar {
    /// An empty jar.
    pub fn new() -> CookieJar {
        CookieJar::default()
    }

    /// Set a cookie for `site`.
    pub fn set(&mut self, site: &Site, name: &str, value: &str, now: Timestamp) {
        self.by_site.entry(site.clone()).or_default().insert(
            name.to_owned(),
            Cookie {
                name: name.to_owned(),
                value: value.to_owned(),
                set_at: now,
            },
        );
    }

    /// Look up a cookie.
    pub fn get(&self, site: &Site, name: &str) -> Option<&Cookie> {
        self.by_site.get(site).and_then(|m| m.get(name))
    }

    /// All cookies for a site, in arbitrary order.
    pub fn cookies_for(&self, site: &Site) -> Vec<&Cookie> {
        self.by_site
            .get(site)
            .map(|m| m.values().collect())
            .unwrap_or_default()
    }

    /// Render the `Cookie:` request-header value for a site, sorted by
    /// name for determinism. Empty string when no cookies exist.
    pub fn header_for(&self, site: &Site) -> String {
        let mut cookies = self.cookies_for(site);
        cookies.sort_by(|a, b| a.name.cmp(&b.name));
        cookies
            .iter()
            .map(|c| format!("{}={}", c.name, c.value))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Delete every cookie (full browser reset). Note the paper clears
    /// only the *cache* between visits, so the consent cookie survives;
    /// this method exists for starting fresh profiles.
    pub fn clear(&mut self) {
        self.by_site.clear();
    }

    /// Total cookie count across all sites.
    pub fn len(&self) -> usize {
        self.by_site.values().map(|m| m.len()).sum()
    }

    /// True when the jar holds no cookies.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_net::url::Url;

    fn site(s: &str) -> Site {
        Site::of(&Url::parse(s).unwrap())
    }

    #[test]
    fn set_get_roundtrip() {
        let mut jar = CookieJar::new();
        let s = site("https://example.com/");
        jar.set(&s, "euconsent", "granted", Timestamp(5));
        let c = jar.get(&s, "euconsent").unwrap();
        assert_eq!(c.value, "granted");
        assert_eq!(c.set_at, Timestamp(5));
        assert!(jar.get(&s, "other").is_none());
    }

    #[test]
    fn sites_are_isolated() {
        let mut jar = CookieJar::new();
        jar.set(&site("https://a.com/"), "id", "1", Timestamp(0));
        assert!(jar.get(&site("https://b.com/"), "id").is_none());
    }

    #[test]
    fn subdomains_share_site_cookies() {
        let mut jar = CookieJar::new();
        jar.set(&site("https://www.a.com/"), "id", "1", Timestamp(0));
        assert!(jar.get(&site("https://shop.a.com/"), "id").is_some());
    }

    #[test]
    fn header_is_sorted_and_joined() {
        let mut jar = CookieJar::new();
        let s = site("https://a.com/");
        jar.set(&s, "zz", "2", Timestamp(0));
        jar.set(&s, "aa", "1", Timestamp(0));
        assert_eq!(jar.header_for(&s), "aa=1; zz=2");
        assert_eq!(jar.header_for(&site("https://b.com/")), "");
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut jar = CookieJar::new();
        let s = site("https://a.com/");
        jar.set(&s, "k", "old", Timestamp(0));
        jar.set(&s, "k", "new", Timestamp(1));
        assert_eq!(jar.get(&s, "k").unwrap().value, "new");
        assert_eq!(jar.len(), 1);
    }

    #[test]
    fn clear_empties_jar() {
        let mut jar = CookieJar::new();
        jar.set(&site("https://a.com/"), "k", "v", Timestamp(0));
        assert!(!jar.is_empty());
        jar.clear();
        assert!(jar.is_empty());
    }
}
