//! The browser resource cache.
//!
//! The paper clears the cache between the Before-Accept and After-Accept
//! visits so every object is downloaded again and both visits observe the
//! full set of first- and third-party URLs. The cache here is a plain
//! URL-keyed store with hit counting, enough to verify that behaviour.

use std::collections::HashMap;
use topics_net::http::HttpResponse;
use topics_net::url::Url;

/// A URL-keyed response cache.
#[derive(Debug, Default)]
pub struct ResourceCache {
    entries: HashMap<Url, HttpResponse>,
    hits: u64,
    misses: u64,
}

impl ResourceCache {
    /// An empty cache.
    pub fn new() -> ResourceCache {
        ResourceCache::default()
    }

    /// Look up a cached response, counting the hit/miss.
    pub fn lookup(&mut self, url: &Url) -> Option<HttpResponse> {
        match self.entries.get(url) {
            Some(r) => {
                self.hits += 1;
                Some(r.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a response. Redirects and errors are not cached.
    pub fn store(&mut self, url: &Url, response: &HttpResponse) {
        if response.status.is_success() {
            self.entries.insert(url.clone(), response.clone());
        }
    }

    /// Drop every entry ("We delete the browser cache to load again all
    /// objects", §2.2). Hit/miss counters are preserved for diagnostics.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topics_net::http::StatusCode;

    fn url(s: &str) -> Url {
        Url::parse(s).unwrap()
    }

    #[test]
    fn store_then_hit() {
        let mut c = ResourceCache::new();
        let u = url("https://a.com/lib.js");
        assert!(c.lookup(&u).is_none());
        c.store(&u, &HttpResponse::ok("text/javascript", "x"));
        let r = c.lookup(&u).unwrap();
        assert_eq!(r.body, "x");
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn non_success_is_not_cached() {
        let mut c = ResourceCache::new();
        let u = url("https://a.com/missing");
        c.store(&u, &HttpResponse::not_found());
        assert!(c.lookup(&u).is_none());
        let mut r = HttpResponse::ok("text/html", "");
        r.status = StatusCode::Found;
        c.store(&u, &r);
        assert!(c.lookup(&u).is_none());
    }

    #[test]
    fn clear_forces_refetch() {
        let mut c = ResourceCache::new();
        let u = url("https://a.com/x");
        c.store(&u, &HttpResponse::ok("text/html", "page"));
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert!(c.lookup(&u).is_none());
    }

    #[test]
    fn query_distinguishes_entries() {
        let mut c = ResourceCache::new();
        c.store(
            &url("https://a.com/t?id=1"),
            &HttpResponse::ok("text/javascript", "one"),
        );
        assert!(c.lookup(&url("https://a.com/t?id=2")).is_none());
        assert_eq!(c.lookup(&url("https://a.com/t?id=1")).unwrap().body, "one");
    }
}
