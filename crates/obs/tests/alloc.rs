//! Integration: the counting allocator, measured for real.
//!
//! Unit tests inside the crate cannot observe the counters because the
//! test binary uses the plain system allocator; this suite installs
//! [`CountingAlloc`] as its `#[global_allocator]` and exercises the
//! full accounting stack. Counting is a process-wide toggle, so every
//! test serialises on one mutex and leaves counting disabled on exit.

use std::sync::Mutex;
use topics_obs::alloc::{self, AllocSpan, CountingAlloc, WindowSpan};
use topics_obs::MetricsRegistry;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

static GATE: Mutex<()> = Mutex::new(());

/// Run `f` with counting enabled, serialised against the other tests.
fn counted<T>(f: impl FnOnce() -> T) -> T {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    alloc::set_enabled(true);
    let out = f();
    alloc::set_enabled(false);
    out
}

/// An allocation the optimiser cannot elide.
fn churn(bytes: usize) -> usize {
    let v: Vec<u8> = vec![7; bytes];
    std::hint::black_box(&v);
    v.len()
}

#[test]
fn disabled_allocator_records_nothing() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(!alloc::is_enabled());
    let before = alloc::thread_stats();
    churn(1 << 16);
    let after = alloc::thread_stats();
    assert_eq!(before, after, "counters moved while disabled");
}

#[test]
fn enabled_allocator_counts_on_both_scopes() {
    counted(|| {
        let g0 = alloc::global_stats();
        let t0 = alloc::thread_stats();
        churn(1 << 16);
        let g1 = alloc::global_stats();
        let t1 = alloc::thread_stats();
        assert!(g1.alloc_bytes - g0.alloc_bytes >= 1 << 16);
        assert!(g1.alloc_count > g0.alloc_count);
        assert!(g1.dealloc_bytes - g0.dealloc_bytes >= 1 << 16);
        assert!(t1.alloc_bytes - t0.alloc_bytes >= 1 << 16);
        assert!(g1.peak_bytes >= 1 << 16);
    });
}

#[test]
fn alloc_span_measures_thread_deltas_and_restores_nested_peaks() {
    counted(|| {
        let outer = AllocSpan::start();
        churn(1 << 14);
        let inner = AllocSpan::start();
        churn(1 << 18);
        let inner_delta = inner.finish();
        assert!(inner_delta.alloc_bytes >= 1 << 18);
        assert!(inner_delta.alloc_bytes < 1 << 19, "inner saw only itself");
        assert!(inner_delta.peak_bytes >= 1 << 18);
        let outer_delta = outer.finish();
        assert!(
            outer_delta.alloc_bytes >= (1 << 18) + (1 << 14),
            "outer includes the nested span"
        );
        assert!(
            outer_delta.peak_bytes >= inner_delta.peak_bytes,
            "nested peak folds back into the parent"
        );
    });
}

#[test]
fn alloc_span_is_inert_when_disabled() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let span = AllocSpan::start();
    churn(1 << 12);
    assert!(span.finish().is_zero());
    let window = WindowSpan::start();
    churn(1 << 12);
    assert!(window.finish().is_zero());
}

#[test]
fn window_span_sees_worker_thread_allocations() {
    counted(|| {
        let window = WindowSpan::start();
        let threads: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(|| churn(1 << 16)))
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let delta = window.finish();
        assert!(
            delta.alloc_bytes >= 4 << 16,
            "process window missed worker allocations: {delta:?}"
        );
        assert!(delta.alloc_count >= 4);
    });
}

#[test]
fn size_classes_feed_the_histogram_via_publish() {
    counted(|| {
        churn(100); // class 2⁷
        churn(1 << 20); // class 2²⁰
        let classes = alloc::size_class_counts();
        assert!(classes.iter().any(|&(bound, n)| bound == 128 && n > 0));
        assert!(classes.iter().any(|&(bound, n)| bound == 1 << 20 && n > 0));

        let registry = MetricsRegistry::new();
        alloc::publish(&registry);
        let snap = registry.snapshot();
        assert!(snap.gauge("mem_alloc_bytes") > 0);
        assert!(snap.gauge("mem_peak_bytes") > 0);
        let hist = &snap.histograms["alloc_size_bytes"];
        assert!(hist.count > 0);
        // The 1 MiB allocation resolves to a finite bucket, not +Inf.
        assert!(hist.quantile_checked(1.0).is_some());
        // And the whole family is operational: stripped away.
        let stripped = snap.clone().strip_wall_clock();
        assert!(stripped.gauges.is_empty());
        assert!(stripped.histograms.is_empty());
    });
}

#[test]
fn peak_rss_is_reported_on_linux() {
    let rss = alloc::peak_rss_bytes();
    if cfg!(target_os = "linux") {
        let rss = rss.expect("VmHWM available on Linux");
        assert!(rss > 1 << 20, "peak RSS under 1 MiB is implausible: {rss}");
    }
}

#[test]
fn ballast_allocates_the_requested_bytes() {
    counted(|| {
        let span = AllocSpan::start();
        alloc::ballast(10 << 20);
        let delta = span.finish();
        assert!(
            delta.alloc_bytes >= 10 << 20,
            "ballast under-allocated: {delta:?}"
        );
    });
}
