//! Concurrent scrape coverage: the live registry is rendered to
//! Prometheus text while other threads mutate counters, gauges and
//! histograms — the exact access pattern of `topics-lab serve`, where
//! `/metrics` is scraped mid-request. Every render must be well-formed
//! (one sample per line, unique HELP/TYPE headers, cumulative buckets)
//! and counter values must be monotone across successive renders.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use topics_obs::metrics::base_name;
use topics_obs::MetricsRegistry;

/// Parse a rendered exposition into (series name, value) pairs,
/// asserting structural well-formedness along the way.
fn parse_render(text: &str) -> Vec<(String, i64)> {
    let mut samples = Vec::new();
    let mut meta: Vec<&str> = Vec::new();
    for line in text.lines() {
        if line.starts_with("# HELP") || line.starts_with("# TYPE") {
            meta.push(line);
            continue;
        }
        assert!(!line.is_empty(), "blank line in exposition");
        let (name, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            !name.is_empty() && !name.starts_with(' '),
            "malformed sample line {line:?}"
        );
        let value: i64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric value in {line:?}"));
        samples.push((name.to_owned(), value));
    }
    let total = meta.len();
    meta.sort_unstable();
    meta.dedup();
    assert_eq!(meta.len(), total, "duplicate HELP/TYPE lines");
    samples
}

#[test]
fn concurrent_scrapes_are_well_formed_and_monotone() {
    let registry = Arc::new(MetricsRegistry::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: counters, a labelled counter family, a gauge, and a
    // histogram, all hammered concurrently.
    let mut writers = Vec::new();
    for w in 0..3 {
        let r = Arc::clone(&registry);
        let s = Arc::clone(&stop);
        writers.push(std::thread::spawn(move || {
            let mut i = 0u64;
            while !s.load(Ordering::Relaxed) {
                r.counter("scrape_test_total").inc();
                r.labeled_counter("scrape_requests_total", "path", "/api/report")
                    .inc();
                r.labeled_counter("scrape_requests_total", "path", "/metrics")
                    .add(2);
                r.gauge("scrape_inflight").set((w * 100 + i % 7) as i64);
                r.histogram_with_buckets("scrape_wall_ms", &[1, 5, 25, 100])
                    .observe(i % 130);
                i += 1;
            }
        }));
    }

    // Scrapers: render repeatedly while the writers run; each scraper
    // checks well-formedness per render and monotonicity against its
    // own previous render.
    let mut scrapers = Vec::new();
    for _ in 0..2 {
        let r = Arc::clone(&registry);
        scrapers.push(std::thread::spawn(move || {
            let mut last_total = 0i64;
            let mut last_count = 0i64;
            let mut renders = 0usize;
            for _ in 0..200 {
                let samples = parse_render(&r.snapshot().render_prometheus());
                let mut bucket_cumulative = -1i64;
                for (name, value) in &samples {
                    if name == "scrape_test_total" {
                        assert!(
                            *value >= last_total,
                            "counter went backwards: {value} < {last_total}"
                        );
                        last_total = *value;
                    }
                    if name == "scrape_wall_ms_count" {
                        assert!(*value >= last_count, "histogram count shrank");
                        last_count = *value;
                    }
                    if name.starts_with("scrape_wall_ms_bucket") {
                        assert!(
                            *value >= bucket_cumulative,
                            "buckets must be cumulative: {name} {value}"
                        );
                        bucket_cumulative = *value;
                    }
                    assert!(
                        !base_name(name).is_empty(),
                        "sample without a base name: {name}"
                    );
                }
                renders += 1;
            }
            renders
        }));
    }

    let renders: usize = scrapers.into_iter().map(|s| s.join().unwrap()).sum();
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(renders, 400, "every render completed");

    // Quiescent reconciliation: the final render agrees with the
    // handles' own values exactly.
    let final_samples = parse_render(&registry.snapshot().render_prometheus());
    let total = registry.counter("scrape_test_total").get() as i64;
    assert!(total > 0, "writers made progress");
    assert!(final_samples
        .iter()
        .any(|(n, v)| n == "scrape_test_total" && *v == total));
}
