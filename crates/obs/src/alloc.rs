//! Opt-in instrumented global allocator: alloc/dealloc/live/peak
//! accounting cheap enough to leave on.
//!
//! [`CountingAlloc`] wraps the system allocator. Binaries that want
//! memory observability install it once:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: topics_obs::alloc::CountingAlloc = topics_obs::alloc::CountingAlloc;
//! ```
//!
//! Counting is **off by default** — the hot path then costs exactly one
//! relaxed atomic load and a branch — and is switched on with
//! [`set_enabled`] (the CLI's `--alloc-stats` flag). When on, every
//! allocation updates process-wide *and* thread-local counters with
//! relaxed atomics / plain `Cell`s: no locks, no allocation, no
//! syscalls, so the allocator can never re-enter itself.
//!
//! Two accounting scopes sit on top of the raw counters:
//!
//! * [`AllocSpan`] — a *thread-local* delta scope for one unit of work
//!   (one visit, one probe, one page load). Nesting is supported: a
//!   child span's peak watermark is folded back into its parent on
//!   finish.
//! * [`WindowSpan`] — a *process-wide* delta scope for one pipeline
//!   phase (all worker threads included). Top-level phases run
//!   sequentially, so resetting the window peak watermark at phase
//!   start is sound.
//!
//! The deltas become `alloc_bytes`/`alloc_count`/`peak_bytes` span
//! attributes on the trace, which [`crate::Trace::stripped`] removes —
//! allocation counts depend on thread scheduling and allocator
//! internals, so they are *operational* data, outside the determinism
//! contract. Crucially the counters only ever *observe*: enabling or
//! disabling them cannot change a single byte of `campaign.json` or a
//! stripped trace (the determinism suite pins this).

// The one place in the workspace that genuinely needs `unsafe`: a
// `GlobalAlloc` impl is an unsafe trait by definition. Everything the
// impl does beyond forwarding to `System` is lock-free arithmetic.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Number of power-of-two size classes tracked (2⁰ … 2⁴⁷ bytes; larger
/// allocations fold into the last class).
pub const SIZE_CLASSES: usize = 48;

static ENABLED: AtomicBool = AtomicBool::new(false);

// Process-wide counters (relaxed; read with `global_stats`).
static G_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static G_DEALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static G_DEALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
/// Net live bytes. Signed: a thread may free memory another allocated.
static G_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `G_LIVE_BYTES` since process start (never reset).
static G_PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark since the last [`WindowSpan`] start (resettable).
static G_WINDOW_PEAK: AtomicU64 = AtomicU64::new(0);

/// Per-size-class allocation counts (index = ⌈log₂ size⌉, capped).
static G_SIZE_CLASSES: [AtomicU64; SIZE_CLASSES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; SIZE_CLASSES]
};

thread_local! {
    // Plain-data cells (no `Drop`), so no TLS destructor is registered
    // and access from inside the allocator is always safe.
    static T_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static T_DEALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_DEALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static T_LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    static T_PEAK_BYTES: Cell<i64> = const { Cell::new(0) };
}

/// The instrumented allocator. Install as `#[global_allocator]`;
/// counting stays off until [`set_enabled`] flips it on.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

#[inline]
fn size_class(size: usize) -> usize {
    // ⌈log₂ size⌉, with size 0/1 in class 0.
    let bits = usize::BITS - size.max(1).next_power_of_two().leading_zeros() - 1;
    (bits as usize).min(SIZE_CLASSES - 1)
}

#[inline]
fn record_alloc(size: usize) {
    let bytes = size as u64;
    G_ALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    G_ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    G_SIZE_CLASSES[size_class(size)].fetch_add(1, Ordering::Relaxed);
    let live = G_LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    if live > 0 {
        G_PEAK_BYTES.fetch_max(live as u64, Ordering::Relaxed);
        G_WINDOW_PEAK.fetch_max(live as u64, Ordering::Relaxed);
    }
    // `try_with` only fails during thread teardown; drop the sample.
    let _ = T_ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
    let _ = T_ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = T_LIVE_BYTES.try_with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        let _ = T_PEAK_BYTES.try_with(|p| p.set(p.get().max(live)));
    });
}

#[inline]
fn record_dealloc(size: usize) {
    let bytes = size as u64;
    G_DEALLOC_BYTES.fetch_add(bytes, Ordering::Relaxed);
    G_DEALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    G_LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
    let _ = T_DEALLOC_BYTES.try_with(|c| c.set(c.get() + bytes));
    let _ = T_DEALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
    let _ = T_LIVE_BYTES.try_with(|c| c.set(c.get() - size as i64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if ENABLED.load(Ordering::Relaxed) {
            record_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && ENABLED.load(Ordering::Relaxed) {
            // Count a grow/shrink as a fresh allocation of the new size
            // plus a free of the old one, on both scopes, so alloc and
            // dealloc totals stay balanced.
            record_alloc(new_size);
            record_dealloc(layout.size());
        }
        p
    }
}

/// Turn counting on or off. Off (the default) reduces the allocator to
/// one relaxed load per call. Counters are *not* reset by disabling, so
/// a snapshot after a run still reads the run's totals.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocations are currently being counted.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A point-in-time copy of one accounting scope's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes allocated (cumulative, including freed-again memory).
    pub alloc_bytes: u64,
    /// Allocation calls.
    pub alloc_count: u64,
    /// Bytes deallocated.
    pub dealloc_bytes: u64,
    /// Deallocation calls.
    pub dealloc_count: u64,
    /// Net live bytes right now (can go negative per-thread when a
    /// thread frees memory another allocated; clamped to 0 here).
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

/// Process-wide counters since the process started counting.
pub fn global_stats() -> AllocStats {
    AllocStats {
        alloc_bytes: G_ALLOC_BYTES.load(Ordering::Relaxed),
        alloc_count: G_ALLOC_COUNT.load(Ordering::Relaxed),
        dealloc_bytes: G_DEALLOC_BYTES.load(Ordering::Relaxed),
        dealloc_count: G_DEALLOC_COUNT.load(Ordering::Relaxed),
        live_bytes: G_LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: G_PEAK_BYTES.load(Ordering::Relaxed),
    }
}

/// This thread's counters since it started counting.
pub fn thread_stats() -> AllocStats {
    AllocStats {
        alloc_bytes: T_ALLOC_BYTES.with(Cell::get),
        alloc_count: T_ALLOC_COUNT.with(Cell::get),
        dealloc_bytes: T_DEALLOC_BYTES.with(Cell::get),
        dealloc_count: T_DEALLOC_COUNT.with(Cell::get),
        live_bytes: T_LIVE_BYTES.with(Cell::get).max(0) as u64,
        peak_bytes: T_PEAK_BYTES.with(Cell::get).max(0) as u64,
    }
}

/// The measured allocation delta of a finished [`AllocSpan`] or
/// [`WindowSpan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Bytes allocated inside the scope.
    pub alloc_bytes: u64,
    /// Allocation calls inside the scope.
    pub alloc_count: u64,
    /// Bytes deallocated inside the scope.
    pub dealloc_bytes: u64,
    /// Peak of (live bytes − live bytes at scope start) while the scope
    /// ran; 0 when the scope only freed memory.
    pub peak_bytes: u64,
}

impl AllocDelta {
    /// True when nothing was recorded (counting off, or a zero scope).
    pub fn is_zero(&self) -> bool {
        *self == AllocDelta::default()
    }
}

/// Thread-local allocation scope for one unit of work. Create with
/// [`AllocSpan::start`], finish with [`AllocSpan::finish`]; the scope
/// is a no-op (all-zero delta) while counting is disabled.
#[derive(Debug)]
#[must_use = "an unfinished AllocSpan measures nothing"]
pub struct AllocSpan {
    active: bool,
    start_alloc_bytes: u64,
    start_alloc_count: u64,
    start_dealloc_bytes: u64,
    start_live: i64,
    /// Parent scope's watermark, folded back in on finish.
    outer_peak: i64,
}

impl AllocSpan {
    /// Open a scope at the current thread counters and reset the
    /// thread's peak watermark to the current live level.
    pub fn start() -> AllocSpan {
        if !is_enabled() {
            return AllocSpan {
                active: false,
                start_alloc_bytes: 0,
                start_alloc_count: 0,
                start_dealloc_bytes: 0,
                start_live: 0,
                outer_peak: 0,
            };
        }
        let live = T_LIVE_BYTES.with(Cell::get);
        let outer_peak = T_PEAK_BYTES.with(|p| p.replace(live));
        AllocSpan {
            active: true,
            start_alloc_bytes: T_ALLOC_BYTES.with(Cell::get),
            start_alloc_count: T_ALLOC_COUNT.with(Cell::get),
            start_dealloc_bytes: T_DEALLOC_BYTES.with(Cell::get),
            start_live: live,
            outer_peak,
        }
    }

    /// Close the scope: the delta since [`AllocSpan::start`], with the
    /// parent watermark restored (so nested spans never hide a peak
    /// from their enclosing span).
    pub fn finish(self) -> AllocDelta {
        if !self.active {
            return AllocDelta::default();
        }
        let peak = T_PEAK_BYTES.with(|p| {
            let inner = p.get();
            p.set(inner.max(self.outer_peak));
            inner
        });
        AllocDelta {
            alloc_bytes: T_ALLOC_BYTES.with(Cell::get) - self.start_alloc_bytes,
            alloc_count: T_ALLOC_COUNT.with(Cell::get) - self.start_alloc_count,
            dealloc_bytes: T_DEALLOC_BYTES.with(Cell::get) - self.start_dealloc_bytes,
            peak_bytes: (peak - self.start_live).max(0) as u64,
        }
    }
}

/// Process-wide allocation scope for one pipeline phase. All threads'
/// allocations land in the delta. Top-level phases run sequentially, so
/// the window peak watermark can be reset at scope start; do not nest
/// two `WindowSpan`s concurrently (the inner reset would truncate the
/// outer watermark — thread scopes use [`AllocSpan`] instead).
#[derive(Debug)]
#[must_use = "an unfinished WindowSpan measures nothing"]
pub struct WindowSpan {
    active: bool,
    start_alloc_bytes: u64,
    start_alloc_count: u64,
    start_dealloc_bytes: u64,
    start_live: u64,
}

impl WindowSpan {
    /// Open a process-wide scope and reset the window peak watermark.
    pub fn start() -> WindowSpan {
        if !is_enabled() {
            return WindowSpan {
                active: false,
                start_alloc_bytes: 0,
                start_alloc_count: 0,
                start_dealloc_bytes: 0,
                start_live: 0,
            };
        }
        let live = G_LIVE_BYTES.load(Ordering::Relaxed).max(0) as u64;
        G_WINDOW_PEAK.store(live, Ordering::Relaxed);
        WindowSpan {
            active: true,
            start_alloc_bytes: G_ALLOC_BYTES.load(Ordering::Relaxed),
            start_alloc_count: G_ALLOC_COUNT.load(Ordering::Relaxed),
            start_dealloc_bytes: G_DEALLOC_BYTES.load(Ordering::Relaxed),
            start_live: live,
        }
    }

    /// Close the scope and return the process-wide delta.
    pub fn finish(self) -> AllocDelta {
        if !self.active {
            return AllocDelta::default();
        }
        let peak = G_WINDOW_PEAK.load(Ordering::Relaxed);
        AllocDelta {
            alloc_bytes: G_ALLOC_BYTES.load(Ordering::Relaxed) - self.start_alloc_bytes,
            alloc_count: G_ALLOC_COUNT.load(Ordering::Relaxed) - self.start_alloc_count,
            dealloc_bytes: G_DEALLOC_BYTES.load(Ordering::Relaxed) - self.start_dealloc_bytes,
            peak_bytes: peak.saturating_sub(self.start_live),
        }
    }
}

/// Per-size-class allocation counts as `(inclusive upper bound, count)`
/// pairs, smallest class first. Only classes with observations are
/// returned.
pub fn size_class_counts() -> Vec<(u64, u64)> {
    G_SIZE_CLASSES
        .iter()
        .enumerate()
        .filter_map(|(i, c)| {
            let n = c.load(Ordering::Relaxed);
            (n > 0).then_some((1u64 << i, n))
        })
        .collect()
}

/// OS-reported peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`); `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Publish the current allocation counters into a metrics registry:
/// `mem_*` gauges (live heap, process peak, counter totals, OS peak
/// RSS) plus the `alloc_size_bytes` histogram on power-of-two buckets.
/// All of these are operational series, removed by
/// [`crate::MetricsSnapshot::strip_wall_clock`].
pub fn publish(metrics: &crate::MetricsRegistry) {
    let stats = global_stats();
    metrics
        .gauge("mem_alloc_bytes")
        .set(stats.alloc_bytes as i64);
    metrics
        .gauge("mem_alloc_count")
        .set(stats.alloc_count as i64);
    metrics
        .gauge("mem_dealloc_bytes")
        .set(stats.dealloc_bytes as i64);
    metrics.gauge("mem_live_bytes").set(stats.live_bytes as i64);
    metrics.gauge("mem_peak_bytes").set(stats.peak_bytes as i64);
    if let Some(rss) = peak_rss_bytes() {
        metrics.gauge("mem_peak_rss_bytes").set(rss as i64);
    }
    let hist = metrics.histogram_with_buckets(
        "alloc_size_bytes",
        crate::metrics::DEFAULT_SIZE_BUCKETS_BYTES,
    );
    for (bound, count) in size_class_counts() {
        hist.observe_n(bound, count);
    }
}

/// Allocate (and immediately release) `bytes` of heap in bounded
/// chunks. This exists for the `mem-regression-fixture` CI feature: a
/// deliberate, measurable allocation regression that the perf ledger
/// must catch. Each chunk goes through `black_box` so the allocator
/// calls cannot be optimised away.
pub fn ballast(bytes: u64) {
    const CHUNK: u64 = 1 << 22; // 4 MiB
    let mut left = bytes;
    while left > 0 {
        let take = left.min(CHUNK) as usize;
        let chunk: Vec<u8> = std::hint::black_box(Vec::with_capacity(take));
        drop(chunk);
        left -= take as u64;
    }
}
