//! Trace analysis: critical path, per-phase self/total time, worker
//! utilization, retry-storm clusters, slowest visits, and structural
//! integrity checks over a sealed [`Trace`].
//!
//! Everything here is computed from simulated-clock span bounds where
//! available (deterministic) and falls back to wall time only for spans
//! that never touch campaign time (e.g. `world-gen`).

use crate::trace::{SpanRecord, Trace};
use std::collections::BTreeMap;

/// Width of a retry-cluster window on the simulated clock.
const RETRY_WINDOW_MS: u64 = 60_000;
/// Number of retry clusters reported.
const RETRY_CLUSTERS: usize = 5;

/// Structural problems found in a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Integrity {
    /// Spans whose `parent` ID does not exist in the trace.
    pub orphans: Vec<u64>,
    /// IDs used by more than one span.
    pub duplicates: Vec<u64>,
    /// Spans with inverted durations (end before start, either clock).
    pub negative: Vec<u64>,
    /// Non-root spans with no parent link at all.
    pub rootless: Vec<u64>,
}

impl Integrity {
    /// True when the trace is structurally sound.
    pub fn is_clean(&self) -> bool {
        self.orphans.is_empty()
            && self.duplicates.is_empty()
            && self.negative.is_empty()
            && self.rootless.is_empty()
    }

    /// Human-readable violation lines (empty when clean).
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.orphans.is_empty() {
            out.push(format!(
                "{} orphan span(s) (missing parent): IDs {:?}",
                self.orphans.len(),
                preview(&self.orphans)
            ));
        }
        if !self.duplicates.is_empty() {
            out.push(format!(
                "{} duplicate span ID(s): {:?}",
                self.duplicates.len(),
                preview(&self.duplicates)
            ));
        }
        if !self.negative.is_empty() {
            out.push(format!(
                "{} span(s) with negative duration: IDs {:?}",
                self.negative.len(),
                preview(&self.negative)
            ));
        }
        if !self.rootless.is_empty() {
            out.push(format!(
                "{} non-root span(s) without a parent: IDs {:?}",
                self.rootless.len(),
                preview(&self.rootless)
            ));
        }
        out
    }
}

fn preview(ids: &[u64]) -> Vec<u64> {
    ids.iter().take(8).copied().collect()
}

/// Check a trace for orphan spans, duplicate IDs, and negative
/// durations.
pub fn integrity(trace: &Trace) -> Integrity {
    let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
    for s in &trace.spans {
        *seen.entry(s.id).or_insert(0) += 1;
    }
    let duplicates: Vec<u64> = seen
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(&id, _)| id)
        .collect();
    let mut orphans = Vec::new();
    let mut rootless = Vec::new();
    let mut negative = Vec::new();
    for s in &trace.spans {
        match s.parent {
            Some(p) => {
                if !seen.contains_key(&p) {
                    orphans.push(s.id);
                }
            }
            None => {
                if s.id != 1 {
                    rootless.push(s.id);
                }
            }
        }
        let sim_bad = matches!((s.sim_start_ms, s.sim_end_ms), (Some(a), Some(b)) if b < a);
        let wall_bad = s.wall_start_us > 0 && s.wall_end_us > 0 && s.wall_end_us < s.wall_start_us;
        if sim_bad || wall_bad {
            negative.push(s.id);
        }
    }
    Integrity {
        orphans,
        duplicates,
        negative,
        rootless,
    }
}

/// Total vs self time of one top-level phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase span name (`world-gen`, `crawl`, `attestation-probe`, …).
    pub name: String,
    /// Phase duration: simulated ms when the phase has simulated
    /// bounds, otherwise wall-clock ms.
    pub total_ms: u64,
    /// Time not covered by any direct child (same clock as `total_ms`).
    pub self_ms: u64,
    /// True when the stats are on the simulated clock.
    pub simulated: bool,
}

/// One hop of the campaign critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Span name.
    pub name: String,
    /// Best identifying field (domain, host, or phase name).
    pub label: String,
    /// Simulated start (ms).
    pub start_ms: u64,
    /// Simulated end (ms).
    pub end_ms: u64,
}

/// Utilization of one worker thread in one phase (from operational
/// `worker` spans — wall-clock, non-deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStat {
    /// Phase the worker served.
    pub phase: String,
    /// Worker index.
    pub worker: u64,
    /// Wall µs spent inside work items.
    pub busy_us: u64,
    /// Wall µs the worker span covered.
    pub span_us: u64,
    /// Items processed.
    pub items: u64,
}

/// A burst of retries inside one simulated-minute window.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryCluster {
    /// Window start on the simulated clock (ms).
    pub window_start_ms: u64,
    /// Retry attempts inside the window.
    pub retries: usize,
    /// Up to three sample hosts seen retrying.
    pub hosts: Vec<String>,
}

/// One of the slowest visits, with its dominant child span.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowVisit {
    /// Visited domain.
    pub domain: String,
    /// Tranco-style rank, when recorded.
    pub rank: u64,
    /// Simulated visit duration (ms).
    pub duration_ms: u64,
    /// Name of the longest direct child span (`page-load`, `fetch`, …).
    pub dominant: String,
    /// That child's simulated duration (ms).
    pub dominant_ms: u64,
}

/// The full analyzer output.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-phase total vs self time, in sealed span order.
    pub phases: Vec<PhaseStat>,
    /// Root-to-leaf chain of latest-finishing spans on the simulated
    /// clock.
    pub critical_path: Vec<Hop>,
    /// Per-worker utilization (empty when the trace has no worker
    /// spans, e.g. a stripped trace).
    pub workers: Vec<WorkerStat>,
    /// Retry windows ordered by retry count, densest first.
    pub retry_clusters: Vec<RetryCluster>,
    /// Top-N visits by simulated duration.
    pub slowest_visits: Vec<SlowVisit>,
}

impl Profile {
    /// Idle fraction per phase, aggregated over that phase's workers:
    /// `1 − Σbusy / Σspan`. Empty when no worker spans were recorded.
    pub fn idle_fractions(&self) -> Vec<(String, f64)> {
        let mut acc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for w in &self.workers {
            let e = acc.entry(&w.phase).or_insert((0, 0));
            e.0 += w.busy_us;
            e.1 += w.span_us;
        }
        acc.into_iter()
            .filter(|(_, (_, span))| *span > 0)
            .map(|(phase, (busy, span))| {
                let idle = 1.0 - (busy as f64 / span as f64).min(1.0);
                (phase.to_owned(), idle)
            })
            .collect()
    }

    /// Plain-text report (the `topics-lab serve` `/api/profile` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Per-phase time ==\n");
        out.push_str(&format!(
            "{:<20} {:>10} {:>10}  clock\n",
            "phase", "total ms", "self ms"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<20} {:>10} {:>10}  {}\n",
                p.name,
                p.total_ms,
                p.self_ms,
                if p.simulated { "sim" } else { "wall" },
            ));
        }
        out.push('\n');
        out.push_str("== Critical path (simulated clock) ==\n");
        if self.critical_path.is_empty() {
            out.push_str("(no simulated spans in trace)\n");
        }
        for h in &self.critical_path {
            out.push_str(&format!(
                "{:<16} {:<28} {:>8} → {:>8} ms\n",
                h.name, h.label, h.start_ms, h.end_ms
            ));
        }
        out.push('\n');
        out.push_str("== Worker idle fractions ==\n");
        let idle = self.idle_fractions();
        if idle.is_empty() {
            out.push_str("(no worker spans in trace)\n");
        }
        for (phase, frac) in &idle {
            out.push_str(&format!("{phase:<20} {:>6.1}% idle\n", frac * 100.0));
        }
        out.push('\n');
        out.push_str("== Retry clusters ==\n");
        if self.retry_clusters.is_empty() {
            out.push_str("(no retries in trace)\n");
        }
        for c in &self.retry_clusters {
            out.push_str(&format!(
                "window @{:>8} ms: {:>4} retries (e.g. {})\n",
                c.window_start_ms,
                c.retries,
                c.hosts.join(", "),
            ));
        }
        out.push('\n');
        out.push_str("== Slowest visits ==\n");
        for (i, v) in self.slowest_visits.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<28} rank {:>6}  {:>8} ms (dominant: {} {} ms)\n",
                i + 1,
                v.domain,
                v.rank,
                v.duration_ms,
                v.dominant,
                v.dominant_ms,
            ));
        }
        out
    }
}

fn label_of(s: &SpanRecord) -> String {
    for key in ["domain", "host", "phase", "url"] {
        if let Some(v) = s.field(key) {
            return v.to_string();
        }
    }
    String::new()
}

fn u64_field(s: &SpanRecord, key: &str) -> u64 {
    match s.field(key) {
        Some(crate::events::FieldValue::U64(v)) => *v,
        Some(crate::events::FieldValue::I64(v)) => *v as u64,
        _ => 0,
    }
}

/// Analyze a sealed trace. `top_n` bounds the slowest-visit list.
pub fn profile(trace: &Trace, top_n: usize) -> Profile {
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(i);
        }
    }

    // Per-phase total vs self time.
    let mut phases = Vec::new();
    for &pi in children.get(&1).map(Vec::as_slice).unwrap_or(&[]) {
        let p = &trace.spans[pi];
        if p.op {
            continue;
        }
        let (total_ms, simulated) = match p.sim_duration_ms() {
            Some(d) => (d, true),
            None => (p.wall_duration_us() / 1000, false),
        };
        let self_ms = if simulated {
            let (ps, pe) = (p.sim_start_ms.unwrap(), p.sim_end_ms.unwrap());
            let mut intervals: Vec<(u64, u64)> = children
                .get(&p.id)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .filter_map(|&ci| {
                    let c = &trace.spans[ci];
                    match (c.sim_start_ms, c.sim_end_ms) {
                        (Some(a), Some(b)) if b > a => Some((a.max(ps), b.min(pe))),
                        _ => None,
                    }
                })
                .filter(|(a, b)| b > a)
                .collect();
            intervals.sort_unstable();
            let mut covered = 0u64;
            let mut cursor = ps;
            for (a, b) in intervals {
                let a = a.max(cursor);
                if b > a {
                    covered += b - a;
                    cursor = b;
                }
            }
            total_ms.saturating_sub(covered)
        } else {
            total_ms
        };
        phases.push(PhaseStat {
            name: p.name.clone(),
            total_ms,
            self_ms,
            simulated,
        });
    }

    // Critical path: from the root, repeatedly descend into the child
    // that finishes last on the simulated clock.
    let mut critical_path = Vec::new();
    let mut cursor = 1u64;
    while let Some(kids) = children.get(&cursor) {
        let next = kids
            .iter()
            .map(|&i| &trace.spans[i])
            .filter(|s| !s.op && s.sim_end_ms.is_some())
            .max_by_key(|s| (s.sim_end_ms, std::cmp::Reverse(s.id)));
        let Some(next) = next else { break };
        critical_path.push(Hop {
            name: next.name.clone(),
            label: label_of(next),
            start_ms: next.sim_start_ms.unwrap_or(0),
            end_ms: next.sim_end_ms.unwrap_or(0),
        });
        cursor = next.id;
    }

    // Worker utilization from operational `worker` spans.
    let workers: Vec<WorkerStat> = trace
        .spans
        .iter()
        .filter(|s| s.op && s.name == "worker")
        .map(|s| WorkerStat {
            phase: s
                .field("phase")
                .map(|v| v.to_string())
                .unwrap_or_else(|| "?".to_owned()),
            worker: u64_field(s, "worker"),
            busy_us: u64_field(s, "busy_us"),
            span_us: u64_field(s, "span_us").max(s.wall_duration_us()),
            items: u64_field(s, "items"),
        })
        .collect();

    // Retry storms: bucket retry spans into simulated-minute windows.
    let mut buckets: BTreeMap<u64, (usize, Vec<String>)> = BTreeMap::new();
    for s in trace.spans.iter().filter(|s| s.name == "retry") {
        let Some(start) = s.sim_start_ms else {
            continue;
        };
        let entry = buckets.entry(start / RETRY_WINDOW_MS).or_default();
        entry.0 += 1;
        if entry.1.len() < 3 {
            let host = label_of(s);
            if !host.is_empty() && !entry.1.contains(&host) {
                entry.1.push(host);
            }
        }
    }
    let mut retry_clusters: Vec<RetryCluster> = buckets
        .into_iter()
        .map(|(window, (retries, hosts))| RetryCluster {
            window_start_ms: window * RETRY_WINDOW_MS,
            retries,
            hosts,
        })
        .collect();
    retry_clusters.sort_by_key(|c| (std::cmp::Reverse(c.retries), c.window_start_ms));
    retry_clusters.truncate(RETRY_CLUSTERS);

    // Slowest visits with their dominant child span.
    let mut visits: Vec<&SpanRecord> = trace.spans.iter().filter(|s| s.name == "visit").collect();
    visits.sort_by_key(|s| (std::cmp::Reverse(s.sim_duration_ms().unwrap_or(0)), s.id));
    let slowest_visits = visits
        .into_iter()
        .take(top_n)
        .map(|v| {
            let dominant = children
                .get(&v.id)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|&i| &trace.spans[i])
                .max_by_key(|c| (c.sim_duration_ms().unwrap_or(0), std::cmp::Reverse(c.id)));
            SlowVisit {
                domain: label_of(v),
                rank: u64_field(v, "rank"),
                duration_ms: v.sim_duration_ms().unwrap_or(0),
                dominant: dominant.map(|d| d.name.clone()).unwrap_or_default(),
                dominant_ms: dominant.and_then(|d| d.sim_duration_ms()).unwrap_or(0),
            }
        })
        .collect();

    Profile {
        phases,
        critical_path,
        workers,
        retry_clusters,
        slowest_visits,
    }
}

/// Allocation attributed to one top-level phase span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemPhase {
    /// Phase span name (`crawl`, `attestation-probe`, …).
    pub name: String,
    /// Bytes allocated process-wide while the phase ran.
    pub total_bytes: u64,
    /// `total_bytes` minus what the phase's direct children attributed
    /// to themselves (coordination overhead, channels, result
    /// collection).
    pub self_bytes: u64,
    /// Allocation calls inside the phase.
    pub alloc_count: u64,
    /// Peak live-heap growth above the phase's starting level.
    pub peak_bytes: u64,
}

/// One of the top allocating spans (visit, probe, page-load, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemSpan {
    /// Span ID in the sealed trace.
    pub id: u64,
    /// Span name.
    pub name: String,
    /// Best identifying field (domain, host, phase).
    pub label: String,
    /// Bytes the span allocated net of its attributed children.
    pub self_bytes: u64,
    /// Bytes the span allocated including children.
    pub total_bytes: u64,
    /// Allocation calls (including children).
    pub alloc_count: u64,
}

/// Allocation attributed to retries inside one simulated-minute window
/// — the memory face of a retry storm (buffers rebuilt per attempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRetryCluster {
    /// Window start on the simulated clock (ms).
    pub window_start_ms: u64,
    /// Retry attempts inside the window.
    pub retries: usize,
    /// Bytes allocated by the visits/probes doing those retries
    /// (each retrying span counted once per window).
    pub alloc_bytes: u64,
    /// Up to three sample hosts seen retrying.
    pub hosts: Vec<String>,
}

/// The memory-attribution analyzer output ([`mem_profile`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemProfile {
    /// Per-phase allocation, in sealed span order.
    pub phases: Vec<MemPhase>,
    /// Top-K spans by self-allocated bytes (phases excluded).
    pub top_spans: Vec<MemSpan>,
    /// Retry windows ordered by attributed bytes, heaviest first.
    pub retry_clusters: Vec<MemRetryCluster>,
}

impl MemProfile {
    /// True when the trace carried no allocation attribution at all
    /// (campaign ran without `--alloc-stats`, or the trace was
    /// stripped).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.top_spans.is_empty()
    }

    /// Plain-text report (the `topics-lab memprofile` body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("== Per-phase allocation ==\n");
        out.push_str(&format!(
            "{:<20} {:>14} {:>14} {:>12} {:>14}\n",
            "phase", "total", "self", "allocs", "peak"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<20} {:>14} {:>14} {:>12} {:>14}\n",
                p.name,
                fmt_bytes(p.total_bytes),
                fmt_bytes(p.self_bytes),
                p.alloc_count,
                fmt_bytes(p.peak_bytes),
            ));
        }
        out.push('\n');
        out.push_str("== Top allocating spans ==\n");
        for (i, s) in self.top_spans.iter().enumerate() {
            out.push_str(&format!(
                "{:>3}. {:<12} {:<28} self {:>12}  total {:>12}  allocs {}\n",
                i + 1,
                s.name,
                s.label,
                fmt_bytes(s.self_bytes),
                fmt_bytes(s.total_bytes),
                s.alloc_count,
            ));
        }
        out.push('\n');
        out.push_str("== Retry-storm allocation ==\n");
        if self.retry_clusters.is_empty() {
            out.push_str("(no retries in trace)\n");
        }
        for c in &self.retry_clusters {
            out.push_str(&format!(
                "window @{:>8} ms: {:>4} retries, {:>12} allocated by retrying spans (e.g. {})\n",
                c.window_start_ms,
                c.retries,
                fmt_bytes(c.alloc_bytes),
                c.hosts.join(", "),
            ));
        }
        out
    }
}

/// Human-readable byte count (binary units, one decimal).
pub fn fmt_bytes(b: u64) -> String {
    const UNITS: &[&str] = &["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Analyze allocation attribution in a sealed trace: per-phase
/// total/self bytes, the `top_k` spans by self-allocated bytes, and
/// retry-storm allocation clusters. Spans without `alloc_bytes` fields
/// (instrumentation off) contribute nothing; [`MemProfile::is_empty`]
/// reports whether any attribution was found.
pub fn mem_profile(trace: &Trace, top_k: usize) -> MemProfile {
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        index_of.insert(s.id, i);
        if let Some(p) = s.parent {
            children.entry(p).or_default().push(i);
        }
    }
    let alloc_of = |s: &SpanRecord| u64_field(s, "alloc_bytes");
    // Self bytes of any attributed span: its own delta minus what its
    // direct children attributed to themselves. Children's thread-local
    // deltas nest inside the parent's scope, so the subtraction cannot
    // go negative on a well-formed trace; saturate anyway.
    let self_bytes_of = |s: &SpanRecord| {
        let kid_sum: u64 = children
            .get(&s.id)
            .map(Vec::as_slice)
            .unwrap_or(&[])
            .iter()
            .map(|&ci| alloc_of(&trace.spans[ci]))
            .sum();
        alloc_of(s).saturating_sub(kid_sum)
    };

    // Per-phase rows: direct children of the campaign root that carry
    // allocation attribution.
    let mut phases = Vec::new();
    for &pi in children.get(&1).map(Vec::as_slice).unwrap_or(&[]) {
        let p = &trace.spans[pi];
        if p.op || p.field("alloc_bytes").is_none() {
            continue;
        }
        phases.push(MemPhase {
            name: p.name.clone(),
            total_bytes: alloc_of(p),
            self_bytes: self_bytes_of(p),
            alloc_count: u64_field(p, "alloc_count"),
            peak_bytes: u64_field(p, "peak_bytes"),
        });
    }

    // Top-K non-phase spans by self bytes.
    let mut ranked: Vec<MemSpan> = trace
        .spans
        .iter()
        .filter(|s| s.parent != Some(1) && s.field("alloc_bytes").is_some())
        .map(|s| MemSpan {
            id: s.id,
            name: s.name.clone(),
            label: label_of(s),
            self_bytes: self_bytes_of(s),
            total_bytes: alloc_of(s),
            alloc_count: u64_field(s, "alloc_count"),
        })
        .collect();
    ranked.sort_by_key(|m| (std::cmp::Reverse(m.self_bytes), m.id));
    ranked.truncate(top_k);

    // Retry storms, memory edition: for each retry leaf, climb to the
    // nearest ancestor carrying allocation attribution (the visit or
    // probe that paid for the retries) and charge its bytes to the
    // retry's window — once per (window, span).
    let mut buckets: BTreeMap<u64, (usize, u64, Vec<u64>, Vec<String>)> = BTreeMap::new();
    for s in trace.spans.iter().filter(|s| s.name == "retry") {
        let Some(start) = s.sim_start_ms else {
            continue;
        };
        let entry = buckets.entry(start / RETRY_WINDOW_MS).or_default();
        entry.0 += 1;
        let mut cursor = s.parent;
        while let Some(pid) = cursor {
            let Some(&pi) = index_of.get(&pid) else { break };
            let p = &trace.spans[pi];
            if p.field("alloc_bytes").is_some() {
                if !entry.2.contains(&p.id) {
                    entry.2.push(p.id);
                    entry.1 += alloc_of(p);
                }
                break;
            }
            cursor = p.parent;
        }
        if entry.3.len() < 3 {
            let host = label_of(s);
            if !host.is_empty() && !entry.3.contains(&host) {
                entry.3.push(host);
            }
        }
    }
    let mut retry_clusters: Vec<MemRetryCluster> = buckets
        .into_iter()
        .map(
            |(window, (retries, alloc_bytes, _, hosts))| MemRetryCluster {
                window_start_ms: window * RETRY_WINDOW_MS,
                retries,
                alloc_bytes,
                hosts,
            },
        )
        .collect();
    retry_clusters.sort_by_key(|c| (std::cmp::Reverse(c.alloc_bytes), c.window_start_ms));
    retry_clusters.truncate(RETRY_CLUSTERS);

    MemProfile {
        phases,
        top_spans: ranked,
        retry_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn traced_campaign() -> Trace {
        let tracer = Tracer::enabled();
        let crawl = tracer.phase("crawl");
        for (i, (start, end)) in [(0u64, 300u64), (0, 900), (100, 500)].iter().enumerate() {
            let mut b = tracer.visit_builder().unwrap();
            let v = b.open("visit", Some(*start));
            b.field(v, "domain", format!("site{i}.example"));
            b.field(v, "rank", i + 1);
            let f = b.open("fetch", Some(*start));
            b.field(f, "host", format!("site{i}.example"));
            b.close(f, Some(start + (end - start) / 2));
            if i == 1 {
                let r = b.leaf("retry", Some(start + 10), Some(start + 200));
                b.field(r, "host", "site1.example");
                b.field(r, "attempt", 1usize);
            }
            b.close(v, Some(*end));
            crawl.attach(b);
        }
        let mut w = tracer.visit_builder().unwrap();
        let ws = w.open_op("worker", None);
        w.field(ws, "phase", "crawl");
        w.field(ws, "worker", 0usize);
        w.field(ws, "busy_us", 750u64);
        w.field(ws, "span_us", 1000u64);
        w.field(ws, "items", 3usize);
        w.close(ws, None);
        crawl.attach(w);
        crawl.end(Some((0, 900)));
        tracer.finish()
    }

    #[test]
    fn clean_trace_passes_integrity() {
        let t = traced_campaign();
        let report = integrity(&t);
        assert!(report.is_clean(), "violations: {:?}", report.violations());
    }

    #[test]
    fn orphan_duplicate_and_negative_spans_are_detected() {
        let mut t = traced_campaign();
        // Orphan: point a span at a parent that does not exist.
        t.spans[2].parent = Some(9999);
        // Duplicate: reuse an ID.
        let dup = t.spans[3].clone();
        t.spans.push(dup);
        // Negative: invert a simulated duration.
        let last = t.spans.len() - 1;
        t.spans[last].sim_start_ms = Some(100);
        t.spans[last].sim_end_ms = Some(50);
        let report = integrity(&t);
        assert!(!report.is_clean());
        assert!(report.orphans.contains(&t.spans[2].id));
        assert!(!report.duplicates.is_empty());
        assert!(!report.negative.is_empty());
        assert_eq!(report.violations().len(), 3);
    }

    #[test]
    fn critical_path_follows_latest_finisher() {
        let t = traced_campaign();
        let p = profile(&t, 10);
        assert_eq!(p.critical_path[0].name, "crawl");
        assert_eq!(p.critical_path[1].name, "visit");
        assert_eq!(p.critical_path[1].label, "site1.example");
        assert_eq!(p.critical_path[1].end_ms, 900);
    }

    #[test]
    fn phase_self_time_subtracts_child_cover() {
        let t = traced_campaign();
        let p = profile(&t, 10);
        let crawl = p.phases.iter().find(|s| s.name == "crawl").unwrap();
        assert!(crawl.simulated);
        assert_eq!(crawl.total_ms, 900);
        // Visits cover [0,900] completely.
        assert_eq!(crawl.self_ms, 0);
    }

    #[test]
    fn worker_idle_fraction_and_retry_clusters() {
        let t = traced_campaign();
        let p = profile(&t, 10);
        let idle = p.idle_fractions();
        assert_eq!(idle.len(), 1);
        assert_eq!(idle[0].0, "crawl");
        assert!((idle[0].1 - 0.25).abs() < 1e-9);
        assert_eq!(p.retry_clusters.len(), 1);
        assert_eq!(p.retry_clusters[0].retries, 1);
        assert_eq!(p.retry_clusters[0].hosts, vec!["site1.example".to_owned()]);
    }

    fn traced_campaign_with_alloc() -> Trace {
        let tracer = Tracer::enabled();
        let crawl = tracer.phase("crawl");
        for (i, bytes) in [4_096u64, 65_536, 16_384].iter().enumerate() {
            let mut b = tracer.visit_builder().unwrap();
            let v = b.open("visit", Some(i as u64 * 100));
            b.field(v, "domain", format!("site{i}.example"));
            b.field(v, "alloc_bytes", *bytes);
            b.field(v, "alloc_count", 10u64 + i as u64);
            b.field(v, "peak_bytes", bytes / 2);
            let pl = b.open("page-load", Some(i as u64 * 100));
            b.field(pl, "alloc_bytes", bytes / 4);
            b.close(pl, Some(i as u64 * 100 + 40));
            if i == 1 {
                let r = b.leaf("retry", Some(110), Some(150));
                b.field(r, "host", "site1.example");
            }
            b.close(v, Some(i as u64 * 100 + 80));
            crawl.attach(b);
        }
        crawl.field("alloc_bytes", 100_000u64);
        crawl.field("alloc_count", 40u64);
        crawl.field("peak_bytes", 50_000u64);
        crawl.end(Some((0, 280)));
        tracer.finish()
    }

    #[test]
    fn mem_profile_attributes_phases_spans_and_retries() {
        let t = traced_campaign_with_alloc();
        let m = mem_profile(&t, 2);
        assert!(!m.is_empty());

        assert_eq!(m.phases.len(), 1);
        let crawl = &m.phases[0];
        assert_eq!(crawl.name, "crawl");
        assert_eq!(crawl.total_bytes, 100_000);
        // Self = 100000 − (4096 + 65536 + 16384).
        assert_eq!(crawl.self_bytes, 100_000 - 86_016);
        assert_eq!(crawl.peak_bytes, 50_000);

        // Visit 1 allocated the most net of its page-load child.
        assert_eq!(m.top_spans.len(), 2);
        assert_eq!(m.top_spans[0].name, "visit");
        assert_eq!(m.top_spans[0].label, "site1.example");
        assert_eq!(m.top_spans[0].total_bytes, 65_536);
        assert_eq!(m.top_spans[0].self_bytes, 65_536 - 65_536 / 4);

        // The retry window charges the retrying visit's bytes once.
        assert_eq!(m.retry_clusters.len(), 1);
        assert_eq!(m.retry_clusters[0].retries, 1);
        assert_eq!(m.retry_clusters[0].alloc_bytes, 65_536);
        assert_eq!(m.retry_clusters[0].hosts, vec!["site1.example".to_owned()]);

        let text = m.render();
        for needle in [
            "Per-phase allocation",
            "Top allocating spans",
            "Retry-storm allocation",
            "crawl",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn mem_profile_is_empty_without_attribution() {
        let t = traced_campaign();
        let m = mem_profile(&t, 5);
        assert!(m.is_empty());
        assert!(m.render().contains("no retries in trace") || !m.render().is_empty());
    }

    #[test]
    fn fmt_bytes_uses_binary_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn slowest_visits_rank_by_sim_duration_with_dominant_child() {
        let t = traced_campaign();
        let p = profile(&t, 2);
        assert_eq!(p.slowest_visits.len(), 2);
        assert_eq!(p.slowest_visits[0].domain, "site1.example");
        assert_eq!(p.slowest_visits[0].duration_ms, 900);
        assert_eq!(p.slowest_visits[0].dominant, "fetch");
        assert_eq!(p.slowest_visits[0].dominant_ms, 450);
        assert_eq!(p.slowest_visits[1].domain, "site2.example");
    }
}
