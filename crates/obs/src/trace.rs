//! Hierarchical trace spans: causal, per-visit span trees for the
//! campaign pipeline.
//!
//! The event log ([`crate::events`]) answers *what happened*; traces
//! answer *where the time went*. A [`Tracer`] owns one span tree per
//! campaign: `campaign → phase → visit → {fetch, retry, consent-click,
//! topics-call, probe}`. Every span carries both clocks — the simulated
//! campaign clock (`sim_start_ms`/`sim_end_ms`, deterministic) and wall
//! time in microseconds since the tracer's epoch (operational).
//!
//! ## Lock discipline and determinism
//!
//! Crawl and probe workers never touch the shared tracer on the hot
//! path. Each unit of work (one visit, one probe) records into a
//! private [`TraceBuilder`] — a plain `Vec` with local parent indices —
//! and the coordinating thread *attaches* finished builders under a
//! phase span in a deterministic order (visits by rank, probes by slot
//! index). Span IDs are assigned once, at [`Tracer::finish`], from that
//! attach order, so traces from the same seed are byte-identical no
//! matter how many worker threads ran.
//!
//! Spans whose shape depends on scheduling (per-worker utilization
//! spans) are flagged *operational* ([`TraceBuilder::open_op`]); the
//! seal sorts them after every deterministic span and
//! [`Trace::stripped`] drops them together with the wall-clock fields,
//! yielding the seed-reproducible view the determinism suite compares.

use crate::events::FieldValue;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Sentinel index used by span handles on a disabled tracer.
const DISABLED: usize = usize::MAX;

/// Span field keys carrying allocation-accounting data (attached when
/// the counting allocator is enabled). Like wall clocks, allocation
/// counts depend on thread scheduling and allocator internals, so
/// [`Trace::stripped`] removes these fields to keep the deterministic
/// view byte-identical whether or not instrumentation was on.
pub const ALLOC_FIELD_KEYS: &[&str] =
    &["alloc_bytes", "alloc_count", "dealloc_bytes", "peak_bytes"];

/// One span under construction (builder-local or tracer-global; the
/// meaning of `parent` differs — see the owning container).
#[derive(Debug, Clone)]
struct RawSpan {
    /// Index of the parent span in the owning container; `None` for a
    /// builder's root span (re-parented on attach) or a tracer-level
    /// phase span (re-parented under the synthetic campaign root).
    parent: Option<usize>,
    name: String,
    /// Operational spans depend on thread scheduling and are excluded
    /// from the deterministic view.
    op: bool,
    sim_start_ms: Option<u64>,
    sim_end_ms: Option<u64>,
    wall_start_us: u64,
    wall_end_us: u64,
    fields: Vec<(String, FieldValue)>,
}

impl RawSpan {
    fn new(parent: Option<usize>, name: &str, op: bool, sim_ms: Option<u64>, wall_us: u64) -> Self {
        RawSpan {
            parent,
            name: name.to_owned(),
            op,
            sim_start_ms: sim_ms,
            sim_end_ms: None,
            wall_start_us: wall_us,
            wall_end_us: 0,
            fields: Vec::new(),
        }
    }
}

/// A private, lock-free span subtree recorded by one unit of work (one
/// visit, one attestation probe, one worker thread). Obtained from
/// [`Tracer::visit_builder`] and handed back via [`TracerSpan::attach`].
#[derive(Debug)]
pub struct TraceBuilder {
    epoch: Instant,
    spans: Vec<RawSpan>,
    /// Stack of open span indices; new spans become children of the
    /// top of the stack.
    stack: Vec<usize>,
}

impl TraceBuilder {
    fn new(epoch: Instant) -> TraceBuilder {
        TraceBuilder {
            epoch,
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn wall_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().max(1) as u64
    }

    /// Open a span as a child of the innermost open span (or as the
    /// builder's root). Returns the index to pass to [`close`].
    ///
    /// [`close`]: TraceBuilder::close
    pub fn open(&mut self, name: &str, sim_ms: Option<u64>) -> usize {
        self.push(name, false, sim_ms)
    }

    /// Open an *operational* span — excluded from the deterministic
    /// stripped view (used for scheduling-dependent data such as
    /// per-worker utilization).
    pub fn open_op(&mut self, name: &str, sim_ms: Option<u64>) -> usize {
        self.push(name, true, sim_ms)
    }

    fn push(&mut self, name: &str, op: bool, sim_ms: Option<u64>) -> usize {
        let idx = self.spans.len();
        let wall = self.wall_us();
        self.spans.push(RawSpan::new(
            self.stack.last().copied(),
            name,
            op,
            sim_ms,
            wall,
        ));
        self.stack.push(idx);
        idx
    }

    /// Record a closed point-in-time or already-finished span (e.g. a
    /// `topics-call` or a single `retry` attempt).
    pub fn leaf(
        &mut self,
        name: &str,
        sim_start_ms: Option<u64>,
        sim_end_ms: Option<u64>,
    ) -> usize {
        let idx = self.push(name, false, sim_start_ms);
        self.close(idx, sim_end_ms.or(sim_start_ms));
        idx
    }

    /// Attach a field to an open or closed span.
    pub fn field(&mut self, idx: usize, key: &str, value: impl Into<FieldValue>) {
        if let Some(span) = self.spans.get_mut(idx) {
            span.fields.push((key.to_owned(), value.into()));
        }
    }

    /// Close a span, recording the simulated end time (if any) and the
    /// wall-clock end. Also closes any nested spans left open.
    pub fn close(&mut self, idx: usize, sim_end_ms: Option<u64>) {
        let wall = self.wall_us();
        while let Some(top) = self.stack.pop() {
            let span = &mut self.spans[top];
            if span.wall_end_us == 0 {
                span.wall_end_us = wall;
            }
            if top == idx {
                span.sim_end_ms = sim_end_ms.or(span.sim_start_ms);
                return;
            }
            span.sim_end_ms = span.sim_end_ms.or(span.sim_start_ms);
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Latest simulated end time across all spans (used by the campaign
    /// to stamp deterministic phase bounds).
    pub fn max_sim_end(&self) -> Option<u64> {
        self.spans
            .iter()
            .filter_map(|s| s.sim_end_ms.or(s.sim_start_ms))
            .max()
    }

    /// Close any spans still open (defensive; called before attach).
    fn seal_open(&mut self) {
        let wall = self.wall_us();
        while let Some(top) = self.stack.pop() {
            let span = &mut self.spans[top];
            if span.wall_end_us == 0 {
                span.wall_end_us = wall;
            }
            span.sim_end_ms = span.sim_end_ms.or(span.sim_start_ms);
        }
    }
}

/// The campaign-wide trace collector. Disabled by default (all methods
/// are no-ops and [`Tracer::visit_builder`] returns `None`, so the
/// traced code paths cost one branch); enable with [`Tracer::enabled`].
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    epoch: Instant,
    inner: Mutex<Vec<RawSpan>>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing (the default inside [`crate::Obs`]).
    pub fn disabled() -> Tracer {
        Tracer {
            on: false,
            epoch: Instant::now(),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// A live tracer.
    pub fn enabled() -> Tracer {
        Tracer {
            on: true,
            epoch: Instant::now(),
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// A private builder for one unit of work, or `None` when tracing
    /// is off (lets hot paths skip all recording).
    pub fn visit_builder(&self) -> Option<TraceBuilder> {
        self.on.then(|| TraceBuilder::new(self.epoch))
    }

    /// Open a top-level phase span (a direct child of the synthetic
    /// `campaign` root). No-op handle when disabled.
    pub fn phase(&self, name: &str) -> TracerSpan<'_> {
        if !self.on {
            return TracerSpan {
                tracer: self,
                idx: DISABLED,
            };
        }
        let wall = self.epoch.elapsed().as_micros().max(1) as u64;
        let mut inner = self.inner.lock();
        let idx = inner.len();
        inner.push(RawSpan::new(None, name, false, None, wall));
        TracerSpan { tracer: self, idx }
    }

    /// Number of spans recorded so far (excluding the synthetic root).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Seal the trace: assign stable 1-based span IDs (the synthetic
    /// `campaign` root is ID 1), re-parent phase spans under the root,
    /// order deterministic spans before operational ones, and compute
    /// the root's simulated bounds from its children.
    pub fn finish(&self) -> Trace {
        let mut raw: Vec<RawSpan> = std::mem::take(&mut *self.inner.lock());
        let finished_wall = self.epoch.elapsed().as_micros().max(1) as u64;
        for span in &mut raw {
            if span.wall_end_us == 0 {
                span.wall_end_us = finished_wall;
            }
            span.sim_end_ms = span.sim_end_ms.or(span.sim_start_ms);
        }
        // Children are always appended after their parents, so one
        // forward pass propagates the operational flag down subtrees.
        for i in 0..raw.len() {
            if let Some(p) = raw[i].parent {
                if raw[p].op {
                    raw[i].op = true;
                }
            }
        }
        // Stable partition: deterministic spans keep their attach order
        // and take IDs 2..; operational spans follow.
        let mut order: Vec<usize> = (0..raw.len()).collect();
        order.sort_by_key(|&i| (raw[i].op, i));
        let mut new_id = vec![0u64; raw.len()];
        for (pos, &i) in order.iter().enumerate() {
            new_id[i] = pos as u64 + 2;
        }
        let sim_start = raw
            .iter()
            .filter(|s| !s.op)
            .filter_map(|s| s.sim_start_ms)
            .min();
        let sim_end = raw
            .iter()
            .filter(|s| !s.op)
            .filter_map(|s| s.sim_end_ms)
            .max();
        let mut spans = Vec::with_capacity(raw.len() + 1);
        spans.push(SpanRecord {
            id: 1,
            parent: None,
            name: "campaign".to_owned(),
            op: false,
            sim_start_ms: sim_start,
            sim_end_ms: sim_end,
            wall_start_us: 1,
            wall_end_us: finished_wall,
            fields: Vec::new(),
        });
        for &i in &order {
            let s = &raw[i];
            spans.push(SpanRecord {
                id: new_id[i],
                parent: Some(s.parent.map(|p| new_id[p]).unwrap_or(1)),
                name: s.name.clone(),
                op: s.op,
                sim_start_ms: s.sim_start_ms,
                sim_end_ms: s.sim_end_ms,
                wall_start_us: s.wall_start_us,
                wall_end_us: s.wall_end_us,
                fields: s.fields.clone(),
            });
        }
        Trace { spans }
    }
}

/// Handle to a tracer-level phase span. Close it explicitly with
/// [`TracerSpan::end`] to stamp deterministic simulated bounds, or let
/// it drop (wall-clock close only).
#[derive(Debug)]
pub struct TracerSpan<'a> {
    tracer: &'a Tracer,
    idx: usize,
}

impl TracerSpan<'_> {
    /// Attach a field to the phase span.
    pub fn field(&self, key: &str, value: impl Into<FieldValue>) {
        if self.idx == DISABLED {
            return;
        }
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.get_mut(self.idx) {
            span.fields.push((key.to_owned(), value.into()));
        }
    }

    /// Stamp the span's simulated start time.
    pub fn sim_start(&self, sim_ms: u64) {
        if self.idx == DISABLED {
            return;
        }
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.get_mut(self.idx) {
            span.sim_start_ms = Some(sim_ms);
        }
    }

    /// Attach a finished builder's subtree under this span. Call in a
    /// deterministic order (rank order for visits, slot order for
    /// probes) — span IDs are assigned from attach order at seal time.
    pub fn attach(&self, mut builder: TraceBuilder) {
        if self.idx == DISABLED {
            return;
        }
        builder.seal_open();
        let mut inner = self.tracer.inner.lock();
        let offset = inner.len();
        for mut span in builder.spans {
            span.parent = Some(span.parent.map(|p| p + offset).unwrap_or(self.idx));
            inner.push(span);
        }
    }

    /// Close the span, stamping the simulated end (and start, if given).
    pub fn end(self, sim_bounds: Option<(u64, u64)>) {
        if self.idx == DISABLED {
            return;
        }
        let wall = self.tracer.epoch.elapsed().as_micros().max(1) as u64;
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.get_mut(self.idx) {
            if let Some((start, end)) = sim_bounds {
                span.sim_start_ms = Some(start);
                span.sim_end_ms = Some(end);
            }
            span.wall_end_us = wall;
        }
    }
}

impl Drop for TracerSpan<'_> {
    fn drop(&mut self) {
        if self.idx == DISABLED {
            return;
        }
        let wall = self.tracer.epoch.elapsed().as_micros().max(1) as u64;
        let mut inner = self.tracer.inner.lock();
        if let Some(span) = inner.get_mut(self.idx) {
            if span.wall_end_us == 0 {
                span.wall_end_us = wall;
            }
        }
    }
}

fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}
fn bool_is_false(v: &bool) -> bool {
    !*v
}

/// One sealed span: stable ID, parent link, both clocks, fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Stable 1-based span ID (1 is always the `campaign` root).
    pub id: u64,
    /// Parent span ID; `None` only for the root.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub parent: Option<u64>,
    /// Span name (`crawl`, `visit`, `fetch`, `retry`, `topics-call`, …).
    pub name: String,
    /// Operational (scheduling-dependent) spans are dropped from the
    /// deterministic stripped view.
    #[serde(skip_serializing_if = "bool_is_false", default)]
    pub op: bool,
    /// Simulated-clock start, ms since campaign epoch.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub sim_start_ms: Option<u64>,
    /// Simulated-clock end.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub sim_end_ms: Option<u64>,
    /// Wall-clock start, µs since the tracer epoch (0 when stripped).
    #[serde(skip_serializing_if = "u64_is_zero", default)]
    pub wall_start_us: u64,
    /// Wall-clock end, µs since the tracer epoch (0 when stripped).
    #[serde(skip_serializing_if = "u64_is_zero", default)]
    pub wall_end_us: u64,
    /// Ordered key/value payload (domain, CP, retry attempt, …).
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Simulated duration in ms, when both bounds are present and
    /// ordered.
    pub fn sim_duration_ms(&self) -> Option<u64> {
        match (self.sim_start_ms, self.sim_end_ms) {
            (Some(s), Some(e)) if e >= s => Some(e - s),
            _ => None,
        }
    }

    /// Wall-clock duration in µs (0 when stripped or inverted).
    pub fn wall_duration_us(&self) -> u64 {
        self.wall_end_us.saturating_sub(self.wall_start_us)
    }
}

/// A sealed, immutable span tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Spans in sealed order: root first, then deterministic spans in
    /// attach order, then operational spans.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Look up a span by ID.
    pub fn span(&self, id: u64) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Number of spans with the given name.
    pub fn count_named(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// The deterministic view: operational spans dropped, wall-clock
    /// fields zeroed, allocation-accounting fields
    /// ([`ALLOC_FIELD_KEYS`]) removed. Two same-seed runs produce
    /// byte-identical [`Trace::to_jsonl`] output of this view
    /// regardless of thread counts or whether the counting allocator
    /// was enabled.
    #[must_use]
    pub fn stripped(&self) -> Trace {
        Trace {
            spans: self
                .spans
                .iter()
                .filter(|s| !s.op)
                .map(|s| SpanRecord {
                    wall_start_us: 0,
                    wall_end_us: 0,
                    fields: s
                        .fields
                        .iter()
                        .filter(|(k, _)| !ALLOC_FIELD_KEYS.contains(&k.as_str()))
                        .cloned()
                        .collect(),
                    ..s.clone()
                })
                .collect(),
        }
    }

    /// JSONL export: one span object per line, in sealed order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            out.push_str(&serde_json::to_string(span).expect("span serialises"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL export back into a trace (the `doctor` loader).
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut spans = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let span: SpanRecord = serde_json::from_str(line)
                .map_err(|e| format!("trace line {}: {e}", lineno + 1))?;
            spans.push(span);
        }
        Ok(Trace { spans })
    }

    /// Chrome trace-event JSON (the `{"traceEvents": […]}` format),
    /// loadable in Perfetto / `chrome://tracing`. Spans with simulated
    /// bounds are laid out on the simulated clock (µs = sim ms × 1000);
    /// purely operational spans use wall time. Concurrent sibling
    /// subtrees are fanned out over synthetic track IDs so overlapping
    /// visits render side by side.
    pub fn to_chrome_json(&self) -> String {
        // Greedy lane assignment: direct children of phase spans that
        // overlap in simulated time go to separate tracks; descendants
        // inherit their ancestor's track.
        let mut tid = vec![0u64; self.spans.len()];
        let index_of: std::collections::BTreeMap<u64, usize> = self
            .spans
            .iter()
            .enumerate()
            .map(|(i, s)| (s.id, i))
            .collect();
        let phase_ids: std::collections::BTreeSet<u64> = self
            .spans
            .iter()
            .filter(|s| s.parent == Some(1))
            .map(|s| s.id)
            .collect();
        let mut lanes: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
        for (i, s) in self.spans.iter().enumerate() {
            let Some(parent) = s.parent else { continue };
            if phase_ids.contains(&parent) {
                let start = s.sim_start_ms.unwrap_or(0);
                let end = s.sim_end_ms.unwrap_or(start).max(start);
                let ends = lanes.entry(parent).or_default();
                let lane = match ends.iter().position(|&e| e <= start) {
                    Some(l) => {
                        ends[l] = end.max(start + 1);
                        l
                    }
                    None => {
                        ends.push(end.max(start + 1));
                        ends.len() - 1
                    }
                };
                tid[i] = lane as u64 + 1;
            } else if let Some(&pi) = index_of.get(&parent) {
                tid[i] = tid[pi];
            }
        }
        let mut out = String::from("{\"traceEvents\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (ts, dur) = match (s.sim_start_ms, s.sim_end_ms) {
                (Some(start), end) => {
                    let e = end.unwrap_or(start).max(start);
                    (start * 1000, ((e - start) * 1000).max(1))
                }
                _ => (s.wall_start_us, s.wall_duration_us().max(1)),
            };
            let track = if s.op { 900 + tid[i] } else { tid[i] };
            out.push_str(&format!(
                "{{\"name\":{},\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":1,\"tid\":{track},\"args\":{{\"id\":{},\"parent\":{}",
                json_escape(&s.name),
                s.id,
                s.parent.unwrap_or(0),
            ));
            for (k, v) in &s.fields {
                out.push(',');
                out.push_str(&json_escape(k));
                out.push(':');
                match v {
                    FieldValue::Str(t) => out.push_str(&json_escape(t)),
                    other => out.push_str(&other.to_string()),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// How one phase's child subtrees combine across shard traces in
/// [`merge_stripped`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeRule {
    /// Concatenate subtrees in input order — for work already striped
    /// disjointly across shards (visits by rank). Numeric phase fields
    /// sum.
    Concat,
    /// Subtrees may be duplicated across inputs (probes: several
    /// shards encounter the same domain): dedup by the string field
    /// `key` on each subtree's root, verify duplicates are structurally
    /// identical, sort by the key — byte order, matching the sealed
    /// slot order of the unsharded run — and set the phase field
    /// `count_field` to the deduplicated count. Other numeric phase
    /// fields sum.
    DedupByField {
        /// Root-span string field identifying a subtree.
        key: &'static str,
        /// Phase field overwritten with the deduplicated subtree count.
        count_field: &'static str,
    },
}

/// One trace's structure, decomposed for merging: phase spans (direct
/// children of the root) and, per phase, its child subtrees as index
/// lists into the trace's span vec (subtree root first, preorder).
struct Decomposed<'a> {
    root: &'a SpanRecord,
    phases: Vec<&'a SpanRecord>,
    subtrees: Vec<Vec<Vec<usize>>>,
}

fn decompose(trace: &Trace, which: usize) -> Result<Decomposed<'_>, String> {
    let root = trace
        .spans
        .first()
        .filter(|s| s.parent.is_none())
        .ok_or_else(|| format!("trace {which}: missing root span"))?;
    if trace.spans.iter().any(|s| s.op) {
        return Err(format!(
            "trace {which}: operational spans present — merge inputs must be stripped"
        ));
    }
    let mut phases: Vec<&SpanRecord> = Vec::new();
    let mut subtrees: Vec<Vec<Vec<usize>>> = Vec::new();
    // id → (phase position, subtree position) of the subtree the span
    // belongs to; phases map to themselves with no subtree.
    let mut home: std::collections::BTreeMap<u64, (usize, Option<usize>)> = Default::default();
    for (i, s) in trace.spans.iter().enumerate().skip(1) {
        let parent = s
            .parent
            .ok_or_else(|| format!("trace {which}: span {} has no parent", s.id))?;
        if parent == root.id {
            home.insert(s.id, (phases.len(), None));
            phases.push(s);
            subtrees.push(Vec::new());
            continue;
        }
        let &(phase, slot) = home
            .get(&parent)
            .ok_or_else(|| format!("trace {which}: span {} precedes its parent", s.id))?;
        let slot = match slot {
            // Direct child of a phase: a new subtree root.
            None => {
                subtrees[phase].push(vec![i]);
                subtrees[phase].len() - 1
            }
            Some(slot) => {
                subtrees[phase][slot].push(i);
                slot
            }
        };
        home.insert(s.id, (phase, Some(slot)));
    }
    Ok(Decomposed {
        root,
        phases,
        subtrees,
    })
}

/// A subtree with ids erased: local parent position, name, simulated
/// bounds, fields — what "the same probe recorded by two shards" must
/// agree on.
fn normalize(trace: &Trace, subtree: &[usize]) -> Vec<(Option<usize>, SpanRecord)> {
    let local: std::collections::BTreeMap<u64, usize> = subtree
        .iter()
        .enumerate()
        .map(|(pos, &i)| (trace.spans[i].id, pos))
        .collect();
    subtree
        .iter()
        .map(|&i| {
            let s = &trace.spans[i];
            let mut cleaned = s.clone();
            cleaned.id = 0;
            cleaned.parent = None;
            (s.parent.and_then(|p| local.get(&p).copied()), cleaned)
        })
        .collect()
}

/// Merge the numeric fields of per-trace phase spans: the key sequence
/// must match the first trace's; `U64` values sum, everything else must
/// be equal.
fn merge_fields(phase: &str, spans: &[&SpanRecord]) -> Result<Vec<(String, FieldValue)>, String> {
    let mut merged: Vec<(String, FieldValue)> = spans[0].fields.clone();
    for s in &spans[1..] {
        if s.fields.len() != merged.len() {
            return Err(format!("phase {phase}: field sets differ across traces"));
        }
        for ((k, acc), (k2, v)) in merged.iter_mut().zip(&s.fields) {
            if k != k2 {
                return Err(format!("phase {phase}: field order differs across traces"));
            }
            match (acc, v) {
                (FieldValue::U64(a), FieldValue::U64(b)) => *a += b,
                (a, b) if *a == *b => {}
                _ => {
                    return Err(format!(
                        "phase {phase}: non-summable field {k} differs across traces"
                    ))
                }
            }
        }
    }
    Ok(merged)
}

/// Deterministically merge stripped per-shard traces into the span tree
/// the unsharded run seals: one `campaign` root, the shared phase
/// sequence, and per phase the combined child subtrees — concatenated
/// or deduplicated per the matching [`MergeRule`] — renumbered with
/// dense sealed-order IDs. Phase simulated bounds take the min start
/// and max end across inputs; the root takes the min/max across input
/// roots.
///
/// Inputs must be [`Trace::stripped`] views sharing the same root name
/// and phase-name sequence, and every phase name must have a rule.
pub fn merge_stripped(traces: &[Trace], rules: &[(&str, MergeRule)]) -> Result<Trace, String> {
    if traces.is_empty() {
        return Err("no traces to merge".to_owned());
    }
    let parts: Vec<Decomposed<'_>> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| decompose(t, i))
        .collect::<Result<_, _>>()?;
    let first = &parts[0];
    for (i, p) in parts.iter().enumerate().skip(1) {
        if p.root.name != first.root.name {
            return Err(format!("trace {i}: root name differs"));
        }
        if p.root.fields != first.root.fields {
            return Err(format!("trace {i}: root fields differ"));
        }
        let names = |d: &Decomposed<'_>| -> Vec<String> {
            d.phases.iter().map(|s| s.name.clone()).collect()
        };
        if names(p) != names(first) {
            return Err(format!("trace {i}: phase sequence differs"));
        }
    }

    let mut out: Vec<SpanRecord> = Vec::new();
    out.push(SpanRecord {
        id: 1,
        parent: None,
        name: first.root.name.clone(),
        op: false,
        sim_start_ms: parts.iter().filter_map(|p| p.root.sim_start_ms).min(),
        sim_end_ms: parts.iter().filter_map(|p| p.root.sim_end_ms).max(),
        wall_start_us: 0,
        wall_end_us: 0,
        fields: first.root.fields.clone(),
    });
    let mut next_id = 2u64;
    let emit_subtree = |out: &mut Vec<SpanRecord>,
                        next_id: &mut u64,
                        trace: &Trace,
                        subtree: &[usize],
                        phase_id: u64| {
        let mut new_ids: std::collections::BTreeMap<u64, u64> = Default::default();
        for &i in subtree {
            let s = &trace.spans[i];
            let id = *next_id;
            *next_id += 1;
            new_ids.insert(s.id, id);
            out.push(SpanRecord {
                id,
                parent: Some(
                    s.parent
                        .and_then(|p| new_ids.get(&p).copied())
                        .unwrap_or(phase_id),
                ),
                wall_start_us: 0,
                wall_end_us: 0,
                ..s.clone()
            });
        }
    };

    for (pos, phase) in first.phases.iter().enumerate() {
        let rule = rules
            .iter()
            .find(|(name, _)| *name == phase.name)
            .map(|&(_, r)| r)
            .ok_or_else(|| format!("no merge rule for phase {}", phase.name))?;
        let phase_spans: Vec<&SpanRecord> = parts.iter().map(|p| p.phases[pos]).collect();
        let mut fields = merge_fields(&phase.name, &phase_spans)?;
        let phase_id = next_id;
        next_id += 1;
        let record_at = out.len();
        out.push(SpanRecord {
            id: phase_id,
            parent: Some(1),
            name: phase.name.clone(),
            op: false,
            sim_start_ms: phase_spans.iter().filter_map(|s| s.sim_start_ms).min(),
            sim_end_ms: phase_spans.iter().filter_map(|s| s.sim_end_ms).max(),
            wall_start_us: 0,
            wall_end_us: 0,
            fields: Vec::new(),
        });
        match rule {
            MergeRule::Concat => {
                for (t, p) in parts.iter().enumerate() {
                    for subtree in &p.subtrees[pos] {
                        emit_subtree(&mut out, &mut next_id, &traces[t], subtree, phase_id);
                    }
                }
            }
            MergeRule::DedupByField { key, count_field } => {
                // key → (normalized shape, owning trace, subtree)
                type Entry<'a> = (Vec<(Option<usize>, SpanRecord)>, usize, &'a [usize]);
                let mut unique: std::collections::BTreeMap<String, Entry<'_>> = Default::default();
                for (t, p) in parts.iter().enumerate() {
                    for subtree in &p.subtrees[pos] {
                        let root = &traces[t].spans[subtree[0]];
                        let Some(FieldValue::Str(k)) = root.field(key) else {
                            return Err(format!(
                                "phase {}: subtree root {} lacks string field {key}",
                                phase.name, root.name
                            ));
                        };
                        let shape = normalize(&traces[t], subtree);
                        match unique.get(k) {
                            Some((existing, _, _)) if *existing != shape => {
                                return Err(format!(
                                    "phase {}: divergent duplicate subtrees for {key}={k}",
                                    phase.name
                                ));
                            }
                            Some(_) => {}
                            None => {
                                unique.insert(k.clone(), (shape, t, subtree));
                            }
                        }
                    }
                }
                let count = unique.len() as u64;
                match fields.iter_mut().find(|(k, _)| k == count_field) {
                    Some((_, v)) => *v = FieldValue::U64(count),
                    None => {
                        return Err(format!(
                            "phase {}: missing count field {count_field}",
                            phase.name
                        ))
                    }
                }
                for (_, (_, t, subtree)) in unique {
                    emit_subtree(&mut out, &mut next_id, &traces[t], subtree, phase_id);
                }
            }
        }
        std::mem::swap(&mut out[record_at].fields, &mut fields);
    }
    Ok(Trace { spans: out })
}

/// Minimal JSON string escaping for the Chrome exporter.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let tracer = Tracer::enabled();
        let phase = tracer.phase("crawl");
        let mut b = tracer.visit_builder().unwrap();
        let visit = b.open("visit", Some(100));
        b.field(visit, "domain", "site0.example");
        let fetch = b.open("fetch", Some(100));
        b.field(fetch, "host", "site0.example");
        b.close(fetch, Some(140));
        b.leaf("topics-call", Some(150), None);
        b.close(visit, Some(200));
        phase.attach(b);
        let mut w = tracer.visit_builder().unwrap();
        let ws = w.open_op("worker", None);
        w.field(ws, "worker", 0usize);
        w.close(ws, None);
        phase.attach(w);
        phase.end(Some((100, 200)));
        tracer.finish()
    }

    #[test]
    fn seal_assigns_stable_ids_and_parent_links() {
        let t = sample_trace();
        assert_eq!(t.spans[0].name, "campaign");
        assert_eq!(t.spans[0].id, 1);
        assert_eq!(t.spans[0].sim_start_ms, Some(100));
        assert_eq!(t.spans[0].sim_end_ms, Some(200));
        let phase = t.spans.iter().find(|s| s.name == "crawl").unwrap();
        assert_eq!(phase.parent, Some(1));
        let visit = t.spans.iter().find(|s| s.name == "visit").unwrap();
        assert_eq!(visit.parent, Some(phase.id));
        let fetch = t.spans.iter().find(|s| s.name == "fetch").unwrap();
        assert_eq!(fetch.parent, Some(visit.id));
        assert_eq!(fetch.sim_duration_ms(), Some(40));
        // IDs are dense and unique.
        let mut ids: Vec<u64> = t.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), t.spans.len());
        assert_eq!(*ids.last().unwrap(), t.spans.len() as u64);
    }

    #[test]
    fn operational_spans_sort_last_and_strip_out() {
        let t = sample_trace();
        let worker = t.spans.iter().find(|s| s.name == "worker").unwrap();
        assert!(worker.op);
        assert_eq!(
            worker.id,
            t.spans.len() as u64,
            "op spans take the last IDs"
        );
        let stripped = t.stripped();
        assert!(stripped.spans.iter().all(|s| !s.op));
        assert!(stripped
            .spans
            .iter()
            .all(|s| s.wall_start_us == 0 && s.wall_end_us == 0));
        assert_eq!(stripped.count_named("visit"), 1);
        assert_eq!(stripped.count_named("worker"), 0);
    }

    #[test]
    fn stripped_drops_alloc_fields_but_keeps_payload_fields() {
        let tracer = Tracer::enabled();
        let phase = tracer.phase("crawl");
        let mut b = tracer.visit_builder().unwrap();
        let visit = b.open("visit", Some(10));
        b.field(visit, "domain", "site0.example");
        b.field(visit, "alloc_bytes", 4096u64);
        b.field(visit, "alloc_count", 12u64);
        b.field(visit, "peak_bytes", 2048u64);
        b.close(visit, Some(20));
        phase.attach(b);
        phase.field("dealloc_bytes", 999u64);
        phase.end(Some((10, 20)));
        let t = tracer.finish();
        let stripped = t.stripped();
        let visit = stripped.spans.iter().find(|s| s.name == "visit").unwrap();
        assert_eq!(
            visit.fields,
            vec![(
                "domain".to_owned(),
                FieldValue::Str("site0.example".to_owned())
            )]
        );
        let phase = stripped.spans.iter().find(|s| s.name == "crawl").unwrap();
        assert!(phase.fields.is_empty());
        // The unstripped trace keeps the attribution.
        let full = t.spans.iter().find(|s| s.name == "visit").unwrap();
        assert_eq!(full.field("alloc_bytes"), Some(&FieldValue::U64(4096)));
    }

    #[test]
    fn stripped_jsonl_round_trips() {
        let t = sample_trace().stripped();
        let back = Trace::from_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(tracer.visit_builder().is_none());
        let phase = tracer.phase("crawl");
        phase.field("sites", 10usize);
        phase.end(Some((0, 1)));
        assert!(tracer.is_empty());
        let t = tracer.finish();
        assert_eq!(t.spans.len(), 1, "just the synthetic root");
    }

    #[test]
    fn builder_close_also_closes_nested_spans() {
        let tracer = Tracer::enabled();
        let phase = tracer.phase("crawl");
        let mut b = tracer.visit_builder().unwrap();
        let outer = b.open("visit", Some(10));
        b.open("fetch", Some(10)); // left open on purpose
        b.close(outer, Some(50));
        phase.attach(b);
        drop(phase);
        let t = tracer.finish();
        let fetch = t.spans.iter().find(|s| s.name == "fetch").unwrap();
        assert_eq!(fetch.sim_end_ms, Some(10), "auto-closed at its start");
    }

    #[test]
    fn chrome_export_has_trace_events_with_sim_timestamps() {
        let t = sample_trace();
        let json = t.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":100000"), "sim ms → µs");
        assert!(json.contains("\"domain\":\"site0.example\""));
    }

    #[test]
    fn json_escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    /// Attach one deterministic visit subtree for `rank`.
    fn add_visit(tracer: &Tracer, phase: &TracerSpan<'_>, rank: u64) {
        let mut b = tracer.visit_builder().unwrap();
        let v = b.open("visit", Some(rank * 10));
        b.field(v, "domain", format!("site{rank}.example"));
        b.leaf("fetch", Some(rank * 10), Some(rank * 10 + 5));
        b.close(v, Some(rank * 10 + 9));
        phase.attach(b);
    }

    /// Attach one deterministic probe subtree for `domain` at `at` ms.
    fn add_probe(tracer: &Tracer, phase: &TracerSpan<'_>, domain: &str, at: u64) {
        let mut b = tracer.visit_builder().unwrap();
        let p = b.open("probe", Some(at));
        b.field(p, "domain", domain);
        b.leaf("fetch", Some(at), Some(at + 5));
        b.close(p, Some(at + 5));
        phase.attach(b);
    }

    /// A sealed + stripped two-phase trace: visits for `ranks`, probes
    /// for `(domain, at)` pairs, mimicking the campaign shape.
    fn campaign_trace(ranks: &[u64], probes: &[(&str, u64)]) -> Trace {
        let tracer = Tracer::enabled();
        {
            let phase = tracer.phase("crawl");
            for &r in ranks {
                add_visit(&tracer, &phase, r);
            }
            phase.field("sites", ranks.len());
            let lo = ranks.iter().map(|r| r * 10).min().unwrap_or(0);
            let hi = ranks.iter().map(|r| r * 10 + 9).max().unwrap_or(0);
            phase.end(Some((lo, hi)));
        }
        {
            let phase = tracer.phase("attestation-probe");
            for &(d, at) in probes {
                add_probe(&tracer, &phase, d, at);
            }
            phase.field("probes", probes.len());
            phase.field("cache_hits", 0u64);
            let lo = probes.iter().map(|&(_, at)| at).min().unwrap_or(0);
            let hi = probes.iter().map(|&(_, at)| at + 5).max().unwrap_or(0);
            phase.end(Some((lo, hi)));
        }
        tracer.finish().stripped()
    }

    const RULES: &[(&str, MergeRule)] = &[
        ("crawl", MergeRule::Concat),
        (
            "attestation-probe",
            MergeRule::DedupByField {
                key: "domain",
                count_field: "probes",
            },
        ),
    ];

    #[test]
    fn merge_stripped_reassembles_the_unsharded_trace() {
        // Probes sorted by domain in each input, duplicates identical —
        // exactly what per-shard campaign runs produce.
        let shard0 = campaign_trace(&[0, 1], &[("a.example", 100), ("b.example", 105)]);
        let shard1 = campaign_trace(&[2, 3], &[("b.example", 105), ("c.example", 110)]);
        let single = campaign_trace(
            &[0, 1, 2, 3],
            &[("a.example", 100), ("b.example", 105), ("c.example", 110)],
        );
        let merged = merge_stripped(&[shard0, shard1], RULES).unwrap();
        assert_eq!(merged, single);
        // A one-shard "merge" is the identity.
        let alone = merge_stripped(std::slice::from_ref(&single), RULES).unwrap();
        assert_eq!(alone, single);
    }

    #[test]
    fn merge_stripped_handles_empty_stripes() {
        let shard0 = campaign_trace(&[0, 1], &[("a.example", 100)]);
        let shard1 = campaign_trace(&[], &[("a.example", 100)]);
        let merged = merge_stripped(&[shard0.clone(), shard1], RULES).unwrap();
        assert_eq!(merged, shard0);
    }

    #[test]
    fn merge_stripped_rejects_bad_inputs() {
        let t = campaign_trace(&[0], &[("a.example", 100)]);
        let err =
            merge_stripped(std::slice::from_ref(&t), &[("crawl", MergeRule::Concat)]).unwrap_err();
        assert!(err.contains("no merge rule"), "{err}");

        // Same domain, different payload: the duplicate check trips.
        let conflicting = campaign_trace(&[1], &[("a.example", 101)]);
        let err = merge_stripped(&[t.clone(), conflicting], RULES).unwrap_err();
        assert!(err.contains("divergent duplicate"), "{err}");

        // Unstripped input (op spans survive) is refused.
        let raw = {
            let tracer = Tracer::enabled();
            let phase = tracer.phase("crawl");
            let mut b = tracer.visit_builder().unwrap();
            let w = b.open_op("worker", None);
            b.close(w, None);
            phase.attach(b);
            phase.end(Some((0, 1)));
            tracer.finish()
        };
        let err = merge_stripped(&[raw], RULES).unwrap_err();
        assert!(err.contains("must be stripped"), "{err}");

        assert!(merge_stripped(&[], RULES).is_err());
    }
}
