//! # topics-obs — observability for the reproduction pipeline
//!
//! A dependency-light metrics + structured-event layer shared by every
//! stage of the crawl pipeline (world generation, crawl, attestation
//! probing, analysis, export):
//!
//! * [`metrics`] — a [`MetricsRegistry`] of named atomic counters,
//!   gauges and fixed-bucket latency histograms, snapshotted into a
//!   serialisable [`MetricsSnapshot`] with a Prometheus-style text
//!   exposition;
//! * [`events`] — an append-only structured [`EventLog`] with phase
//!   spans and a JSONL sink, carrying both the simulated campaign clock
//!   and wall-clock timings.
//!
//! The two halves are bundled in [`Obs`], the handle the pipeline
//! threads share. Determinism contract: every metric derived from the
//! simulated world is reproducible bit-for-bit for a fixed seed; every
//! wall-clock measurement carries `wall` in its metric name, and every
//! memory-accounting series carries a `mem_`/`alloc_` prefix, so
//! [`MetricsSnapshot::strip_wall_clock`] can separate operational data
//! from the deterministic view.
//!
//! A third pillar, [`alloc`], adds opt-in allocation accounting: an
//! instrumented `#[global_allocator]` wrapper whose per-thread and
//! process-wide counters feed `alloc_bytes`/`peak_bytes` span
//! attributes and `mem_*` gauges. It is the one module allowed to use
//! `unsafe` (a `GlobalAlloc` impl is an unsafe trait); the rest of the
//! crate stays deny-by-default.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod events;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use alloc::{AllocDelta, AllocSpan, AllocStats, CountingAlloc, WindowSpan};
pub use events::{Event, EventLog, FieldValue, Level, SpanGuard};
pub use metrics::{
    escape_label_value, labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
pub use profile::{mem_profile, profile, Integrity, MemProfile, Profile};
pub use trace::{
    merge_stripped, MergeRule, SpanRecord, Trace, TraceBuilder, Tracer, TracerSpan,
    ALLOC_FIELD_KEYS,
};

use std::time::Instant;

/// The shared observability handle: one metric registry, one event
/// log, and one (default-disabled) span tracer. Cheap to share across
/// crawl workers behind an `Arc` (all inner state is atomic or
/// mutex-guarded).
#[derive(Debug, Default)]
pub struct Obs {
    /// Named counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// The structured event stream.
    pub events: EventLog,
    /// Hierarchical span tracer; disabled unless [`Obs::with_trace`]
    /// was called (disabled recording costs one branch per span site).
    pub trace: Tracer,
}

impl Obs {
    /// A silent observability handle (no stderr echo).
    pub fn new() -> Obs {
        Obs::default()
    }

    /// An observability handle that echoes info events to stderr (the
    /// CLI front end), unless `TOPICS_LOG=off`.
    pub fn with_stderr_echo() -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            events: EventLog::new().with_stderr_echo(),
            trace: Tracer::disabled(),
        }
    }

    /// Enable hierarchical span tracing (CLI `--trace-out`).
    #[must_use]
    pub fn with_trace(mut self) -> Obs {
        self.trace = Tracer::enabled();
        self
    }

    /// Start a pipeline phase: on drop the guard records a `span` event
    /// and sets the `phase_wall_us{phase="…"}` gauge. Wall-clock by
    /// design — phase gauges are stripped before determinism
    /// comparisons. When tracing is enabled the guard also opens a
    /// top-level trace span of the same name, and when the counting
    /// allocator is on ([`alloc::set_enabled`]) the guard attributes
    /// the phase's process-wide allocation delta to that span plus a
    /// `mem_phase_alloc_bytes{phase="…"}` gauge. `Obs::phase` guards
    /// must not overlap (they measure a process-wide allocation
    /// window); the pipeline's phases are sequential by construction.
    pub fn phase(&self, name: &str) -> PhaseGuard<'_> {
        PhaseGuard {
            obs: self,
            name: name.to_owned(),
            started: Instant::now(),
            alloc: Some(alloc::WindowSpan::start()),
            span: self.trace.phase(name),
        }
    }
}

/// Guard returned by [`Obs::phase`].
pub struct PhaseGuard<'a> {
    obs: &'a Obs,
    name: String,
    started: Instant,
    alloc: Option<alloc::WindowSpan>,
    span: TracerSpan<'a>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let us = self.started.elapsed().as_micros().max(1) as u64;
        self.obs
            .metrics
            .labeled_gauge("phase_wall_us", "phase", &self.name)
            .set(us as i64);
        let mut fields = vec![
            ("phase".to_owned(), FieldValue::Str(self.name.clone())),
            ("wall_us".to_owned(), FieldValue::U64(us)),
        ];
        if let Some(window) = self.alloc.take() {
            let delta = window.finish();
            if !delta.is_zero() {
                self.span.field("alloc_bytes", delta.alloc_bytes);
                self.span.field("alloc_count", delta.alloc_count);
                self.span.field("peak_bytes", delta.peak_bytes);
                self.obs
                    .metrics
                    .labeled_gauge("mem_phase_alloc_bytes", "phase", &self.name)
                    .set(delta.alloc_bytes as i64);
                self.obs
                    .metrics
                    .labeled_gauge("mem_phase_peak_bytes", "phase", &self.name)
                    .set(delta.peak_bytes as i64);
                fields.push(("alloc_bytes".to_owned(), FieldValue::U64(delta.alloc_bytes)));
            }
        }
        self.obs.events.event(Level::Info, "span", None, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_guard_sets_gauge_and_records_span() {
        let obs = Obs::new();
        obs.phase("world-gen");
        let snapshot = obs.metrics.snapshot();
        assert!(snapshot.gauge("phase_wall_us{phase=\"world-gen\"}") >= 1);
        let events = obs.events.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "span");
        assert_eq!(
            events[0].field("phase"),
            Some(&FieldValue::Str("world-gen".to_owned()))
        );
    }

    #[test]
    fn obs_is_sync_and_send() {
        fn check<T: Send + Sync>() {}
        check::<Obs>();
    }

    #[test]
    fn phase_guard_opens_trace_span_when_tracing() {
        let obs = Obs::new().with_trace();
        obs.phase("analysis");
        let trace = obs.trace.finish();
        let span = trace.spans.iter().find(|s| s.name == "analysis").unwrap();
        assert_eq!(span.parent, Some(1));
        assert!(span.wall_end_us >= span.wall_start_us);
        // Tracing off (the default): nothing recorded.
        let silent = Obs::new();
        silent.phase("analysis");
        assert!(silent.trace.is_empty());
    }

    #[test]
    fn stripped_snapshot_drops_phase_gauges() {
        let obs = Obs::new();
        obs.phase("crawl");
        obs.metrics.counter("visits_total").inc();
        let s = obs.metrics.snapshot().strip_wall_clock();
        assert!(s.gauges.is_empty());
        assert_eq!(s.counter("visits_total"), 1);
    }
}
