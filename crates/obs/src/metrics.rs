//! Metric primitives: named atomic counters, gauges and fixed-bucket
//! histograms, registered once and snapshotted into a serialisable,
//! deterministic structure.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-backed
//! clones over atomics, so the hot paths (one network exchange, one
//! Topics call) never take the registry lock — the lock is only held
//! while resolving a name to a handle or while snapshotting.
//!
//! Metric names follow Prometheus conventions. A name may carry a single
//! label pair in curly braces (e.g. `topics_calls_total{class="legitimate"}`,
//! built with [`labeled`]); the part before the brace is the *base name*
//! used for `# TYPE` grouping in the text exposition. Metrics whose base
//! name contains `wall` are wall-clock measurements and are removed by
//! [`MetricsSnapshot::strip_wall_clock`], which is what makes same-seed
//! snapshots byte-identical across runs.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Default histogram bucket upper bounds for latency-style observations,
/// in milliseconds.
pub const DEFAULT_LATENCY_BUCKETS_MS: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 30_000,
];

/// Default histogram bucket upper bounds for allocation-size
/// observations, in bytes: powers of two from 16 B to 1 GiB. Latency
/// buckets top out at 30 000, so a size histogram reusing them would
/// collapse every allocation above 30 kB into `+Inf`.
pub const DEFAULT_SIZE_BUCKETS_BYTES: &[u64] = &[
    1 << 4,
    1 << 6,
    1 << 8,
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
];

/// Default cap on distinct label values per `(base name, label)` pair.
/// The first `DEFAULT_LABEL_CAP` values each get their own series;
/// later values collapse into the [`OTHER_LABEL`] bucket, so a
/// 50k-site campaign labelling per-CP series cannot blow up the
/// Prometheus render.
pub const DEFAULT_LABEL_CAP: usize = 64;

/// Overflow bucket used once a label exceeds the cardinality cap.
pub const OTHER_LABEL: &str = "other";

/// Build a labelled metric name: `name{label="value"}`. The value is
/// escaped with [`escape_label_value`], so arbitrary strings (domains
/// with quotes, multi-line phase names) stay within one well-formed
/// exposition line.
pub fn labeled(name: &str, label: &str, value: &str) -> String {
    format!("{name}{{{label}=\"{}\"}}", escape_label_value(value))
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote and newline become `\\`, `\"` and `\n`.
/// Values without those characters are returned borrowed (no
/// allocation on the common path).
pub fn escape_label_value(value: &str) -> std::borrow::Cow<'_, str> {
    if !value.contains(['\\', '"', '\n']) {
        return std::borrow::Cow::Borrowed(value);
    }
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    std::borrow::Cow::Owned(out)
}

/// The base name of a possibly-labelled metric (the part before `{`).
pub fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (latest-value semantics).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add to the value (negative deltas allowed).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds, strictly increasing; an implicit `+Inf`
    /// bucket follows the last bound.
    bounds: Vec<u64>,
    /// One slot per bound plus the `+Inf` slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram handle for non-negative integer observations
/// (typically latencies in milliseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Record `n` observations of the same value in one update — the
    /// bulk-transfer path for pre-aggregated counts (e.g. the
    /// allocator's size-class counters), where calling
    /// [`Histogram::observe`] per event would be millions of updates.
    pub fn observe_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(n, Ordering::Relaxed);
        inner.count.fetch_add(n, Ordering::Relaxed);
        inner
            .sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds (the `+Inf` bucket is implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket (non-cumulative) observation counts; one entry per
    /// bound plus the trailing `+Inf` entry.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile as the upper bound of the bucket where
    /// the cumulative count crosses `q × count`. Values in the `+Inf`
    /// bucket report the last finite bound.
    ///
    /// Edge cases are defined, not panics:
    /// * empty histogram → the documented sentinel `0`;
    /// * `q <= 0.0` (and `NaN`) → the bucket of the smallest
    ///   observation;
    /// * `q >= 1.0` → the bucket of the largest observation;
    /// * a histogram with no finite bounds (every observation in
    ///   `+Inf`) → the sentinel `0`.
    ///
    /// Use [`HistogramSnapshot::quantile_checked`] to distinguish the
    /// sentinel from a genuine `0` bound.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_checked(q).unwrap_or(0)
    }

    /// [`HistogramSnapshot::quantile`] without the sentinel: `None` for
    /// an empty histogram or when the answer falls in the `+Inf` bucket
    /// of a histogram with no finite bounds.
    pub fn quantile_checked(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        // NaN compares false on both sides and clamps to the minimum.
        let q = if q > 0.0 { q.min(1.0) } else { 0.0 };
        let target = (q * self.count as f64).ceil().clamp(1.0, self.count as f64) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bounds.get(i).or(self.bounds.last()).copied();
            }
        }
        self.bounds.last().copied()
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The process-wide registry of named metrics.
///
/// Resolving the same name twice returns handles over the same atomic, so
/// concurrent workers can each hold their own clone.
///
/// Labelled series are cardinality-bounded: per `(base name, label)`
/// pair, only the first [`DEFAULT_LABEL_CAP`] distinct values (or the
/// cap set with [`MetricsRegistry::with_label_cap`]) get their own
/// series; later values collapse into `label="other"`.
#[derive(Debug)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    label_cap: usize,
    /// Distinct values seen per `name\u{0}label` key.
    label_values: Mutex<BTreeMap<String, BTreeSet<String>>>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
            label_cap: DEFAULT_LABEL_CAP,
            label_values: Mutex::default(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry with the default label-cardinality cap.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Override the label-cardinality cap (≥ 1).
    #[must_use]
    pub fn with_label_cap(mut self, cap: usize) -> MetricsRegistry {
        self.label_cap = cap.max(1);
        self
    }

    /// Apply the cardinality cap: the first `label_cap` distinct values
    /// pass through; later values collapse into [`OTHER_LABEL`].
    fn capped<'v>(&self, name: &str, label: &str, value: &'v str) -> &'v str {
        if value == OTHER_LABEL {
            return value;
        }
        let key = format!("{name}\u{0}{label}");
        let mut seen = self.label_values.lock();
        let values = seen.entry(key).or_default();
        if values.contains(value) {
            value
        } else if values.len() < self.label_cap {
            values.insert(value.to_owned());
            value
        } else {
            OTHER_LABEL
        }
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Get or create a counter with one label pair. Distinct values per
    /// `(name, label)` are capped; overflow goes to `label="other"`.
    pub fn labeled_counter(&self, name: &str, label: &str, value: &str) -> Counter {
        let value = self.capped(name, label, value);
        self.counter(&labeled(name, label, value))
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Get or create a gauge with one label pair. Distinct values per
    /// `(name, label)` are capped; overflow goes to `label="other"`.
    pub fn labeled_gauge(&self, name: &str, label: &str, value: &str) -> Gauge {
        let value = self.capped(name, label, value);
        self.gauge(&labeled(name, label, value))
    }

    /// Get or create a histogram with the default latency buckets. The
    /// name must be label-free (histograms expand into their own
    /// `le`-labelled series in the exposition).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, DEFAULT_LATENCY_BUCKETS_MS)
    }

    /// Get or create a histogram with explicit bucket bounds. Bounds are
    /// fixed at first registration; later calls return the existing
    /// histogram regardless of the bounds passed.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[u64]) -> Histogram {
        debug_assert!(!name.contains('{'), "histogram names must be label-free");
        self.histograms
            .lock()
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Copy every registered metric into a serialisable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a registry: serialisable,
/// comparable, and renderable as Prometheus text exposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by (possibly labelled) name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by (possibly labelled) name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter, 0 when absent. Accepts labelled names.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of a gauge, 0 when absent.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter sharing `base` as base name (i.e. across all
    /// label values).
    pub fn counter_sum(&self, base: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| base_name(k) == base)
            .map(|(_, v)| v)
            .sum()
    }

    /// Deterministically combine per-shard snapshots. Counters and
    /// histogram buckets/count/sum add — disjoint shards contribute
    /// disjoint observations — while gauges take the elementwise
    /// maximum, the only combiner that is independent of merge order
    /// for point-in-time values. Histograms sharing a name must agree
    /// on bucket bounds; a series missing from a snapshot contributes
    /// nothing. Beware that series counting *deduplicated* work (e.g.
    /// attestation probes, which several shards may repeat) do not sum
    /// to the unsharded value; callers cross-check those against the
    /// merged records instead.
    pub fn merge(snapshots: &[MetricsSnapshot]) -> Result<MetricsSnapshot, String> {
        let mut out = MetricsSnapshot::default();
        for s in snapshots {
            for (k, v) in &s.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &s.gauges {
                out.gauges
                    .entry(k.clone())
                    .and_modify(|e| *e = (*e).max(*v))
                    .or_insert(*v);
            }
            for (k, h) in &s.histograms {
                match out.histograms.entry(k.clone()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(h.clone());
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let acc = e.get_mut();
                        if acc.bounds != h.bounds || acc.buckets.len() != h.buckets.len() {
                            return Err(format!(
                                "histogram {k}: bucket bounds differ across snapshots"
                            ));
                        }
                        for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                            *a += b;
                        }
                        acc.count += h.count;
                        acc.sum += h.sum;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Remove every operational metric: wall-clock measurements (base
    /// name containing `wall`) and memory-accounting series (base name
    /// starting with `mem_` or `alloc_` — allocation counts depend on
    /// thread scheduling and allocator internals, not the seeded
    /// campaign). Everything left derives from the simulated clock and
    /// the seeded world, so two same-seed runs produce byte-identical
    /// stripped snapshots.
    #[must_use]
    pub fn strip_wall_clock(mut self) -> MetricsSnapshot {
        fn operational(name: &str) -> bool {
            let base = base_name(name);
            base.contains("wall") || base.starts_with("mem_") || base.starts_with("alloc_")
        }
        self.counters.retain(|k, _| !operational(k));
        self.gauges.retain(|k, _| !operational(k));
        self.histograms.retain(|k, _| !operational(k));
        self
    }

    /// Render the snapshot in the Prometheus text exposition format.
    ///
    /// Histograms expand into cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count`, followed by p50/p90/p99 estimate gauges. Each
    /// base name gets exactly one `# HELP` and one `# TYPE` line, even
    /// when it appears in more than one section (the CI lint checks
    /// this invariant).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut described: BTreeSet<String> = BTreeSet::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if described.insert(base.to_owned()) {
                out.push_str(&format!("# HELP {base} topics-lab {kind}\n"));
                out.push_str(&format!("# TYPE {base} {kind}\n"));
            }
        };
        for (name, value) in &self.counters {
            type_line(&mut out, base_name(name), "counter");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            type_line(&mut out, base_name(name), "gauge");
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            type_line(&mut out, name, "histogram");
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_owned(),
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{name}_quantile{{q=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped_per_the_exposition_format() {
        // Regression: a backslash, quote or newline in a label value
        // used to land verbatim in the series name and corrupt the
        // /metrics payload (the quote ended the value early; the
        // newline split the sample across two lines).
        assert_eq!(escape_label_value("plain.example"), "plain.example");
        assert_eq!(escape_label_value(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\nb"), r"a\nb");
        assert_eq!(
            labeled("calls_total", "cp", "evil\"\n\\.example"),
            "calls_total{cp=\"evil\\\"\\n\\\\.example\"}"
        );
        // Through the registry: the rendered exposition stays one
        // sample per line and parseable.
        let r = MetricsRegistry::new();
        r.labeled_counter("calls_total", "cp", "evil\"cp\n.example")
            .inc();
        let text = r.snapshot().render_prometheus();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.ends_with(" 1"),
                "sample line split by an unescaped newline: {line:?}"
            );
            let quotes_unescaped = line
                .as_bytes()
                .windows(2)
                .filter(|w| w[1] == b'"' && w[0] != b'\\')
                .count()
                + usize::from(line.as_bytes().first() == Some(&b'"'));
            assert_eq!(quotes_unescaped, 2, "stray quote in {line:?}");
        }
        assert!(text.contains("calls_total{cp=\"evil\\\"cp\\n.example\"} 1"));
    }

    #[test]
    fn counters_share_state_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x_total").get(), 3);
        assert_eq!(r.snapshot().counter("x_total"), 3);
    }

    #[test]
    fn labeled_counters_are_distinct_series_with_shared_base() {
        let r = MetricsRegistry::new();
        r.labeled_counter("calls_total", "class", "a").add(2);
        r.labeled_counter("calls_total", "class", "b").add(3);
        let s = r.snapshot();
        assert_eq!(s.counter("calls_total{class=\"a\"}"), 2);
        assert_eq!(s.counter_sum("calls_total"), 5);
    }

    #[test]
    fn merge_adds_counters_and_histograms_and_maxes_gauges() {
        let snap = |c: u64, g: i64, buckets: [u64; 3]| {
            let r = MetricsRegistry::new();
            r.counter("visits_total").add(c);
            r.gauge("phase_workers").set(g);
            let h = r.histogram_with_buckets("lat_ms", &[10, 20]);
            for (i, &n) in buckets.iter().enumerate() {
                for _ in 0..n {
                    h.observe(5 + 10 * i as u64);
                }
            }
            r.snapshot()
        };
        let a = snap(3, 2, [1, 0, 2]);
        let b = snap(4, 8, [0, 5, 0]);
        let merged = MetricsSnapshot::merge(&[a.clone(), b]).expect("merges");
        assert_eq!(merged.counter("visits_total"), 7);
        assert_eq!(merged.gauge("phase_workers"), 8);
        let h = &merged.histograms["lat_ms"];
        assert_eq!(h.buckets, vec![1, 5, 2]);
        assert_eq!(h.count, 8);
        // Merging with an empty snapshot is the identity; merge order
        // does not matter.
        let id = MetricsSnapshot::merge(&[a.clone(), MetricsSnapshot::default()]).unwrap();
        assert_eq!(id, a);
        // Mismatched bounds are refused.
        let r = MetricsRegistry::new();
        r.histogram_with_buckets("lat_ms", &[99]).observe(1);
        assert!(MetricsSnapshot::merge(&[a, r.snapshot()]).is_err());
    }

    #[test]
    fn gauges_hold_latest_value() {
        let r = MetricsRegistry::new();
        let g = r.gauge("depth");
        g.set(5);
        g.add(-2);
        assert_eq!(r.snapshot().gauge("depth"), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with_buckets("lat_ms", &[10, 100, 1000]);
        for v in [1, 5, 9, 50, 99, 200] {
            h.observe(v);
        }
        h.observe(5_000); // +Inf bucket
        let s = r.snapshot();
        let snap = &s.histograms["lat_ms"];
        assert_eq!(snap.buckets, vec![3, 2, 1, 1]);
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 1 + 5 + 9 + 50 + 99 + 200 + 5_000);
        assert_eq!(snap.quantile(0.5), 100);
        assert_eq!(snap.quantile(0.99), 1000, "+Inf reports last bound");
        assert!(snap.mean() > 0.0);
    }

    #[test]
    fn prometheus_rendering_has_types_buckets_and_quantiles() {
        let r = MetricsRegistry::new();
        r.labeled_counter("calls_total", "class", "a").inc();
        r.labeled_counter("calls_total", "class", "b").inc();
        r.gauge("phase_wall_us").set(12);
        r.histogram_with_buckets("lat_ms", &[10, 100]).observe(7);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE calls_total counter"));
        // One TYPE line for both labelled series.
        assert_eq!(text.matches("# TYPE calls_total").count(), 1);
        assert!(text.contains("calls_total{class=\"a\"} 1"));
        assert!(text.contains("# TYPE lat_ms histogram"));
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lat_ms_count 1"));
        assert!(text.contains("lat_ms_quantile{q=\"0.5\"} 10"));
    }

    #[test]
    fn strip_wall_clock_removes_only_operational_metrics() {
        let r = MetricsRegistry::new();
        r.counter("visits_total").inc();
        r.labeled_gauge("phase_wall_us", "phase", "crawl").set(99);
        r.histogram("crawl_wall_ms").observe(1);
        // Memory-accounting series are operational too.
        r.gauge("mem_live_bytes").set(4096);
        r.gauge("mem_peak_rss_bytes").set(1 << 20);
        r.histogram_with_buckets("alloc_size_bytes", DEFAULT_SIZE_BUCKETS_BYTES)
            .observe(64);
        let s = r.snapshot().strip_wall_clock();
        assert_eq!(s.counter("visits_total"), 1);
        assert!(s.gauges.is_empty());
        assert!(s.histograms.is_empty());
    }

    #[test]
    fn observe_n_bulk_transfers_preaggregated_counts() {
        let r = MetricsRegistry::new();
        let h = r.histogram_with_buckets("sz", &[16, 64]);
        h.observe_n(16, 3);
        h.observe_n(100, 2);
        h.observe_n(8, 0); // no-op
        let snap = r.snapshot().histograms["sz"].clone();
        assert_eq!(snap.buckets, vec![3, 0, 2]);
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 16 * 3 + 100 * 2);
    }

    #[test]
    fn size_buckets_resolve_large_allocations() {
        // The regression this bucket set fixes: a 1 MiB allocation must
        // not collapse into +Inf the way it does on latency buckets.
        let r = MetricsRegistry::new();
        let h = r.histogram_with_buckets("alloc_size_bytes", DEFAULT_SIZE_BUCKETS_BYTES);
        h.observe(1 << 20);
        let snap = r.snapshot().histograms["alloc_size_bytes"].clone();
        assert_eq!(snap.quantile(0.5), 1 << 20);
        let inf_bucket = snap.buckets.last().copied().unwrap();
        assert_eq!(inf_bucket, 0);
    }

    #[test]
    fn label_cardinality_is_capped_into_other() {
        let r = MetricsRegistry::new().with_label_cap(2);
        r.labeled_counter("cp_calls_total", "cp", "cp0.example")
            .inc();
        r.labeled_counter("cp_calls_total", "cp", "cp1.example")
            .inc();
        // Over the cap: both land in the `other` bucket…
        r.labeled_counter("cp_calls_total", "cp", "cp2.example")
            .inc();
        r.labeled_counter("cp_calls_total", "cp", "cp3.example")
            .inc();
        // …while already-admitted values keep their own series…
        r.labeled_counter("cp_calls_total", "cp", "cp0.example")
            .inc();
        // …and other labels/names have their own budget.
        r.labeled_gauge("cp_depth", "cp", "cp9.example").set(4);
        let s = r.snapshot();
        assert_eq!(s.counter("cp_calls_total{cp=\"cp0.example\"}"), 2);
        assert_eq!(s.counter("cp_calls_total{cp=\"cp1.example\"}"), 1);
        assert_eq!(s.counter("cp_calls_total{cp=\"cp2.example\"}"), 0);
        assert_eq!(s.counter("cp_calls_total{cp=\"other\"}"), 2);
        assert_eq!(s.counter_sum("cp_calls_total"), 5, "no observations lost");
        assert_eq!(s.gauge("cp_depth{cp=\"cp9.example\"}"), 4);
        // Series count is bounded by cap + 1.
        let series = s
            .counters
            .keys()
            .filter(|k| base_name(k) == "cp_calls_total")
            .count();
        assert_eq!(series, 3);
    }

    #[test]
    fn quantile_edge_cases_are_defined() {
        // Empty histogram: documented sentinel.
        let empty = HistogramSnapshot {
            bounds: vec![10, 100],
            buckets: vec![0, 0, 0],
            count: 0,
            sum: 0,
        };
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile_checked(0.5), None);

        let r = MetricsRegistry::new();
        let h = r.histogram_with_buckets("m", &[10, 100, 1000]);
        for v in [5, 50, 500] {
            h.observe(v);
        }
        let snap = r.snapshot().histograms["m"].clone();
        // q clamps into [0, 1]; 0 → smallest, 1 → largest observation.
        assert_eq!(snap.quantile(0.0), 10);
        assert_eq!(snap.quantile(-3.0), 10);
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(snap.quantile(7.5), 1000);
        assert_eq!(snap.quantile(f64::NAN), 10, "NaN clamps to the minimum");

        // Single bucket of finite bound.
        let hb = r.histogram_with_buckets("one", &[42]);
        hb.observe(1);
        let one = r.snapshot().histograms["one"].clone();
        assert_eq!(one.quantile(0.5), 42);
        assert_eq!(one.quantile(1.0), 42);

        // No finite bounds at all: every observation is +Inf → sentinel.
        let hinf = r.histogram_with_buckets("inf", &[]);
        hinf.observe(9);
        let inf = r.snapshot().histograms["inf"].clone();
        assert_eq!(inf.quantile(0.5), 0);
        assert_eq!(inf.quantile_checked(0.5), None);
    }

    #[test]
    fn prometheus_help_and_type_lines_are_unique() {
        let r = MetricsRegistry::new();
        r.labeled_counter("calls_total", "class", "a").inc();
        r.labeled_counter("calls_total", "class", "b").inc();
        r.gauge("depth").set(1);
        r.histogram_with_buckets("lat_ms", &[10]).observe(1);
        let text = r.snapshot().render_prometheus();
        let mut meta: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# HELP") || l.starts_with("# TYPE"))
            .collect();
        let total = meta.len();
        meta.sort_unstable();
        meta.dedup();
        assert_eq!(meta.len(), total, "duplicate HELP/TYPE lines");
        assert!(text.contains("# HELP calls_total topics-lab counter"));
        assert!(text.contains("# HELP lat_ms topics-lab histogram"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let r = MetricsRegistry::new();
        r.counter("a_total").add(7);
        r.gauge("b").set(-2);
        r.histogram_with_buckets("h_ms", &[1, 2]).observe(2);
        let s = r.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
