//! Structured events: a timestamped, append-only log with phase spans
//! and a JSONL sink.
//!
//! Every event carries both clocks: `wall_us` (microseconds of real time
//! since the log was created — operational, non-deterministic) and
//! `sim_ms` (the simulated campaign clock, when the event has one —
//! deterministic). The JSONL sink writes one event per line, so a crawl
//! leaves a machine-readable trace next to its metrics.
//!
//! Echoing to stderr is off by default (library users stay silent);
//! front ends opt in with [`EventLog::with_stderr_echo`], which in turn
//! honours `TOPICS_LOG=off`.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Environment variable that globally disables stderr echo when set to
/// `off` (events are still recorded).
pub const LOG_ENV: &str = "TOPICS_LOG";

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal progress reporting.
    Info,
    /// Something unexpected but recoverable.
    Warn,
    /// A failed operation.
    Error,
}

impl Level {
    /// Lower-case label used in echoes and sinks.
    pub fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One structured field value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Event name (e.g. `progress`, `span`).
    pub name: String,
    /// Microseconds of wall-clock time since the log was created.
    pub wall_us: u64,
    /// Simulated-clock milliseconds, for events that happen at a point
    /// of campaign time.
    pub sim_ms: Option<u64>,
    /// Ordered key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Append-only structured event log.
#[derive(Debug)]
pub struct EventLog {
    started: Instant,
    events: Mutex<Vec<Event>>,
    echo: bool,
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog::new()
    }
}

impl EventLog {
    /// A silent log (events recorded, nothing echoed).
    pub fn new() -> EventLog {
        EventLog {
            started: Instant::now(),
            events: Mutex::new(Vec::new()),
            echo: false,
        }
    }

    /// Echo info-and-above events to stderr, unless `TOPICS_LOG=off`.
    #[must_use]
    pub fn with_stderr_echo(mut self) -> EventLog {
        self.echo = std::env::var(LOG_ENV).as_deref() != Ok("off");
        self
    }

    /// Whether events are echoed to stderr.
    pub fn echo_enabled(&self) -> bool {
        self.echo
    }

    /// Record an event.
    pub fn event(
        &self,
        level: Level,
        name: &str,
        sim_ms: Option<u64>,
        fields: Vec<(String, FieldValue)>,
    ) {
        let event = Event {
            level,
            name: name.to_owned(),
            wall_us: self.started.elapsed().as_micros().max(1) as u64,
            sim_ms,
            fields,
        };
        if self.echo && level >= Level::Info {
            let mut line = format!("[topics-lab] {} {}", event.level.label(), event.name);
            for (k, v) in &event.fields {
                line.push_str(&format!(" {k}={v}"));
            }
            eprintln!("{line}");
        }
        self.events.lock().push(event);
    }

    /// Record an info event without a simulated timestamp.
    pub fn info(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.event(Level::Info, name, None, fields);
    }

    /// Record an error event.
    pub fn error(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.event(Level::Error, name, None, fields);
    }

    /// Start a named phase span; the span event is recorded when the
    /// guard is dropped (or [`SpanGuard::end`] is called).
    pub fn span(&self, phase: &str) -> SpanGuard<'_> {
        SpanGuard {
            log: self,
            phase: phase.to_owned(),
            started: Instant::now(),
            extra: Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Snapshot of the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Serialise the log as JSON Lines: one event object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events.lock().iter() {
            out.push_str(&serde_json::to_string(event).expect("event serialises"));
            out.push('\n');
        }
        out
    }
}

/// Guard for one phase span: measures wall time from creation to drop
/// and records a `span` event with the phase name and duration.
pub struct SpanGuard<'a> {
    log: &'a EventLog,
    phase: String,
    started: Instant,
    extra: Vec<(String, FieldValue)>,
}

impl SpanGuard<'_> {
    /// Attach an extra field to the eventual span event.
    pub fn field(&mut self, key: &str, value: impl Into<FieldValue>) {
        self.extra.push((key.to_owned(), value.into()));
    }

    /// Elapsed wall time so far, in microseconds (always nonzero).
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros().max(1) as u64
    }

    /// End the span now (equivalent to dropping it).
    pub fn end(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let mut fields = vec![
            ("phase".to_owned(), FieldValue::Str(self.phase.clone())),
            ("wall_us".to_owned(), FieldValue::U64(self.elapsed_us())),
        ];
        fields.append(&mut self.extra);
        self.log.event(Level::Info, "span", None, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_record_in_order_with_fields() {
        let log = EventLog::new();
        log.info("start", vec![("sites".to_owned(), 100usize.into())]);
        log.event(
            Level::Debug,
            "detail",
            Some(42),
            vec![("ok".to_owned(), true.into())],
        );
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "start");
        assert_eq!(events[0].field("sites"), Some(&FieldValue::U64(100)));
        assert_eq!(events[1].sim_ms, Some(42));
        assert!(events[0].wall_us >= 1);
    }

    #[test]
    fn spans_emit_phase_events_with_nonzero_duration() {
        let log = EventLog::new();
        {
            let mut span = log.span("crawl");
            span.field("sites", 10usize);
        }
        log.span("analysis").end();
        let events = log.events();
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.name, "span");
            let FieldValue::U64(us) = e.field("wall_us").unwrap() else {
                panic!("wall_us is u64");
            };
            assert!(*us >= 1, "span durations are nonzero");
        }
        assert_eq!(
            events[0].field("phase"),
            Some(&FieldValue::Str("crawl".into()))
        );
        assert_eq!(events[0].field("sites"), Some(&FieldValue::U64(10)));
    }

    #[test]
    fn jsonl_has_one_line_per_event_and_round_trips() {
        let log = EventLog::new();
        log.info("a", vec![]);
        log.error("b", vec![("what".to_owned(), "broke".into())]);
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, original) in lines.iter().zip(log.events()) {
            let back: Event = serde_json::from_str(line).unwrap();
            assert_eq!(back, original);
        }
    }

    #[test]
    fn default_log_does_not_echo() {
        assert!(!EventLog::new().echo_enabled());
    }

    #[test]
    fn jsonl_escapes_quotes_backslashes_and_newlines() {
        let log = EventLog::new();
        log.info(
            "tricky",
            vec![
                ("quote".to_owned(), "say \"hi\"".into()),
                ("backslash".to_owned(), "C:\\topics\\lab".into()),
                ("newline".to_owned(), "line1\nline2\r\ttab".into()),
                ("unicode".to_owned(), "smørrebrød → ☂".into()),
            ],
        );
        let jsonl = log.to_jsonl();
        // Raw control characters never appear inside a line; the log
        // still yields exactly one line for one event.
        let lines: Vec<&str> = jsonl.split('\n').filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\\\"hi\\\""));
        assert!(lines[0].contains("C:\\\\topics\\\\lab"));
        assert!(lines[0].contains("line1\\nline2"));
        assert!(!lines[0].contains('\r'));
        // And the escaped payload round-trips exactly.
        let back: Event = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back, log.events()[0]);
        assert_eq!(
            back.field("newline"),
            Some(&FieldValue::Str("line1\nline2\r\ttab".to_owned()))
        );
    }

    #[test]
    fn span_guards_record_fields_under_concurrent_phases() {
        let log = std::sync::Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for t in 0..8usize {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..25usize {
                    let mut span = log.span(&format!("phase-{t}"));
                    span.field("worker", t);
                    span.field("iter", i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = log.events();
        assert_eq!(events.len(), 8 * 25, "every span event recorded");
        for t in 0..8usize {
            let mine: Vec<_> = events
                .iter()
                .filter(|e| e.field("phase") == Some(&FieldValue::Str(format!("phase-{t}"))))
                .collect();
            assert_eq!(mine.len(), 25, "no cross-phase loss for phase-{t}");
            // Extra fields stay attached to their own span event and
            // arrive in per-thread order.
            for (i, e) in mine.iter().enumerate() {
                assert_eq!(e.field("worker"), Some(&FieldValue::U64(t as u64)));
                assert_eq!(e.field("iter"), Some(&FieldValue::U64(i as u64)));
            }
        }
    }
}
