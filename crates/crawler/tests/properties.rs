//! Property-based tests for the crawler: banner scanning is total and
//! consistent, record assembly preserves invariants.

use proptest::prelude::*;
use topics_browser::html;
use topics_browser::observer::ObjectEvent;
use topics_crawler::privaccept::{scan, ACCEPT_KEYWORDS, REJECT_KEYWORDS};
use topics_crawler::record::{Phase, VisitRecord};
use topics_net::clock::Timestamp;
use topics_net::domain::Domain;
use topics_net::http::ResourceKind;
use topics_net::url::Url;

proptest! {
    #[test]
    fn scan_never_panics_on_arbitrary_markup(input in ".*") {
        let _ = scan(&html::parse(&input));
    }

    #[test]
    fn acceptance_requires_a_banner_container(
        button in "[A-Za-z ]{1,20}",
        banner_class in prop_oneof![
            Just("consent-box"),
            Just("cookie-bar"),
            Just("plain-nav"),
            Just("sidebar"),
        ]
    ) {
        let page = format!(
            r#"<div class="{banner_class}"><button>{button}</button></div>"#
        );
        let result = scan(&html::parse(&page));
        let is_banner_class = banner_class.contains("consent") || banner_class.contains("cookie");
        prop_assert_eq!(result.banner_found, is_banner_class);
        if !is_banner_class {
            prop_assert!(!result.can_accept());
            prop_assert!(!result.can_reject());
        }
        // The scan is deterministic.
        prop_assert_eq!(scan(&html::parse(&page)), result);
    }

    #[test]
    fn every_accept_keyword_is_recognised(
        (lang_idx, kw_idx) in (0usize..5).prop_flat_map(|l| {
            let n = ACCEPT_KEYWORDS[l].1.len();
            (Just(l), 0..n)
        })
    ) {
        let keyword = ACCEPT_KEYWORDS[lang_idx].1[kw_idx];
        let page = format!(
            r#"<div class="consent-banner"><button>Please {keyword} now</button></div>"#
        );
        let result = scan(&html::parse(&page));
        prop_assert!(result.can_accept(), "keyword {keyword:?} not matched");
    }

    #[test]
    fn every_reject_keyword_is_recognised(idx in 0..REJECT_KEYWORDS.len()) {
        let keyword = REJECT_KEYWORDS[idx];
        let page = format!(
            r#"<div class="cookie-banner"><button>{keyword}</button></div>"#
        );
        prop_assert!(scan(&html::parse(&page)).can_reject());
    }

    #[test]
    fn visit_record_assembly_invariants(
        hosts in prop::collection::vec("[a-z]{2,8}", 1..12),
        fails in prop::collection::vec(any::<bool>(), 1..12)
    ) {
        let website = Domain::parse("ranked-site.com").unwrap();
        let objects: Vec<ObjectEvent> = hosts
            .iter()
            .zip(fails.iter().cycle())
            .enumerate()
            .map(|(i, (h, &fail))| ObjectEvent {
                url: Url::parse(&format!("https://sub.{h}.com/obj{i}")).unwrap(),
                kind: ResourceKind::Script,
                ok: !fail,
                timestamp: Timestamp(i as u64),
            })
            .collect();
        let v = VisitRecord::assemble(
            Phase::BeforeAccept,
            website.clone(),
            website.clone(),
            &objects,
            &[],
            false,
            Timestamp(0),
            123,
        );
        // Count preserved, dedup at registrable-domain level, failures
        // counted exactly.
        prop_assert_eq!(v.object_count, objects.len());
        prop_assert_eq!(
            v.failed_objects,
            objects.iter().filter(|o| !o.ok).count()
        );
        let mut uniq: Vec<&str> = hosts.iter().map(String::as_str).collect();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(v.party_domains.len(), uniq.len());
        let mut seen = std::collections::BTreeSet::new();
        for d in &v.party_domains {
            prop_assert!(seen.insert(d.clone()), "duplicate {d}");
        }
        // Third parties exclude the ranked site (absent from objects here).
        prop_assert_eq!(v.third_parties().count(), uniq.len());
    }

    #[test]
    fn shard_stripes_tile_the_rank_space(
        shards in 1usize..12,
        num_sites in 0usize..500,
    ) {
        let plan = topics_crawler::ShardPlan::new(shards, num_sites);
        // Stripes are contiguous, in order, and cover 0..num_sites with
        // no gap or overlap; every rank maps back to its own stripe.
        let mut covered = 0usize;
        for k in 0..shards {
            let stripe = plan.stripe(k);
            prop_assert_eq!(stripe.start, covered);
            prop_assert!(stripe.end >= stripe.start);
            covered = stripe.end;
            for rank in stripe {
                prop_assert_eq!(plan.shard_of(rank), k);
            }
        }
        prop_assert_eq!(covered, num_sites);
        // Stripe sizes differ by at most one (balanced rank striping).
        let sizes: Vec<usize> = (0..shards).map(|k| plan.stripe(k).len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "unbalanced stripes {sizes:?}");
    }

    #[test]
    fn shard_tokens_are_distinct_and_order_stable(
        seed in any::<u64>(),
        shards in 1usize..16,
    ) {
        // Token derivation depends only on (seed, shard index) — the
        // order shards are scheduled or merged in cannot change it.
        let forward: Vec<u64> = (0..shards)
            .map(|k| topics_crawler::shard_token(seed, k))
            .collect();
        let mut backward: Vec<u64> = (0..shards)
            .rev()
            .map(|k| topics_crawler::shard_token(seed, k))
            .collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward);
        let mut uniq = forward.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), shards, "token collision across shards");
    }
}
