//! Crawl-side observability: live per-worker counters updated as the
//! campaign runs, and the authoritative post-hoc tally computed from a
//! [`CampaignOutcome`].
//!
//! The two layers use disjoint metric names so nothing is counted twice:
//!
//! * **live** series (`crawl_*`, `attestation_probes_sent_total`, plus
//!   the `net_*` / `topics_api_*` series recorded inside the browser)
//!   are incremented on the hot path and give operators a running view;
//! * **tally** series (`sites_attempted_total`, `visits_total`,
//!   `topics_calls_total{class=…}`, …) are derived by [`tally_outcome`]
//!   from the finished outcome — the same data the §2.4 report is
//!   rendered from, so snapshot and report reconcile by construction.

use crate::record::CampaignOutcome;
use std::collections::HashSet;
use topics_browser::topics::TopicsMetrics;
use topics_net::domain::Domain;
use topics_net::metrics::NetMetrics;
use topics_obs::{Counter, MetricsRegistry};

/// The values the `class` label of `topics_calls_total{class=…}` can
/// take. The partition is total: every recorded call lands in exactly
/// one class, so the per-class series sum to
/// `topics_calls_recorded_total`.
pub const CALL_CLASSES: [&str; 5] = [
    "legitimate",
    "questionable",
    "anomalous",
    "other",
    "blocked",
];

/// Pre-resolved live counters shared by every crawl worker.
///
/// Cloning is cheap (each handle is an `Arc` over one atomic), so the
/// campaign runner clones one bundle per worker thread.
#[derive(Debug, Clone)]
pub struct CrawlMetrics {
    /// Network-layer handles threaded into each browser.
    pub net: NetMetrics,
    /// Topics-call handles threaded into each browser.
    pub topics: TopicsMetrics,
    /// `crawl_visits_ok_total` — Before-Accept visits that loaded.
    pub visits_ok: Counter,
    /// `crawl_visits_failed_total` — sites dropped by DNS/connect errors.
    pub visits_failed: Counter,
    /// `crawl_banner_accepted_total` — banners accepted (second visit ran).
    pub banner_accepted: Counter,
    /// `crawl_banner_rejected_total` — banners rejected (opt-out runs).
    pub banner_rejected: Counter,
    /// `crawl_visits_degraded_total` — sites kept in the dataset despite
    /// retries, a lost second visit, or a timeout (fault campaigns only).
    pub visits_degraded: Counter,
    /// `crawl_visits_timed_out_total` — visits abandoned past the
    /// per-visit simulated time budget.
    pub visits_timed_out: Counter,
}

impl CrawlMetrics {
    /// Resolve the handles in `registry`.
    pub fn new(registry: &MetricsRegistry) -> CrawlMetrics {
        CrawlMetrics {
            net: NetMetrics::new(registry),
            topics: TopicsMetrics::new(registry),
            visits_ok: registry.counter("crawl_visits_ok_total"),
            visits_failed: registry.counter("crawl_visits_failed_total"),
            banner_accepted: registry.counter("crawl_banner_accepted_total"),
            banner_rejected: registry.counter("crawl_banner_rejected_total"),
            visits_degraded: registry.counter("crawl_visits_degraded_total"),
            visits_timed_out: registry.counter("crawl_visits_timed_out_total"),
        }
    }
}

/// Classify one recorded call for the `class` label.
///
/// Mirrors the analysis-side semantics (`topics_analysis::dataset`):
/// blocked calls never execute; executed calls from an
/// Allowed∧Attested CP are *legitimate* — except before any consent
/// interaction, where the paper calls them *questionable* (§5); calls
/// from a CP with neither label are the §4 *anomalous* population; a CP
/// with exactly one label is *other* (the paper's tiny mixed cells of
/// Table 1).
fn classify(permitted: bool, before_accept: bool, allowed: bool, attested: bool) -> &'static str {
    if !permitted {
        "blocked"
    } else if allowed && attested {
        if before_accept {
            "questionable"
        } else {
            "legitimate"
        }
    } else if !allowed && !attested {
        "anomalous"
    } else {
        "other"
    }
}

/// Derive the authoritative tally metrics from a finished outcome.
///
/// Both `Lab::run` and the `topics-lab metrics` subcommand call this on
/// the same [`CampaignOutcome`] the report is computed from, which is
/// what guarantees `visits_total`, `banner_accepted_total` and the
/// per-class `topics_calls_total` reconcile exactly with §2.4.
pub fn tally_outcome(outcome: &CampaignOutcome, registry: &MetricsRegistry) {
    let allowed: HashSet<&Domain> = outcome.allow_list.iter().collect();
    let attested: HashSet<&Domain> = outcome
        .attestation_probes
        .iter()
        .filter(|p| p.valid.is_some())
        .map(|p| &p.domain)
        .collect();

    registry
        .counter("sites_attempted_total")
        .add(outcome.sites.len() as u64);
    registry
        .counter("visits_total")
        .add(outcome.visited_count() as u64);
    registry
        .counter("visits_failed_total")
        .add(outcome.sites.iter().filter(|s| !s.visited()).count() as u64);
    registry.counter("banner_found_total").add(
        outcome
            .sites
            .iter()
            .filter_map(|s| s.before.as_ref())
            .filter(|v| v.banner_found)
            .count() as u64,
    );
    registry
        .counter("banner_accepted_total")
        .add(outcome.accepted_count() as u64);
    registry
        .counter("banner_rejected_total")
        .add(outcome.sites.iter().filter(|s| s.rejected()).count() as u64);

    // Fixed class label set: every class appears in the snapshot even at
    // zero, so dashboards and the reconciliation test see a stable shape.
    let class_counters: Vec<Counter> = CALL_CLASSES
        .iter()
        .map(|c| registry.labeled_counter("topics_calls_total", "class", c))
        .collect();
    let recorded = registry.counter("topics_calls_recorded_total");
    let durations = registry.histogram("visit_sim_duration_ms");

    for site in &outcome.sites {
        for (visit, before_accept) in site
            .before
            .iter()
            .map(|v| (v, true))
            .chain(site.after.iter().map(|v| (v, false)))
        {
            durations.observe(visit.duration_ms);
            for call in &visit.topics_calls {
                recorded.inc();
                let class = classify(
                    call.permitted(),
                    before_accept,
                    allowed.contains(&call.caller_site),
                    attested.contains(&call.caller_site),
                );
                let idx = CALL_CLASSES
                    .iter()
                    .position(|c| *c == class)
                    .expect("class is in CALL_CLASSES");
                class_counters[idx].inc();
            }
        }
    }

    registry
        .counter("attestation_probes_total")
        .add(outcome.attestation_probes.len() as u64);
    registry
        .counter("attestation_probes_attested_total")
        .add(attested.len() as u64);

    // Fault-layer reconciliation: the three outcome classes partition
    // the attempted sites, and the per-site retry/timeout stats roll up
    // into campaign totals. All fixed-label so the snapshot shape is
    // stable whether or not faults were injected.
    let counts = outcome.outcome_counts();
    for (label, n) in [
        ("complete", counts.complete),
        ("degraded", counts.degraded),
        ("failed", counts.failed),
    ] {
        registry
            .labeled_counter("sites_outcome_total", "outcome", label)
            .add(n as u64);
    }
    registry.counter("site_retries_total").add(
        outcome
            .sites
            .iter()
            .map(|s| u64::from(s.faults.retries))
            .sum(),
    );
    registry
        .counter("site_visits_timed_out_total")
        .add(outcome.sites.iter().filter(|s| s.faults.timed_out).count() as u64);
    registry.counter("site_second_visit_lost_total").add(
        outcome
            .sites
            .iter()
            .filter(|s| s.faults.second_visit_failed)
            .count() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig};
    use topics_webgen::{World, WorldConfig};

    #[test]
    fn classes_partition_every_call() {
        assert_eq!(classify(false, true, true, true), "blocked");
        assert_eq!(classify(true, false, true, true), "legitimate");
        assert_eq!(classify(true, true, true, true), "questionable");
        assert_eq!(classify(true, true, false, false), "anomalous");
        assert_eq!(classify(true, false, true, false), "other");
        assert_eq!(classify(true, false, false, true), "other");
    }

    #[test]
    fn tally_reconciles_with_the_outcome() {
        let world = World::generate(WorldConfig::scaled(67, 300));
        let outcome = run_campaign(
            &world,
            &CampaignConfig {
                threads: 4,
                ..Default::default()
            },
        );
        let registry = MetricsRegistry::new();
        tally_outcome(&outcome, &registry);
        let s = registry.snapshot();
        assert_eq!(s.counter("sites_attempted_total"), 300);
        assert_eq!(s.counter("visits_total"), outcome.visited_count() as u64);
        assert_eq!(
            s.counter("visits_total") + s.counter("visits_failed_total"),
            300
        );
        assert_eq!(
            s.counter("banner_accepted_total"),
            outcome.accepted_count() as u64
        );
        let recorded: usize = outcome
            .sites
            .iter()
            .flat_map(|site| site.before.iter().chain(site.after.iter()))
            .map(|v| v.topics_calls.len())
            .sum();
        assert_eq!(s.counter("topics_calls_recorded_total"), recorded as u64);
        assert_eq!(
            s.counter_sum("topics_calls_total"),
            recorded as u64,
            "classes partition the recorded calls"
        );
        assert!(s.counter("topics_calls_total{class=\"anomalous\"}") > 0);
        // Every visit contributes one duration observation.
        let visits: usize = outcome
            .sites
            .iter()
            .map(|site| site.before.iter().count() + site.after.iter().count())
            .sum();
        assert_eq!(s.histograms["visit_sim_duration_ms"].count, visits as u64);
        // The outcome classes partition the attempted sites; without a
        // fault profile nothing is degraded.
        assert_eq!(s.counter_sum("sites_outcome_total"), 300);
        assert_eq!(s.counter("sites_outcome_total{outcome=\"degraded\"}"), 0);
        assert_eq!(
            s.counter("sites_outcome_total{outcome=\"failed\"}"),
            s.counter("visits_failed_total")
        );
        assert_eq!(s.counter("site_retries_total"), 0);
    }
}
